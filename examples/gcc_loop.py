"""The paper's Fig. 1/Fig. 3 example, reproduced end to end.

Run:  python examples/gcc_loop.py

Fig. 1 of the paper shows a loop from 126.gcc's invalidate_for_call
that tests 64 bits spread over two mask words, together with the value
sequence each instruction produces.  Fig. 3 shows a piece of the
resulting dynamic prediction graph under a stride predictor.

This example assembles the same loop, prints the value sequence of
each static instruction (compare with Fig. 1's regular expressions)
and then prints the DPG arc labels for the first iterations (compare
with Fig. 3).
"""

from collections import defaultdict
from itertools import islice

from repro.asm import assemble
from repro.core import build_dpg
from repro.cpu import Machine

# The loop of Fig. 1, using the paper's mask values.  Instruction
# numbering matches the paper (0..11).
SOURCE = """
        .data
mask:   .word 0x8000bfff, 0xfffffff0
        .text
__start:
        add   $6, $0, $0          # 0: i = 0
LL1:    srl   $2, $6, 5           # 1: word index
        sll   $2, $2, 2           # 2: byte offset
        addu  $2, $2, $19         # 3: address of mask word
        lw    $2, 0($2)           # 4: load mask word
        andi  $3, $6, 31          # 5: bit index
        srlv  $2, $2, $3          # 6: shift bit down
        andi  $2, $2, 1           # 7: isolate bit
        beq   $2, $0, LL2         # 8: test bit
        nop
LL2:    addiu $6, $6, 1           # 9: i++
        slti  $2, $6, 64          # 10: i < 64
        bne   $2, $0, LL1         # 11: loop
        halt
"""


def value_sequences(program, limit=None):
    """Run the loop; collect each static instruction's output values."""
    machine = Machine(program)
    sequences = defaultdict(list)
    trace = machine.trace() if limit is None else islice(
        machine.trace(), limit
    )
    for dyn in trace:
        if dyn.out is not None:
            sequences[dyn.pc].append(dyn.out)
        elif dyn.taken is not None:
            sequences[dyn.pc].append("T" if dyn.taken else "NT")
    return machine, sequences


def compress(values):
    """Render a value sequence as run-length pairs, like Fig. 1."""
    out = []
    index = 0
    while index < len(values) and len(out) < 8:
        value = values[index]
        run = 1
        while index + run < len(values) and values[index + run] == value:
            run += 1
        if isinstance(value, int):
            value = hex(value) if value > 9999 else str(value)
        out.append(f"({value})^{run}" if run > 1 else str(value))
        index += run
    if index < len(values):
        out.append("...")
    return " ".join(out)


def main() -> None:
    program = assemble(SOURCE)
    # Load $19 with the mask address the way gcc's surrounding code
    # would have; the paper treats it as live-in.
    program = assemble(SOURCE.replace(
        "__start:",
        "__start:\n        la $19, mask",
    ))

    machine, sequences = value_sequences(program)
    print("Fig. 1 -- values produced per static instruction:")
    listing = {
        index: instr.render()
        for index, instr in enumerate(program.instructions)
    }
    for pc in sorted(sequences):
        print(f"  pc {pc:2d}  {listing[pc]:<24} {compress(sequences[pc])}")
    print()

    # Fig. 3: the DPG of the first three iterations, stride predictor.
    machine = Machine(program)
    graph = build_dpg(islice(machine.trace(), 45), predictor="stride")
    print("Fig. 3 -- DPG arc labels, first iterations "
          "(stride predictor):")
    for producer, consumer, data in graph.edges(data=True):
        consumer_data = graph.nodes[consumer]
        producer_text = (
            f"D@{producer[1]:#x}" if isinstance(producer, tuple)
            else f"uid{producer}(pc{graph.nodes[producer]['pc']})"
        )
        print(f"  {producer_text:>18} -> uid{consumer}"
              f"(pc{consumer_data['pc']:2d} {consumer_data['op']:<5}) "
              f"{data['label']}  value={data['value']}")
    print()
    print("Compare with the paper: the arc 9->9 (i++) generates "
          "predictability once the stride predictor locks on; arcs "
          "1->2->3->4 then propagate it through the mask computation.")


if __name__ == "__main__":
    main()
