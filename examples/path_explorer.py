"""Explore predictable paths and trees (paper Section 4.5).

Run:  python examples/path_explorer.py

For one workload, traces where predictability *comes from*: which
generator classes (control flow, immediates, input data, ...) are
upstream of each propagating node/arc, how deep the predictability
trees grow, and how far a propagate typically sits from the generate
that feeds it.
"""

from repro.core import AnalysisConfig, GenClass, analyze_machine
from repro.core.events import gen_mask_name
from repro.report.tables import cumulative_percent, log2_bucket_edges
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("com")
    config = AnalysisConfig(
        max_instructions=120_000,
        predictors=("context",),
        trees_for=("context",),
    )
    result = analyze_machine(workload.machine(), workload.name, config)
    pred = result.predictors["context"]
    paths = pred.paths
    trees = pred.trees
    elements = result.elements

    print(f"workload: {workload.spec_name} analogue, context predictor")
    print(f"DPG: {result.nodes} nodes, {result.arcs} arcs; "
          f"{paths.propagate_elements} propagate elements "
          f"({100.0 * paths.propagate_elements / elements:.1f}% of DPG)")
    print()

    print("generates by class:")
    for cls in GenClass:
        count = paths.gen_counts[cls]
        if count:
            print(f"  {cls.name}: {count:>7} generates, influencing "
                  f"{100.0 * paths.class_counts[cls] / elements:5.1f}% "
                  "of the DPG")
    print()

    print("top generator-class combinations (each element counted once):")
    ranked = sorted(
        ((count, mask) for mask, count in paths.combo_counts.items()
         if mask),
        reverse=True,
    )[:8]
    for count, mask in ranked:
        print(f"  {gen_mask_name(mask):<6} "
              f"{100.0 * count / elements:5.1f}% of DPG")
    print()

    edges = log2_bucket_edges(max(max(trees.depth_hist, default=1), 1))
    gen_curve = cumulative_percent(trees.depth_hist, edges)
    agg_curve = cumulative_percent(trees.agg_hist, edges)
    print("tree depth distribution (cumulative, like Fig. 10):")
    print(f"  {'longest path <=':>16} {'% generates':>12} "
          f"{'% aggregate prop':>17}")
    for edge, gen_pct, agg_pct in zip(edges, gen_curve, agg_curve):
        print(f"  {edge:>16} {gen_pct:>11.1f}% {agg_pct:>16.1f}%")
    print()

    influence_edges = log2_bucket_edges(
        max(max(trees.influence_hist, default=1), 1)
    )
    influence_curve = cumulative_percent(trees.influence_hist,
                                         influence_edges)
    print("generates influencing a propagate (cumulative, Fig. 11 top):")
    for edge, pct in zip(influence_edges, influence_curve):
        print(f"  <= {edge:>5} generates: {pct:5.1f}% of propagates")
    if trees.truncated:
        print(f"  ({trees.truncated} elements hit the generator-set cap)")


if __name__ == "__main__":
    main()
