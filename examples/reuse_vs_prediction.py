"""Instruction reuse vs. value prediction (paper Section 6).

Run:  python examples/reuse_vs_prediction.py

The paper's Section 6 suggests "reuse/memoization of regions with
predictable nodes and arcs" (citing Sodani & Sohi's instruction reuse).
This example runs a reuse buffer alongside the predictability analysis
and measures how the two opportunities overlap: reuse needs literally
repeated inputs, prediction only needs *patterned* ones, so prediction
reaches strictly further on induction-style code.
"""

from repro.core import AnalysisConfig, analyze_machine
from repro.workloads import SUITE


def main() -> None:
    config = AnalysisConfig(
        predictors=("stride",), trees_for=(), track_paths=False,
        track_branches=False, track_reuse=True,
        max_instructions=60_000,
    )
    print(f"{'bench':<6} {'reuse rate':>11} {'reuse∩pred':>11} "
          f"{'pred only':>10}")
    print("-" * 42)
    for workload in SUITE:
        if workload.kind != "int":
            continue
        result = analyze_machine(workload.machine(), workload.name,
                                 config)
        stats = result.reuse
        print(f"{workload.name:<6} "
              f"{100 * stats.reuse_rate():>10.1f}% "
              f"{100 * stats.hits_predicted / stats.eligible:>10.1f}% "
              f"{100 * stats.predicted_only / stats.eligible:>9.1f}%")
    print()
    print("reuse rate     = ALU instances whose exact inputs repeat")
    print("reuse∩pred     = reusable AND fully predicted (stride)")
    print("pred only      = fully predicted but NOT reusable -- the")
    print("                 margin prediction has over memoization.")


if __name__ == "__main__":
    main()
