"""Quickstart: compile a small program, trace it, analyse predictability.

Run:  python examples/quickstart.py

This walks the full pipeline of the library:

1. compile a mini-C program to the MIPS-like ISA,
2. execute it on the tracing simulator,
3. run the paper's predictability model (last-value / stride / context
   predictors over the dynamic prediction graph),
4. print generation / propagation / termination fractions.
"""

from repro.core import AnalysisConfig, Behavior, analyze_machine
from repro.cpu import Machine
from repro.minic import compile_program

SOURCE = """
int history[256];

int main() {
    int i;
    int acc = 7;
    for (i = 0; i < 256; i++) {
        acc = (acc * 5 + 1) & 255;      // predictable recurrence
        history[i] = acc;
    }
    int matches = 0;
    for (i = 1; i < 256; i++) {
        if (history[i] == ((history[i - 1] * 5 + 1) & 255)) {
            matches++;
        }
    }
    print_int(matches);
    print_char('\\n');
    return 0;
}
"""


def main() -> None:
    program = compile_program(SOURCE)
    print(f"compiled: {len(program)} static instructions")

    machine = Machine(program)
    result = analyze_machine(machine, "quickstart", AnalysisConfig())
    print(f"executed: {result.nodes} dynamic instructions, "
          f"{result.arcs} dependence arcs "
          f"(edges/node = {result.edge_node_ratio():.2f})")
    print(f"program output: {machine.output.strip()!r}")
    print()

    header = (f"{'predictor':<10} {'node gen%':>10} {'node prop%':>11} "
              f"{'node term%':>11} {'arc gen%':>9} {'arc prop%':>10} "
              f"{'arc term%':>10}")
    print(header)
    print("-" * len(header))
    elements = result.elements
    for kind, pred in result.predictors.items():
        nodes = pred.nodes.behavior_counts()
        arcs = pred.arcs.behavior_counts()

        def pct(count):
            return 100.0 * count / elements

        print(f"{kind:<10} "
              f"{pct(nodes.get(Behavior.GENERATE, 0)):>10.2f} "
              f"{pct(nodes.get(Behavior.PROPAGATE, 0)):>11.2f} "
              f"{pct(nodes.get(Behavior.TERMINATE, 0)):>11.2f} "
              f"{pct(arcs.get(Behavior.GENERATE, 0)):>9.2f} "
              f"{pct(arcs.get(Behavior.PROPAGATE, 0)):>10.2f} "
              f"{pct(arcs.get(Behavior.TERMINATE, 0)):>10.2f}")
    print()
    print("Reading the table: most of the DPG propagates predictability")
    print("(the recurrence is stride/context predictable), a small set of")
    print("generate points creates it, and little terminates -- the")
    print("paper's Fig. 5 in miniature.")


if __name__ == "__main__":
    main()
