"""Section 5 of the paper: how value predictability relates to branch
predictability.

Run:  python examples/branch_value_correlation.py

Classifies every dynamic conditional branch of a workload by (a)
whether gshare predicted its direction and (b) whether its input
values were predictable, reproducing the paper's headline: slightly
over half of all branch mispredictions occur although every input
value was correctly predicted -- those mispredictions are, in
principle, avoidable by feeding data values into the branch predictor.
"""

from repro.core import AnalysisConfig, InKind, analyze_machine
from repro.core.events import node_class_name
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("gcc")
    config = AnalysisConfig(max_instructions=150_000)
    result = analyze_machine(workload.machine(), workload.name, config)

    print(f"workload: {workload.spec_name} analogue "
          f"({result.nodes} dynamic instructions)")
    for kind, pred in result.predictors.items():
        branches = pred.branches
        total = branches.total()
        print()
        print(f"value predictor: {kind} "
              f"(gshare accuracy {100 * branches.accuracy():.1f}%)")
        print(f"  {'class':<8} {'% of branches':>14}")
        for predicted in (True, False):
            for in_kind in InKind:
                count = branches.count(in_kind, predicted)
                if count:
                    label = node_class_name(in_kind, predicted)
                    print(f"  {label:<8} {100.0 * count / total:>13.2f}%")
        mispredicted = total - branches.correct()
        avoidable = (branches.count(InKind.PP, False)
                     + branches.count(InKind.PI, False))
        if mispredicted:
            print(f"  -> {100.0 * avoidable / mispredicted:.1f}% of "
                  "mispredictions had all-predictable inputs "
                  "(paper: slightly over half)")


if __name__ == "__main__":
    main()
