"""Find the 'critical points for prediction' in a workload.

Run:  python examples/critical_points.py

The paper lists, among the model's motivations, "identifying critical
points for prediction; i.e. places where prediction and speculation
may have greater payoff".  This example ranks a workload's static
instructions by how often they *terminate* predictability (a correctly
predicted value meets them and comes out unpredictable), and shows the
Section 6 mirror view: maximal runs of fully mispredicted
instructions.
"""

from repro.core import AnalysisConfig, analyze_machine
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("vor")
    config = AnalysisConfig(max_instructions=150_000)
    machine = workload.machine()
    result = analyze_machine(machine, workload.name, config)
    listing = {
        index: instr.render()
        for index, instr in enumerate(workload.program().instructions)
    }
    static_counts = machine.static_counts

    print(f"workload: {workload.spec_name} analogue, "
          f"{result.nodes} dynamic instructions\n")
    for kind in ("stride", "context"):
        pred = result.predictors[kind]
        critical = pred.critical
        print(f"[{kind}] top termination sites "
              f"(top-10 cause {100 * critical.concentration(10):.0f}% of "
              "all terminations):")
        sites = critical.top_sites(static_counts, count=8)
        for site in sites:
            print(f"  pc {site.pc:4d}  {listing[site.pc]:<30} "
                  f"executed {site.executions:>6}x, "
                  f"terminated {site.terminations:>6}x, "
                  f"output missed {100 * site.miss_rate:5.1f}%")
        print()

    pred = result.predictors["context"]
    print("[context] unpredictable regions "
          "(maximal fully-mispredicted runs):")
    lengths = sorted(pred.unpred.lengths.items())
    total = pred.unpred.instructions_in_runs()
    print(f"  {total} instructions "
          f"({100.0 * total / result.nodes:.1f}%) sit in fully "
          "mispredicted runs; longest runs:")
    for length, count in lengths[-5:]:
        print(f"    length {length:>4}: {count} run(s)")
    print()
    print("A speculation mechanism gains most by fixing the few sites")
    print("that terminate predictability for everything downstream --")
    print("the concentration figure shows how few they are.")


if __name__ == "__main__":
    main()
