"""Compare the three value predictors on characteristic sequences.

Run:  python examples/predictor_comparison.py

Feeds the classic sequence shapes from the value-prediction literature
(constant, stride, repeating pattern, masked pattern, random) to the
last-value, 2-delta stride and two-level context predictors, printing
each predictor's accuracy.  This is the microscopic view behind the
paper's macroscopic L/S/C orderings.
"""

from repro.predictors import make_predictor
from repro.workloads.inputs import Rng


def masked_counter(length):
    """The paper's Section 4.4 example: 0..9 repeating, ANDed with a
    single-bit mask -- defeats a short-history context predictor."""
    return [((i % 10) & 8) >> 3 for i in range(length)]


SEQUENCES = {
    "constant        (7 7 7 ...)":
        lambda n: [7] * n,
    "stride          (0 1 2 3 ...)":
        lambda n: list(range(n)),
    "stride, stride 4 (0 4 8 ...)":
        lambda n: [4 * i for i in range(n)],
    "pattern         (3 1 4 1 5 ...)":
        lambda n: ([3, 1, 4, 1, 5, 9, 2, 6] * (n // 8 + 1))[:n],
    "two strides     (0 1 2 0 1 2 ...)":
        lambda n: ([0, 1, 2] * (n // 3 + 1))[:n],
    "masked counter  (0^8 1 1 0^8 ...)":
        masked_counter,
    "random 16 values":
        lambda n: random_values(n, 16, seed=42),
    "random 4096 values":
        lambda n: random_values(n, 4096, seed=43),
}


def random_values(length, bound, seed):
    rng = Rng(seed)
    return [rng.below(bound) for __ in range(length)]

LENGTH = 4000


def main() -> None:
    kinds = ("last", "stride", "context")
    print(f"{'sequence':<34} " + " ".join(f"{k:>9}" for k in kinds))
    print("-" * (36 + 10 * len(kinds)))
    for label, maker in SEQUENCES.items():
        values = maker(LENGTH)
        row = [f"{label:<34}"]
        for kind in kinds:
            predictor = make_predictor(kind)
            hits = sum(predictor.see(0x1234, value) for value in values)
            row.append(f"{100.0 * hits / len(values):>8.1f}%")
        print(" ".join(row))
    print()
    print("Notes: stride subsumes last-value (stride 0); context handles")
    print("repeating patterns strides cannot; the masked counter defeats")
    print("an order-4 context predictor exactly as the paper describes")
    print("in Section 4.4; nobody predicts uniform random values.")


if __name__ == "__main__":
    main()
