"""Analyse your own mini-C program against the suite's workloads.

Run:  python examples/custom_workload.py

Shows how to bring a new workload into the model: write mini-C, feed it
synthetic input data (which becomes D nodes in the DPG), analyse it,
and compare its predictability profile with a suite workload.
"""

from repro.core import AnalysisConfig, Behavior, analyze_machine
from repro.cpu import Machine
from repro.minic import compile_program
from repro.workloads import get_workload
from repro.workloads.inputs import words

# A small sorting workload: insertion sort is branchy and data
# dependent, so its predictability profile differs visibly from a
# regular streaming kernel.
SOURCE = """
int data[512];

int main() {
    int n = input_word(0);
    int i;
    for (i = 0; i < n; i++) {
        data[i] = input_word(i + 1);
    }
    for (i = 1; i < n; i++) {
        int key = data[i];
        int j = i - 1;
        while (j >= 0 && data[j] > key) {
            data[j + 1] = data[j];
            j--;
        }
        data[j + 1] = key;
    }
    int inversions_left = 0;
    for (i = 1; i < n; i++) {
        if (data[i - 1] > data[i]) {
            inversions_left++;
        }
    }
    print_int(inversions_left);
    print_char('\\n');
    return 0;
}
"""


def profile(result):
    """Summarise a result as propagation/generation/termination shares."""
    elements = result.elements
    out = {}
    for kind, pred in result.predictors.items():
        nodes = pred.nodes.behavior_counts()
        arcs = pred.arcs.behavior_counts()
        out[kind] = tuple(
            100.0 * (nodes.get(behavior, 0) + arcs.get(behavior, 0))
            / elements
            for behavior in (Behavior.GENERATE, Behavior.PROPAGATE,
                             Behavior.TERMINATE)
        )
    return out


def print_profile(title, result):
    print(title)
    for kind, (gen, prop, term) in profile(result).items():
        print(f"  {kind:<8} generate {gen:5.2f}%   propagate {prop:6.2f}%"
              f"   terminate {term:5.2f}%")
    print()


def main() -> None:
    n = 400
    program = compile_program(SOURCE)
    machine = Machine(program, input_words=[n] + words(n, 0, 9999, seed=7))
    config = AnalysisConfig(max_instructions=120_000)
    custom = analyze_machine(machine, "insertion-sort", config)
    print(f"insertion sort: {custom.nodes} dynamic instructions, "
          f"output {machine.output.strip()!r}")
    print()
    print_profile("insertion sort (random input):", custom)

    compress = get_workload("com")
    compress_result = analyze_machine(
        compress.machine(), "compress", config
    )
    print_profile("129.compress analogue, for comparison:",
                  compress_result)

    print("Sorting random data keeps comparisons unpredictable (more")
    print("termination, less propagation) while the compression loop's")
    print("induction structure propagates predictability broadly.")


if __name__ == "__main__":
    main()
