"""Load generator and benchmark for the analysis service.

Hosts the full service stack (:class:`repro.service.BackgroundServer`)
and drives it with concurrent blocking clients whose job popularity is
zipf-skewed — a few hot jobs dominate, a long tail stays cold — which
is exactly the distribution request coalescing and the warm tier are
built for.  Three phases:

* **burst** — every client simultaneously requests the same cold job:
  the single-flight guarantee means one computation serves them all
  (this is what pins the coalesce rate above zero even in the smoke);
* **mixed** — each client issues a stream of zipf-sampled requests:
  head jobs go warm almost immediately, tail jobs trickle in cold;
* **warm sweep** — every catalogue job once more, all answered from
  the memo/store without touching the pool.

A fourth phase (:func:`measure_qos`) soaks the multi-tenant QoS layer
(docs/qos.md): two compliant tenants stream zipf load while an
abusive third hammers cold jobs at well over 5x its quota, against a
no-abuse baseline of the same compliant load.  The ``qos`` section of
the report records per-tenant p50/p99 under both runs, the shed
split, and the isolation delta; the per-tenant bottleneck-attribution
report is written to ``reports/qos_attribution.json``.

The report (``BENCH_service.json``) records throughput, p50/p99
latency split by how the request was served, the coalesce and shed
rates, and the server-side counter reconciliation proving warm and
coalesced requests never reached the pool (``pool_jobs`` equals the
number of distinct computations).  The run ends with a drain
(:meth:`BackgroundServer.stop`) and records that it exited cleanly.

CI smoke::

    python benchmarks/bench_service.py --smoke

exits non-zero if any request got a 5xx, the coalesce rate was zero,
or the warm path failed the acceptance bar (warm p50 at least 5x
better than cold p50).
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.runner import ExperimentConfig, ResultStore, TraceStore
from repro.service import (
    BackgroundServer,
    BrokerConfig,
    ServiceClient,
    ServiceError,
)

#: Default load shape (the smoke shrinks all of these).
CLIENTS = 6
REQUESTS_PER_CLIENT = 20
BUDGET = 6_000
ZIPF_ALPHA = 1.2

#: Workloads the catalogue cycles through (cheap, diverse kinds).
CATALOG_WORKLOADS = ("com", "go", "ijp")


def build_catalog(budget: int, entries: int) -> list[tuple[str, dict]]:
    """``entries`` distinct (workload, config-dict) jobs.

    Configs vary the analysis knobs, not the budget, so every job of
    one workload shares a trace — batching then collapses concurrent
    cold tail jobs into single simulations.
    """
    variants = (
        {},
        {"predictors": ["last"], "trees_for": []},
        {"predictors": ["stride"], "trees_for": []},
        {"predictors": ["context"], "gen_cap": 32},
        {"predictors": ["last", "stride"], "trees_for": []},
        {"gen_cap": 16},
    )
    catalog = []
    for rank in range(entries):
        name = CATALOG_WORKLOADS[rank % len(CATALOG_WORKLOADS)]
        config = dict(variants[rank % len(variants)])
        config["max_instructions"] = budget
        catalog.append((name, config))
    return catalog


def zipf_weights(entries: int, alpha: float = ZIPF_ALPHA) -> list[float]:
    return [1.0 / (rank + 1) ** alpha for rank in range(entries)]


class LoadStats:
    """Thread-safe accumulator of per-request outcomes."""

    def __init__(self):
        self.lock = threading.Lock()
        self.latencies: dict[str, list[float]] = {}
        self.errors: list[str] = []
        self.http_5xx = 0

    def record(self, status: str, seconds: float) -> None:
        with self.lock:
            self.latencies.setdefault(status, []).append(seconds)

    def record_error(self, error: Exception) -> None:
        with self.lock:
            self.errors.append(f"{type(error).__name__}: {error}")
            status = getattr(error, "status",
                             getattr(error, "last_status", None))
            if status is not None and status >= 500:
                self.http_5xx += 1

    def all_latencies(self) -> list[float]:
        return [value for values in self.latencies.values()
                for value in values]


def percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _timed_analyze(client: ServiceClient, stats: LoadStats,
                   name: str, config: dict) -> None:
    start = time.perf_counter()
    try:
        response = client.analyze(name, config)
    except ServiceError as error:
        stats.record_error(error)
    else:
        stats.record(response["status"], time.perf_counter() - start)


def run_load(port: int, catalog, clients: int, requests_each: int,
             stats: LoadStats) -> float:
    """Burst + mixed phases; returns the load's wall-clock seconds."""
    weights = zipf_weights(len(catalog))
    barrier = threading.Barrier(clients)
    hot_name, hot_config = catalog[0]

    def worker(index: int) -> None:
        rng = random.Random(1000 + index)
        client = ServiceClient(port=port, retries=2, timeout=300.0)
        # Burst: everyone hits the cold zipf-head job at once.
        barrier.wait()
        _timed_analyze(client, stats, hot_name, hot_config)
        # Mixed: zipf-sampled stream.
        for __ in range(requests_each):
            name, config = rng.choices(catalog, weights=weights)[0]
            _timed_analyze(client, stats, name, config)

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


def warm_sweep(port: int, catalog, stats: LoadStats) -> None:
    client = ServiceClient(port=port, retries=2, timeout=300.0)
    for name, config in catalog:
        _timed_analyze(client, stats, name, config)


def parse_counters(metrics_text: str) -> dict[str, float]:
    counters = {}
    for line in metrics_text.splitlines():
        if line.startswith("repro_service_") and " " in line:
            name, value = line.rsplit(" ", 1)
            try:
                counters[name] = float(value)
            except ValueError:
                pass
    return counters


def measure_availability(budget: int, requests_each: int = 12) -> dict:
    """Failover cost through a 2-worker fleet: p99 with and without a
    ``kill -9`` of the owning worker mid-stream, plus how long the
    supervisor took to put a healthy replacement back.

    The acceptance bar is the fleet's headline invariant: zero failed
    client requests even though the preferred worker was SIGKILLed.
    """
    import os
    import signal

    from repro.service import FleetClient, FleetConfig, FleetSupervisor

    name, config = "com", {"max_instructions": budget}
    scratch = tempfile.TemporaryDirectory(prefix="repro-bench-fleet-")
    fleet = FleetSupervisor(FleetConfig(workers=2),
                            cache_root=scratch.name)
    steady: list[float] = []
    failover: list[float] = []
    failed = 0
    try:
        fleet.start()
        fleet.wait_healthy(timeout=30)
        client = FleetClient(fleet, timeout=60.0, deadline=120.0)
        client.analyze(name, config)        # cold fill, uncounted

        def stream(bucket: list[float]) -> None:
            nonlocal failed
            for __ in range(requests_each):
                start = time.perf_counter()
                try:
                    client.analyze(name, config)
                except ServiceError:
                    failed += 1
                else:
                    bucket.append(time.perf_counter() - start)

        stream(steady)
        key = FleetClient.request_key(name, config)
        owner = fleet.workers[fleet.ring.owner(key)]
        os.kill(owner.process.pid, signal.SIGKILL)
        killed_at = time.perf_counter()
        stream(failover)
        recovered = fleet.wait_healthy(timeout=60)
        restart_seconds = time.perf_counter() - killed_at
    finally:
        fleet.stop()
        scratch.cleanup()
    return {
        "workers": 2,
        "requests_per_phase": requests_each,
        "steady_p50": round(percentile(steady, 0.50), 4),
        "steady_p99": round(percentile(steady, 0.99), 4),
        "failover_p50": round(percentile(failover, 0.50), 4),
        "failover_p99": round(percentile(failover, 0.99), 4),
        "failed_requests": failed,
        "recovered": recovered,
        "restart_seconds": round(restart_seconds, 2),
    }


#: The soak's cast: two compliant tenants and one abusive one.  The
#: abusive tenant is rate-limited by the policy; the compliant pair
#: has no quota at all, so any shed they see is a QoS bug.
QOS_ABUSIVE_RATE = 2.0      # mallory's tokens/second
QOS_PACING = 0.02           # compliant inter-request think time (s)
QOS_GRACE = 0.05            # absolute p99 noise allowance (s)


def _qos_policy():
    from repro.service.qos import qos_policy_from_dict

    return qos_policy_from_dict({
        "default_class": "batch",
        "batch_max": 4,
        "tenants": {
            "alice": {"class": "interactive"},
            "bob": {"class": "batch"},
            "mallory": {"class": "background",
                        "rate": QOS_ABUSIVE_RATE,
                        "max_inflight": 1},
        },
    })


def _qos_phase(policy, catalog, abuse_catalog, requests_each: int,
               abuse: bool) -> dict:
    """One fresh server under ``policy``; compliant zipf streams from
    alice (interactive) and bob (batch), optionally with mallory
    hammering cold jobs flat-out.  Returns per-tenant latencies, the
    captured result bytes (for the byte-identity check), mallory's
    issued/admitted/shed split, and the attribution report read back
    from ``/metrics``."""
    from repro.service.qos import attribution_from_prometheus

    weights = zipf_weights(len(catalog))
    scratch = tempfile.TemporaryDirectory(prefix="repro-bench-qos-")
    server = BackgroundServer(
        store=ResultStore(scratch.name),
        trace_store=TraceStore(scratch.name),
        broker_config=BrokerConfig(workers=2, batch_window=0.02,
                                   qos=policy),
    ).start()
    latencies: dict[str, list[float]] = {"alice": [], "bob": []}
    errors: dict[str, int] = {"alice": 0, "bob": 0}
    results: dict[str, str] = {}
    serial_results: dict[str, str] = {}
    results_lock = threading.Lock()
    issued = admitted = shed = 0
    try:
        # Serial reference pass: every catalog job once, one at a
        # time, before any concurrency.  These bytes are the ground
        # truth the concurrent streams must reproduce.
        reference = ServiceClient(port=server.port, retries=2,
                                  timeout=300.0, tenant="alice")
        for name, config in catalog:
            response = reference.analyze(name, config)
            key = json.dumps([name, config], sort_keys=True)
            serial_results[key] = json.dumps(response["result"],
                                             sort_keys=True)

        stop = threading.Event()

        def compliant(tenant: str, seed: int) -> None:
            rng = random.Random(seed)
            client = ServiceClient(port=server.port, retries=2,
                                   timeout=300.0, tenant=tenant)
            for __ in range(requests_each):
                name, config = rng.choices(catalog, weights=weights)[0]
                start = time.perf_counter()
                try:
                    response = client.analyze(name, config)
                except ServiceError:
                    errors[tenant] += 1
                else:
                    latencies[tenant].append(time.perf_counter() - start)
                    key = json.dumps([name, config], sort_keys=True)
                    with results_lock:
                        results[key] = json.dumps(response["result"],
                                                  sort_keys=True)
                time.sleep(QOS_PACING)

        abuse_lock = threading.Lock()

        def abuser(seed: int) -> None:
            # Several threads so one admitted (slow, cold) job never
            # throttles the offered load: the others keep hammering
            # and getting shed, which is the point of the abuse.
            nonlocal issued, admitted, shed
            rng = random.Random(seed)
            client = ServiceClient(port=server.port, retries=0,
                                   timeout=300.0, tenant="mallory")
            while not stop.is_set():
                name, config = rng.choice(abuse_catalog)
                with abuse_lock:
                    issued += 1
                try:
                    client.analyze(name, config)
                except ServiceError as error:
                    if getattr(error, "last_status", None) == 429:
                        with abuse_lock:
                            shed += 1
                    # Brief pause so the shed loop is merely abusive
                    # (hundreds of requests/second), not a connection
                    # flood that measures the TCP stack instead.
                    time.sleep(0.005)
                else:
                    with abuse_lock:
                        admitted += 1

        threads = [
            threading.Thread(target=compliant, args=("alice", 31)),
            threading.Thread(target=compliant, args=("bob", 32)),
        ]
        if abuse:
            threads.extend(threading.Thread(target=abuser, args=(70 + i,))
                           for i in range(4))
        load_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads[:2]:
            thread.join()
        stop.set()
        for thread in threads[2:]:
            thread.join()
        load_wall = time.perf_counter() - load_start
        attribution = attribution_from_prometheus(
            ServiceClient(port=server.port, retries=2).metrics()
        )
    finally:
        server.stop()
        scratch.cleanup()
    return {
        "latencies": latencies,
        "errors": errors,
        "results": results,
        "serial_results": serial_results,
        "abuser": {"issued": issued, "admitted": admitted, "shed": shed},
        "load_wall": load_wall,
        "attribution": attribution,
    }


def measure_qos(budget: int, requests_each: int) -> tuple[dict, dict]:
    """The multi-tenant isolation soak: a no-abuse baseline run, then
    the same compliant load with mallory hammering cold jobs at well
    over its quota.  Returns the ``qos`` report section and the
    abuse run's attribution report (the CI artifact)."""
    policy = _qos_policy()
    catalog = build_catalog(budget, 4)
    # Mallory's own cold jobs: distinct configs so its admitted
    # requests cost real pool time instead of hitting the warm tier.
    abuse_catalog = [
        (CATALOG_WORKLOADS[rank % len(CATALOG_WORKLOADS)],
         {"max_instructions": budget, "gen_cap": 8 + rank})
        for rank in range(4)
    ]

    baseline = _qos_phase(policy, catalog, abuse_catalog,
                          requests_each, abuse=False)
    abuse = _qos_phase(policy, catalog, abuse_catalog,
                       requests_each, abuse=True)

    # Byte-identity: concurrent answers match the serial reference
    # pass of their own run, and the two runs match each other.
    identical = all(
        run["results"][key] == run["serial_results"].get(key)
        for run in (baseline, abuse) for key in run["results"]
    ) and all(
        abuse["serial_results"][key] == baseline["serial_results"][key]
        for key in abuse["serial_results"]
    )

    tenants = {}
    isolation = {}
    for tenant in ("alice", "bob"):
        base_values = baseline["latencies"][tenant]
        abuse_values = abuse["latencies"][tenant]
        base_p99 = percentile(base_values, 0.99)
        abuse_p99 = percentile(abuse_values, 0.99)
        tenants[tenant] = {
            "requests": len(abuse_values),
            "errors": abuse["errors"][tenant],
            "p50": round(percentile(abuse_values, 0.50), 4),
            "p99": round(abuse_p99, 4),
            "baseline_p50": round(percentile(base_values, 0.50), 4),
            "baseline_p99": round(base_p99, 4),
        }
        isolation[tenant] = {
            "p99_delta_pct": round(
                100.0 * (abuse_p99 - base_p99) / base_p99, 1
            ) if base_p99 > 0 else 0.0,
            "within_bound": abuse_p99 <= base_p99 * 1.25 + QOS_GRACE,
        }
    abuser = abuse["abuser"]
    quota_budget = QOS_ABUSIVE_RATE * abuse["load_wall"] + QOS_ABUSIVE_RATE
    abuse_factor = (abuser["issued"] / quota_budget
                    if quota_budget > 0 else 0.0)
    report_tenants = abuse["attribution"]["tenants"]
    compliant_sheds = sum(
        sum(report_tenants.get(name, {}).get("shed", {}).values())
        for name in ("alice", "bob")
    )
    total_wall = sum(entry["wall_seconds"]
                     for entry in report_tenants.values())
    total_attributed = sum(entry["attributed_seconds"]
                           for entry in report_tenants.values())
    coverage = {
        # The gated number: across all tenants, how much wall time the
        # named phases explain.  Per-tenant values ride along for the
        # report (an abusive tenant's own 429 flood adds event-loop
        # latency to its wall that no batch span can account for).
        "aggregate": round(total_attributed / total_wall, 4)
        if total_wall > 0 else 1.0,
        "tenants": {
            name: round(entry["coverage"], 4)
            for name, entry in report_tenants.items()
            if entry["wall_seconds"] > 0
        },
    }
    section = {
        "policy": policy.describe(),
        "requests_per_tenant": requests_each,
        "tenants": tenants,
        "abuser": dict(abuser, abuse_factor=round(abuse_factor, 1)),
        "isolation": dict(isolation, bound_pct=25.0,
                          grace_seconds=QOS_GRACE),
        "compliant_sheds": int(compliant_sheds),
        "results_identical": identical,
        "attribution_coverage": coverage,
    }
    return section, abuse["attribution"]


def smoke(clients: int = CLIENTS,
          requests_each: int = REQUESTS_PER_CLIENT,
          budget: int = BUDGET, catalog_size: int = 12,
          output_path=None) -> dict:
    """One full load run against a fresh server; writes the report."""
    catalog = build_catalog(budget, catalog_size)
    stats = LoadStats()
    scratch = tempfile.TemporaryDirectory(prefix="repro-bench-service-")
    server = BackgroundServer(
        store=ResultStore(scratch.name),
        trace_store=TraceStore(scratch.name),
        broker_config=BrokerConfig(workers=2, batch_window=0.02),
    ).start()
    try:
        load_wall = run_load(server.port, catalog, clients,
                             requests_each, stats)
        warm_sweep(server.port, catalog, stats)
        counters = parse_counters(
            ServiceClient(port=server.port, retries=2).metrics()
        )
    finally:
        exit_code = server.stop()
        scratch.cleanup()

    availability = measure_availability(budget)
    qos_section, qos_attribution = measure_qos(
        budget, requests_each=max(4 * requests_each, 40)
    )

    total = len(stats.all_latencies()) + len(stats.errors)
    cold = stats.latencies.get("computed", [])
    warm = (stats.latencies.get("warm", [])
            + stats.latencies.get("coalesced", []))
    warm_only = stats.latencies.get("warm", [])
    requests_seen = counters.get("repro_service_requests_total", 0)
    coalesced = counters.get("repro_service_coalesced_total", 0)
    shed = counters.get("repro_service_shed_total", 0)
    pool_jobs = counters.get("repro_service_batch_jobs_total", 0)

    cold_p50 = percentile(cold, 0.50)
    warm_p50 = percentile(warm_only, 0.50)
    report = {
        "benchmark": "zipf-skewed concurrent load against repro serve",
        "clients": clients,
        "requests_per_client": requests_each + 1,
        "catalog_jobs": len(catalog),
        "budget": budget,
        "requests": {
            "total": total,
            "by_status": {status: len(values)
                          for status, values in stats.latencies.items()},
            "errors": len(stats.errors),
            "http_5xx": stats.http_5xx,
        },
        "throughput_rps": round(
            (total - len(catalog)) / load_wall, 2
        ) if load_wall else 0.0,
        "latency_seconds": {
            "overall": {
                "p50": round(percentile(stats.all_latencies(), 0.50), 4),
                "p99": round(percentile(stats.all_latencies(), 0.99), 4),
            },
            "cold_p50": round(cold_p50, 4),
            "cold_p99": round(percentile(cold, 0.99), 4),
            "warm_p50": round(warm_p50, 4),
            "warm_p99": round(percentile(warm_only, 0.99), 4),
            "warm_speedup_p50": round(cold_p50 / warm_p50, 2)
            if warm_p50 else None,
        },
        "coalesce_rate": round(coalesced / requests_seen, 4)
        if requests_seen else 0.0,
        "shed_rate": round(shed / requests_seen, 4)
        if requests_seen else 0.0,
        "pool_jobs": int(pool_jobs),
        "computed": int(counters.get("repro_service_computed_total", 0)),
        "warm_hits": int(counters.get("repro_service_warm_total", 0)),
        "availability": availability,
        "qos": qos_section,
        "drain_exit_code": exit_code,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if output_path is None:
        output_path = (Path(__file__).resolve().parent.parent
                       / "BENCH_service.json")
    Path(output_path).write_text(json.dumps(report, indent=2) + "\n")
    attribution_path = Path(output_path).parent / "reports"
    attribution_path.mkdir(exist_ok=True)
    attribution_path = attribution_path / "qos_attribution.json"
    attribution_path.write_text(
        json.dumps(qos_attribution, indent=2, sort_keys=True) + "\n"
    )

    print(f"{total} requests from {clients} client(s) over "
          f"{len(catalog)} jobs @ {budget} instructions:")
    print(f"  throughput     {report['throughput_rps']:>8.2f} req/s")
    print(f"  cold p50/p99   {report['latency_seconds']['cold_p50']:>8.4f}s"
          f" / {report['latency_seconds']['cold_p99']:.4f}s")
    print(f"  warm p50/p99   {report['latency_seconds']['warm_p50']:>8.4f}s"
          f" / {report['latency_seconds']['warm_p99']:.4f}s")
    print(f"  warm speedup   "
          f"{report['latency_seconds']['warm_speedup_p50']}x (p50)")
    print(f"  coalesce rate  {report['coalesce_rate']:>8.2%}")
    print(f"  shed rate      {report['shed_rate']:>8.2%}")
    print(f"  pool jobs      {report['pool_jobs']:>8d} "
          f"(of {int(requests_seen)} requests)")
    print(f"  drain exit     {exit_code}")
    print(f"  fleet steady/failover p99  "
          f"{availability['steady_p99']:.4f}s / "
          f"{availability['failover_p99']:.4f}s "
          f"(restart {availability['restart_seconds']:.2f}s, "
          f"{availability['failed_requests']} failed)")
    for tenant, entry in qos_section["tenants"].items():
        delta = qos_section["isolation"][tenant]["p99_delta_pct"]
        print(f"  qos {tenant:<9} p99 {entry['baseline_p99']:.4f}s -> "
              f"{entry['p99']:.4f}s under abuse ({delta:+.1f}%)")
    abuser = qos_section["abuser"]
    print(f"  qos abuser     {abuser['issued']} issued @ "
          f"{abuser['abuse_factor']}x quota, {abuser['shed']} shed, "
          f"{abuser['admitted']} admitted; compliant sheds "
          f"{qos_section['compliant_sheds']}")
    print(f"[attribution report in {attribution_path}]", file=sys.stderr)
    if stats.errors:
        print(f"  errors: {stats.errors[:5]}", file=sys.stderr)
    print(f"[written to {output_path}]", file=sys.stderr)
    return report


def check(report: dict) -> list[str]:
    """The acceptance bars; returns human-readable violations."""
    problems = []
    if report["requests"]["http_5xx"]:
        problems.append(
            f"{report['requests']['http_5xx']} request(s) got a 5xx"
        )
    if report["requests"]["errors"]:
        problems.append(
            f"{report['requests']['errors']} request(s) errored"
        )
    if report["coalesce_rate"] <= 0:
        problems.append("coalesce rate was zero (single-flight broken?)")
    speedup = report["latency_seconds"]["warm_speedup_p50"]
    if speedup is None or speedup < 5.0:
        problems.append(
            f"warm p50 speedup {speedup}x below the 5x acceptance bar"
        )
    if report["pool_jobs"] > report["computed"]:
        problems.append(
            f"pool ran {report['pool_jobs']} job(s) for only "
            f"{report['computed']} computed response(s) — warm or "
            f"coalesced requests reached the pool"
        )
    if report["drain_exit_code"] != 0:
        problems.append(
            f"drain exited {report['drain_exit_code']}, expected 0"
        )
    availability = report.get("availability", {})
    if availability.get("failed_requests"):
        problems.append(
            f"{availability['failed_requests']} fleet request(s) "
            f"failed during failover — the kill must be invisible"
        )
    if not availability.get("recovered", True):
        problems.append("fleet did not return to healthy after the "
                        "kill")
    qos = report.get("qos", {})
    if qos:
        for tenant, entry in qos["isolation"].items():
            if not isinstance(entry, dict) or "within_bound" not in entry:
                continue
            if not entry["within_bound"]:
                problems.append(
                    f"compliant tenant {tenant!r} p99 degraded "
                    f"{entry['p99_delta_pct']}% under abuse — over the "
                    f"25% isolation bound"
                )
        if qos["compliant_sheds"]:
            problems.append(
                f"{qos['compliant_sheds']} compliant request(s) were "
                f"shed — quotas must only bite the abusive tenant"
            )
        for tenant in ("alice", "bob"):
            if qos["tenants"][tenant]["errors"]:
                problems.append(
                    f"compliant tenant {tenant!r} saw "
                    f"{qos['tenants'][tenant]['errors']} error(s)"
                )
        if not qos["results_identical"]:
            problems.append(
                "results under multi-tenant load differ from the "
                "serial reference — QoS must never change answers"
            )
        if qos["abuser"]["abuse_factor"] < 5.0:
            problems.append(
                f"abusive tenant only reached "
                f"{qos['abuser']['abuse_factor']}x its quota — the "
                f"soak did not actually abuse"
            )
        if qos["abuser"]["shed"] == 0:
            problems.append(
                "the abusive tenant was never shed — quotas are not "
                "biting"
            )
        coverage = qos["attribution_coverage"]["aggregate"]
        if coverage < 0.90:
            problems.append(
                f"attribution coverage {coverage:.1%} below 90% — "
                f"wall time is leaking out of the named phases"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small load for CI (fewer clients/requests, "
                             "smaller budget)")
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--budget", type=int, default=None)
    parser.add_argument("--output", default=None,
                        help="report path (default: BENCH_service.json "
                             "at the repo root)")
    args = parser.parse_args(argv)

    if args.smoke:
        defaults = dict(clients=4, requests_each=6, budget=3_000,
                        catalog_size=6)
    else:
        defaults = dict(clients=CLIENTS,
                        requests_each=REQUESTS_PER_CLIENT,
                        budget=BUDGET, catalog_size=12)
    if args.clients is not None:
        defaults["clients"] = args.clients
    if args.requests is not None:
        defaults["requests_each"] = args.requests
    if args.budget is not None:
        defaults["budget"] = args.budget

    report = smoke(output_path=args.output, **defaults)
    problems = check(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
