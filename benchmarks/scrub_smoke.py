"""Scrub smoke: seeded corruption in, quarantined entries out.

Seeds a store with valid entries plus four distinct kinds of rot
(torn result envelope, truncated trace, orphaned segment-index
sidecar, key-mismatched envelope), then drives the operator path —
``python -m repro cache scrub`` — end to end and checks the
acceptance bars:

* the first scrub exits non-zero and quarantines **every** seeded-
  corrupt entry (moved under ``quarantine/``, never deleted);
* the valid entries still read back afterwards;
* a second scrub over the same store exits zero (clean);
* the JSONL report records both passes.

Artifacts land under ``--out`` (default ``scrub-out/``): the seeded
store, its quarantine, and ``scrub_report.jsonl`` — the CI uploads.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

from repro.cli import main as repro_main
from repro.cpu.trace import DynInst, Source
from repro.isa.opcodes import Category
from repro.runner import ResultStore, TraceStore

KEY_GOOD = "aa" + "0" * 62
KEY_TORN = "bb" + "0" * 62
KEY_ORPHAN = "cc" + "0" * 62
KEY_WRONG = "dd" + "0" * 62


def _records(n, pc=3):
    out = []
    for uid in range(n):
        out.append(DynInst(
            uid=uid, pc=pc, op="addi", category=Category.ALU,
            has_imm=True,
            srcs=(Source(uid, uid - 1 if uid else None,
                         pc if uid else None, False, 0),),
            out=uid + 1,
        ))
    return out


def seed(root: Path) -> int:
    """Valid entries plus four corruptions; returns the corrupt count."""
    results = ResultStore(root)
    traces = TraceStore(root)
    results.put(KEY_GOOD, {"name": "com", "nodes": 4})
    traces.put(KEY_GOOD, _records(5), n_static=8, complete=True)
    # Torn result envelope.
    torn = results.put(KEY_TORN, {"name": "go"})
    torn.write_text(torn.read_text()[:25])
    # Truncated trace.
    rotten = traces.put(KEY_TORN, _records(20), n_static=8,
                        complete=True)
    rotten.write_bytes(rotten.read_bytes()[:30])
    # Orphaned sidecar.
    orphan = traces.path_for_segidx(KEY_ORPHAN)
    orphan.parent.mkdir(parents=True, exist_ok=True)
    orphan.write_bytes(b"garbage")
    # Valid envelope filed under the wrong key.
    wrong = results.path_for(KEY_WRONG)
    wrong.parent.mkdir(parents=True, exist_ok=True)
    wrong.write_text(results.path_for(KEY_GOOD).read_text())
    return 4


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="scrub-out",
                        help="artifact directory (default: scrub-out)")
    args = parser.parse_args(argv)

    out = Path(args.out)
    if out.exists():
        shutil.rmtree(out)
    store = out / "store"
    report_path = out / "scrub_report.jsonl"
    seeded = seed(store)
    argv_scrub = ["cache", "scrub", "--cache-dir", str(store),
                  "--report", str(report_path)]

    problems: list[str] = []
    first = repro_main(argv_scrub)
    if first == 0:
        problems.append("first scrub exited 0 over a corrupt store")

    lines = [json.loads(line)
             for line in report_path.read_text().splitlines()]
    summary = lines[0]
    if summary["findings"] != seeded:
        problems.append(f"found {summary['findings']} of {seeded} "
                        f"seeded corruptions")
    if summary["quarantined"] != seeded:
        problems.append(f"quarantined {summary['quarantined']} of "
                        f"{seeded} findings")
    for finding in lines[1:1 + seeded]:
        destination = finding.get("quarantined_to")
        if not destination or not Path(destination).exists():
            problems.append(f"finding not quarantined: {finding}")

    if ResultStore(store).get(KEY_GOOD) != {"name": "com", "nodes": 4}:
        problems.append("valid result no longer readable after scrub")
    if TraceStore(store).get(KEY_GOOD, None) is None:
        problems.append("valid trace no longer readable after scrub")

    second = repro_main(argv_scrub)
    if second != 0:
        problems.append(f"rerun over the scrubbed store exited "
                        f"{second}, expected clean")

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print(f"[scrub smoke] {seeded}/{seeded} corruptions "
              f"quarantined, rerun clean; report at {report_path}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
