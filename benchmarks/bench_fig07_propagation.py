"""Regenerates Figure 7: propagation detail."""

from repro.report.experiments import figure7


def bench_figure7(benchmark, suite_results, save_tables):
    tables = benchmark(figure7, suite_results)
    save_tables("fig07_propagation", list(tables))
    node_table, arc_table = tables
    assert node_table.headers[2:] == ["p,p->p", "p,i->p", "p,n->p"]
