"""Regenerates Figure 9: generator-class contributions to propagation
(overall per class, and the top exact combinations)."""

from repro.report.experiments import figure9


def bench_figure9(benchmark, suite_results, save_tables):
    tables = benchmark(figure9, suite_results)
    save_tables("fig09_paths", list(tables))
    overall, combos = tables
    assert overall.headers[1:] == ["C", "D", "W", "I", "N", "M"]
    assert len(overall.rows) == 3
