"""Regenerates Figure 11: number of generates influencing a propagate,
and the distance from a propagate to its farthest generate, for the
compress / go / gcc analogues under the context predictor."""

from repro.report.experiments import figure11


def bench_figure11(benchmark, suite_results, save_tables):
    tables = benchmark(figure11, suite_results, ("com", "go", "gcc"),
                       "context")
    save_tables("fig11_influence", list(tables))
    influence, distance = tables
    assert influence.headers == ["K", "com", "go", "gcc"]
    for row in influence.rows:
        for cell in row[1:]:
            assert 0.0 <= cell <= 100.0
