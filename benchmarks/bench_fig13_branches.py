"""Regenerates Figure 13: branch predictability classes (gshare
direction outcome x value-predicted inputs, INT average)."""

from repro.report.experiments import figure13


def bench_figure13(benchmark, suite_results, save_tables):
    table = benchmark(figure13, suite_results)
    save_tables("fig13_branches", table)
    assert len(table.rows) == 12
    for column in (1, 2, 3):
        total = sum(row[column] for row in table.rows)
        assert abs(total - 100.0) < 1e-6  # classes partition all branches
