"""Regenerates Figure 6: generation detail (node classes and
single/repeated/write-once/input-data arc classes)."""

from repro.report.experiments import figure6


def bench_figure6(benchmark, suite_results, save_tables):
    tables = benchmark(figure6, suite_results)
    save_tables("fig06_generation", list(tables))
    node_table, arc_table = tables
    assert node_table.headers[2:] == ["i,i->p", "n,n->p", "i,n->p"]
    assert arc_table.headers[2:] == [
        "<wl:n,p>", "<rd:n,p>", "<r:n,p>", "<1:n,p>"
    ]
