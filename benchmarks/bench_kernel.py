"""Kernel parity report: columnar engine vs the reference analyzer.

Runs a (workload x analysis-variant) matrix through both engines and
verifies the byte-identity contract case by case — ``result_to_dict``
of each result pair must serialise to exactly the same JSON.  Alongside
the verdicts it records per-engine analyze wall time, so the report
doubles as a coarse per-case speedup table.

This is the artifact behind ``make kernel-parity`` and the CI
``kernel-parity`` job: it writes ``reports/kernel_parity.json`` and
exits non-zero on any mismatch, so a red run always leaves the exact
diverging (workload, variant) pair in the uploaded report.

    python benchmarks/bench_kernel.py

The matrix budget comes from ``REPRO_PARITY_BUDGET`` (default 4000
instructions; the differential *fuzz* tier lives in
tests/properties/test_kernel_fuzz.py and sweeps far more configs).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.core import AnalysisConfig, analyze_trace
from repro.core.export import result_to_dict
from repro.gen import generated_workload
from repro.workloads import SUITE, get_workload

BUDGET = int(os.environ.get("REPRO_PARITY_BUDGET", "4000"))

#: Variants mirroring tests/core/test_kernel_parity.py: every
#: classification path the kernel implements.
VARIANTS = {
    "default": AnalysisConfig(max_instructions=BUDGET),
    "hybrid": AnalysisConfig(
        predictors=("hybrid", "last"), max_instructions=BUDGET
    ),
    "local-branch": AnalysisConfig(
        branch_predictor="local", gshare_bits=10, max_instructions=BUDGET
    ),
    "params": AnalysisConfig(
        predictors=("last(bits=8,hysteresis=0)",
                    "context(l1=8,l2=10,order=2)", "stride(bits=8)"),
        max_instructions=BUDGET,
    ),
    "trees-all": AnalysisConfig(
        trees_for=("last", "stride", "context"), gen_cap=4,
        max_instructions=BUDGET,
    ),
    "tracking-off": AnalysisConfig(
        track_sequences=False, track_branches=False, track_unpred=False,
        track_paths=False, max_instructions=BUDGET,
    ),
}

#: Generated workloads extend the fixed suite with fuzz-grid points.
GEN_NAMES = ("gen:loopy@11", "gen:branchy@12", "gen:float-kernel@13")


def _trace_of(name: str):
    if name.startswith("gen:"):
        machine = generated_workload(name).machine()
    else:
        machine = get_workload(name).machine()
    return list(machine.trace()), len(machine.program.instructions)


#: In-memory segment count for the segmented column (thread executor).
SEGMENTS = int(os.environ.get("REPRO_PARITY_SEGMENTS", "4"))


def _timed_analysis(records, n_static, name, config, engine,
                    segments=None):
    start = time.perf_counter()
    result = analyze_trace(records, n_static, name=name, config=config,
                           engine=engine, segments=segments)
    wall = time.perf_counter() - start
    return json.dumps(result_to_dict(result), sort_keys=False), wall


def parity_report() -> dict:
    """Run the matrix; returns the report dict (see module docstring)."""
    cases = []
    ref_total = col_total = seg_total = 0.0
    mismatches = 0
    matrix = [(w.name, "default") for w in SUITE]
    matrix += [("com", variant) for variant in sorted(VARIANTS)
               if variant != "default"]
    matrix += [(name, "default") for name in GEN_NAMES]
    for workload, variant in matrix:
        records, n_static = _trace_of(workload)
        config = VARIANTS[variant]
        # Fresh column decode per case: a shared object would let the
        # kernel's bank caches mask a per-case divergence.
        reference, ref_wall = _timed_analysis(
            records, n_static, workload, config, "reference"
        )
        columnar, col_wall = _timed_analysis(
            records, n_static, workload, config, "columnar"
        )
        # The segment-parallel kernel shares the identity contract:
        # same bytes through checkpointed cuts (docs/sharding.md).
        segmented, seg_wall = _timed_analysis(
            records, n_static, workload, config, "columnar",
            segments=SEGMENTS,
        )
        match = columnar == reference and segmented == reference
        mismatches += 0 if match else 1
        ref_total += ref_wall
        col_total += col_wall
        seg_total += seg_wall
        cases.append({
            "workload": workload,
            "variant": variant,
            "match": match,
            "reference_s": round(ref_wall, 4),
            "columnar_s": round(col_wall, 4),
            "segmented_s": round(seg_wall, 4),
            "speedup": round(ref_wall / max(col_wall, 1e-9), 2),
        })
    return {
        "benchmark": "columnar-vs-reference parity matrix",
        "budget": BUDGET,
        "segments": SEGMENTS,
        "cases": cases,
        "summary": {
            "cases": len(cases),
            "mismatches": mismatches,
            "reference_s": round(ref_total, 3),
            "columnar_s": round(col_total, 3),
            "segmented_s": round(seg_total, 3),
            "speedup": round(ref_total / max(col_total, 1e-9), 2),
        },
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def main(output_path=None) -> int:
    report = parity_report()
    if output_path is None:
        output_path = Path(__file__).resolve().parent.parent \
            / "reports" / "kernel_parity.json"
    output_path = Path(output_path)
    output_path.parent.mkdir(parents=True, exist_ok=True)
    output_path.write_text(json.dumps(report, indent=2) + "\n")

    summary = report["summary"]
    print(f"{summary['cases']} parity cases @ {BUDGET} instructions: "
          f"{summary['mismatches']} mismatches, "
          f"reference {summary['reference_s']}s vs columnar "
          f"{summary['columnar_s']}s ({summary['speedup']}x); "
          f"segmented x{report['segments']} {summary['segmented_s']}s")
    for case in report["cases"]:
        if not case["match"]:
            print(f"PARITY FAILED: {case['workload']} / {case['variant']}")
    print(f"[written to {output_path}]", file=sys.stderr)
    return 1 if summary["mismatches"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
