"""Benchmarks the experiment runner itself.

Measures the orchestration layer rather than any exhibit: serial vs
parallel suite wall time (cold store), cold vs warm cache, and the
two-tier sweep path — a 4-config sweep over all 12 workloads cold,
with a warm trace store, and with both tiers warm.  On a multi-core
machine the parallel cold run should land well under the serial one
(the 12 workloads are independent); the warm runs should beat cold by
a wide margin because nothing is re-simulated (trace tier) or even
re-analysed (result tier).

Run under pytest for statistics, or directly for the CI smoke that
records ``BENCH_runner.json`` at the repo root::

    python benchmarks/bench_runner.py

Worker count comes from ``REPRO_BENCH_JOBS`` (default: CPU count;
the smoke always runs serial so its ratios are scheduling-free).
"""

from __future__ import annotations

import os

from repro.runner import (
    ExecutionPolicy,
    ExperimentConfig,
    ExperimentRunner,
    ResultStore,
    TraceStore,
)

#: Smaller budget than the exhibit benches: each round pays the full
#: 12-workload trace cost from scratch.
RUNNER_BUDGET = 6_000

CONFIG = ExperimentConfig(max_instructions=RUNNER_BUDGET)

#: The sweep the acceptance benchmark measures: one full-predictor
#: config plus three single-predictor variants, all sharing each
#: workload's execution.
SWEEP_CONFIGS = (
    ExperimentConfig(max_instructions=RUNNER_BUDGET),
    ExperimentConfig(max_instructions=RUNNER_BUDGET,
                     predictors=("last",), trees_for=()),
    ExperimentConfig(max_instructions=RUNNER_BUDGET,
                     predictors=("stride",), trees_for=()),
    ExperimentConfig(max_instructions=RUNNER_BUDGET,
                     predictors=("context",), gen_cap=32),
)

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", str(os.cpu_count() or 1)))

#: Segment-parallel smoke: one large stored trace, serial vs sharded
#: replay.  ~1e6 records is the paper-scale regime the segment index
#: was designed for; ``REPRO_PARALLEL_RECORDS`` shrinks it for quick
#: local runs.
PARALLEL_RECORDS = int(os.environ.get("REPRO_PARALLEL_RECORDS",
                                      "1000000"))
PARALLEL_SCALE = int(os.environ.get("REPRO_PARALLEL_SCALE", "4"))
PARALLEL_JOBS = int(os.environ.get("REPRO_PARALLEL_JOBS",
                                   str(os.cpu_count() or 1)))


def _cold_setup(tmp_path_factory, jobs):
    def setup():
        root = tmp_path_factory.mktemp("runner-cold")
        return (ExperimentRunner(store=ResultStore(root), jobs=jobs),), {}

    return setup


def _run(runner):
    return runner.run(CONFIG).require()


def bench_suite_serial_cold(benchmark, tmp_path_factory):
    results = benchmark.pedantic(
        _run, setup=_cold_setup(tmp_path_factory, jobs=1),
        rounds=2, iterations=1,
    )
    assert len(results) == 12


def bench_suite_parallel_cold(benchmark, tmp_path_factory):
    results = benchmark.pedantic(
        _run, setup=_cold_setup(tmp_path_factory, jobs=JOBS),
        rounds=2, iterations=1,
    )
    assert len(results) == 12


def bench_suite_warm_cache(benchmark, tmp_path_factory):
    root = tmp_path_factory.mktemp("runner-warm")
    ExperimentRunner(store=ResultStore(root)).run(CONFIG).require()

    def warm_run():
        # A fresh runner each call: hits come from the disk store, not
        # the in-process memo.
        run = ExperimentRunner(store=ResultStore(root)).run(CONFIG)
        assert run.metrics.count("computed") == 0
        return run.require()

    results = benchmark(warm_run)
    assert len(results) == 12


# ----------------------------------------------------------------------
# The two-tier sweep path.
# ----------------------------------------------------------------------

def _two_tier(root, observe: bool = False) -> ExperimentRunner:
    return ExperimentRunner(
        store=ResultStore(root), trace_store=TraceStore(root),
        observe=observe,
    )


def _sweep(runner):
    runs = runner.run_many(SWEEP_CONFIGS)
    for run in runs:
        run.require()
    return runs


def bench_sweep_cold(benchmark, tmp_path_factory):
    def setup():
        return (_two_tier(tmp_path_factory.mktemp("sweep-cold")),), {}

    runs = benchmark.pedantic(_sweep, setup=setup, rounds=2, iterations=1)
    assert len(runs) == len(SWEEP_CONFIGS)


def bench_sweep_trace_warm(benchmark, tmp_path_factory):
    """Warm trace tier, cold result tier: every job replays."""
    root = tmp_path_factory.mktemp("sweep-tw")
    _sweep(_two_tier(root))

    counter = iter(range(1_000_000))

    def setup():
        runner = ExperimentRunner(
            store=ResultStore(root / f"fresh{next(counter)}"),
            trace_store=TraceStore(root),
        )
        return (runner,), {}

    runs = benchmark.pedantic(_sweep, setup=setup, rounds=2, iterations=1)
    assert all(
        metric.status == "replayed"
        for run in runs for metric in run.metrics.jobs
    )


def bench_sweep_full_warm(benchmark, tmp_path_factory):
    """Both tiers warm: every job is a result-store hit."""
    root = tmp_path_factory.mktemp("sweep-fw")
    _sweep(_two_tier(root))

    def warm_run():
        runs = _sweep(_two_tier(root))
        assert all(
            metric.status == "cache-hit"
            for run in runs for metric in run.metrics.jobs
        )
        return runs

    runs = benchmark(warm_run)
    assert len(runs) == len(SWEEP_CONFIGS)


# ----------------------------------------------------------------------
# Segment-parallel single-trace smoke.
# ----------------------------------------------------------------------

def parallel_smoke() -> dict:
    """Serial vs segment-parallel replay of one large stored trace.

    Captures a ``PARALLEL_RECORDS``-record ``com`` trace once (writing
    its segment-index sidecar), then times two trace-warm replays from
    a cold result tier: serial, and segment-parallel over
    ``PARALLEL_JOBS`` workers.  The two results must serialize to the
    same bytes; ``analyze_parallel_speedup`` is their wall ratio.  On
    a single-core host the ratio is honestly ~1x (worker startup
    dominates) — the >= 2.5x acceptance gate only arms with 4+ cores
    (the CI shard-parity job), see :func:`check`.
    """
    import json
    import shutil
    import tempfile
    import time
    from pathlib import Path

    from repro.core.export import result_to_dict

    jobs = max(1, PARALLEL_JOBS)
    segments = max(4, jobs)
    spacing = max(1, PARALLEL_RECORDS // (2 * segments))
    policy = ExecutionPolicy(jobs=jobs, segments=segments,
                             segment_records=spacing)
    config = ExperimentConfig(max_instructions=PARALLEL_RECORDS,
                              workloads=("com",), scale=PARALLEL_SCALE)
    seconds = {}

    def timed(label, fn):
        start = time.perf_counter()
        out = fn()
        seconds[label] = round(time.perf_counter() - start, 3)
        return out

    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-shard-"))
    try:
        trace_store = TraceStore(scratch)
        capture = ExperimentRunner(store=ResultStore(scratch),
                                   trace_store=trace_store,
                                   policy=policy)
        timed("capture", lambda: capture.run_one("com", config))

        def replay(replay_policy, tag):
            runner = ExperimentRunner(store=ResultStore(scratch / tag),
                                      trace_store=TraceStore(scratch),
                                      policy=replay_policy)
            return timed(tag, lambda: runner.run_one("com", config))

        serial = replay(ExecutionPolicy(), "serial_replay")
        sharded = replay(policy, "segmented_replay")
        assert (json.dumps(result_to_dict(sharded))
                == json.dumps(result_to_dict(serial))), \
            "segment-parallel replay diverged from the serial engine"
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return {
        "records": PARALLEL_RECORDS,
        "scale": PARALLEL_SCALE,
        "jobs": jobs,
        "segments": segments,
        "segment_records": spacing,
        "cores": os.cpu_count() or 1,
        "seconds": seconds,
        "analyze_parallel_speedup": round(
            seconds["serial_replay"]
            / max(seconds["segmented_replay"], 1e-9), 2
        ),
    }


# ----------------------------------------------------------------------
# CI smoke: cold vs warm sweep, recorded at the repo root.
# ----------------------------------------------------------------------

def smoke(output_path=None) -> dict:
    """One serial cold-vs-warm sweep comparison; writes BENCH_runner.json.

    Measured phases, all with ``jobs=1`` so the ratios are pure cache
    effects rather than scheduling:

    * ``naive`` — the pre-two-tier baseline: one independent
      simulate-and-analyse suite run per config, no stores;
    * ``cold`` — the two-tier sweep into empty stores (each workload
      simulated once, analyzers fanned out over the single pass);
    * ``trace_warm`` — warm trace store, empty result store (every job
      replays the stored trace);
    * ``full_warm`` — both tiers warm (every job is a store hit).

    The cold and trace-warm sweeps run once per analysis engine
    (columnar and reference) under an observing runner
    (:mod:`repro.obs`); the per-phase wall-time breakdown lands in the
    report's ``phases`` section keyed by engine, and
    ``speedup.analyze_columnar_vs_reference`` compares the two
    engines' cold ``analyze`` walls — the columnar kernel's headline
    number (see docs/kernel.md).  The headline ``seconds``/``speedup``
    entries describe the columnar engine, today's default.
    """
    import json
    import platform
    import shutil
    import sys
    import tempfile
    import time
    from pathlib import Path

    from repro.obs import aggregate_spans

    def phase_breakdown(runs) -> dict:
        """Per-phase wall seconds from a sweep's recorded profile.

        ``store`` sums the four store span kinds; ``trace.encode`` is
        nested inside ``store.trace.put`` so it is reported separately
        rather than added to the store total.
        """
        totals = aggregate_spans(runs[0].metrics.profile["spans"])
        wall = lambda name: totals.get(name, {}).get("wall", 0.0)  # noqa: E731
        return {
            "simulate": round(wall("simulate"), 3),
            "trace_decode": round(wall("trace.decode"), 3),
            "analyze": round(wall("analyze"), 3),
            "store": round(
                wall("store.result.get") + wall("store.result.put")
                + wall("store.trace.get") + wall("store.trace.put")
                - wall("trace.decode"), 3
            ),
        }

    timings = {}
    phases = {}

    def timed(label, fn):
        start = time.perf_counter()
        out = fn()
        timings[label] = time.perf_counter() - start
        return out

    def engine_sweeps(engine: str, scratch: Path) -> None:
        """Cold and trace-warm sweeps for one engine, into ``phases``."""
        suffix = "" if engine == "columnar" else f"_{engine}"
        cold = timed(f"cold{suffix}", lambda: _sweep(ExperimentRunner(
            store=ResultStore(scratch), trace_store=TraceStore(scratch),
            observe=True, engine=engine,
        )))
        phases[engine] = {"cold": phase_breakdown(cold)}
        trace_warm_runner = ExperimentRunner(
            store=ResultStore(scratch / "fresh-results"),
            trace_store=TraceStore(scratch),
            observe=True, engine=engine,
        )
        trace_warm = timed(f"trace_warm{suffix}",
                           lambda: _sweep(trace_warm_runner))
        assert all(
            metric.status == "replayed"
            for run in trace_warm for metric in run.metrics.jobs
        )
        phases[engine]["trace_warm"] = phase_breakdown(trace_warm)

    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-runner-"))
    try:
        def naive():
            runner = ExperimentRunner(store=None)
            return [
                runner.run(config).require() for config in SWEEP_CONFIGS
            ]

        timed("naive", naive)
        engine_sweeps("columnar", scratch)
        engine_sweeps("reference", scratch / "reference")
        full_warm = timed("full_warm", lambda: _sweep(ExperimentRunner(
            store=ResultStore(scratch), trace_store=TraceStore(scratch),
        )))
        assert all(
            metric.status == "cache-hit"
            for run in full_warm for metric in run.metrics.jobs
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    parallel = parallel_smoke()

    col, ref = phases["columnar"], phases["reference"]
    analyze_speedup = round(
        ref["cold"]["analyze"] / max(col["cold"]["analyze"], 1e-9), 2
    )
    phases["note"] = (
        "columnar replay decodes the stored trace straight into "
        "columns, so trace_warm analyze "
        f"({col['trace_warm']['analyze']}s) now undercuts cold analyze "
        f"({col['cold']['analyze']}s) instead of exceeding it; the "
        f"reference engine's cold analyze ({ref['cold']['analyze']}s) "
        f"is the {analyze_speedup}x baseline the kernel is measured "
        "against"
    )

    workloads = len(full_warm[0].results)
    report = {
        "benchmark": "4-config sweep over the full suite, serial",
        "budget": RUNNER_BUDGET,
        "configs": len(SWEEP_CONFIGS),
        "workloads": workloads,
        "seconds": {k: round(v, 3) for k, v in timings.items()},
        "speedup": {
            "cold_vs_naive": round(timings["naive"] / timings["cold"], 2),
            "trace_warm_vs_cold": round(
                timings["cold"] / timings["trace_warm"], 2
            ),
            "full_warm_vs_cold": round(
                timings["cold"] / timings["full_warm"], 2
            ),
            "analyze_columnar_vs_reference": analyze_speedup,
        },
        "analyze_speedup": analyze_speedup,
        "analyze_parallel_speedup": parallel["analyze_parallel_speedup"],
        "parallel": parallel,
        "phases": phases,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if output_path is None:
        output_path = Path(__file__).resolve().parent.parent \
            / "BENCH_runner.json"
    Path(output_path).write_text(json.dumps(report, indent=2) + "\n")

    print(f"{workloads} workloads x {len(SWEEP_CONFIGS)} configs "
          f"@ {RUNNER_BUDGET} instructions:")
    for label in ("naive", "cold", "trace_warm", "full_warm",
                  "cold_reference", "trace_warm_reference"):
        print(f"  {label:<22} {timings[label]:>7.2f}s")
    for label, value in report["speedup"].items():
        print(f"  {label:<29} {value:>6.2f}x")
    for engine in ("columnar", "reference"):
        for label in ("cold", "trace_warm"):
            parts = ", ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in phases[engine][label].items()
            )
            print(f"  {engine}/{label} phases: {parts}")
    print(f"  segment-parallel replay of {parallel['records']:,} "
          f"records ({parallel['jobs']} worker(s), "
          f"{parallel['segments']} segments, "
          f"{parallel['cores']} core(s)): "
          f"serial {parallel['seconds']['serial_replay']}s vs "
          f"sharded {parallel['seconds']['segmented_replay']}s "
          f"({parallel['analyze_parallel_speedup']}x)")
    print(f"[written to {output_path}]", file=sys.stderr)
    return report


def check(report) -> list[str]:
    """The smoke's acceptance gates; returns failed-gate descriptions."""
    failures = []
    if report["speedup"]["full_warm_vs_cold"] < 3.0:
        failures.append(
            "full_warm_vs_cold "
            f"{report['speedup']['full_warm_vs_cold']}x < 3x"
        )
    if report["analyze_speedup"] < 3.0:
        failures.append(
            f"analyze_speedup {report['analyze_speedup']}x < 3x "
            "(columnar vs reference)"
        )
    columnar = report["phases"]["columnar"]
    if columnar["trace_warm"]["analyze"] > columnar["cold"]["analyze"]:
        failures.append(
            "warm replay analyze "
            f"({columnar['trace_warm']['analyze']}s) exceeds cold "
            f"analyze ({columnar['cold']['analyze']}s)"
        )
    # The segment-parallel gate needs real cores to mean anything:
    # on a 1-2 core host the number is recorded but not enforced.
    parallel = report.get("parallel", {})
    speedup = parallel.get("analyze_parallel_speedup", 0.0)
    if parallel.get("cores", 0) >= 4 and speedup < 2.5:
        failures.append(
            f"analyze_parallel_speedup {speedup}x < 2.5x "
            f"on {parallel['cores']} cores"
        )
    return failures


if __name__ == "__main__":
    report = smoke()
    failed = check(report)
    for failure in failed:
        print(f"GATE FAILED: {failure}")
    raise SystemExit(1 if failed else 0)
