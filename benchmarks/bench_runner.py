"""Benchmarks the experiment runner itself.

Measures the orchestration layer rather than any exhibit: serial vs
parallel suite wall time (cold store) and cold vs warm cache.  On a
multi-core machine the parallel cold run should land well under the
serial one (the 12 workloads are independent); the warm run should be
orders of magnitude faster than either, because nothing is re-traced.

Worker count comes from ``REPRO_BENCH_JOBS`` (default: CPU count).
"""

from __future__ import annotations

import os

from repro.runner import ExperimentConfig, ExperimentRunner, ResultStore

#: Smaller budget than the exhibit benches: each round pays the full
#: 12-workload trace cost from scratch.
RUNNER_BUDGET = 6_000

CONFIG = ExperimentConfig(max_instructions=RUNNER_BUDGET)

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", str(os.cpu_count() or 1)))


def _cold_setup(tmp_path_factory, jobs):
    def setup():
        root = tmp_path_factory.mktemp("runner-cold")
        return (ExperimentRunner(store=ResultStore(root), jobs=jobs),), {}

    return setup


def _run(runner):
    return runner.run(CONFIG).require()


def bench_suite_serial_cold(benchmark, tmp_path_factory):
    results = benchmark.pedantic(
        _run, setup=_cold_setup(tmp_path_factory, jobs=1),
        rounds=2, iterations=1,
    )
    assert len(results) == 12


def bench_suite_parallel_cold(benchmark, tmp_path_factory):
    results = benchmark.pedantic(
        _run, setup=_cold_setup(tmp_path_factory, jobs=JOBS),
        rounds=2, iterations=1,
    )
    assert len(results) == 12


def bench_suite_warm_cache(benchmark, tmp_path_factory):
    root = tmp_path_factory.mktemp("runner-warm")
    ExperimentRunner(store=ResultStore(root)).run(CONFIG).require()

    def warm_run():
        # A fresh runner each call: hits come from the disk store, not
        # the in-process memo.
        run = ExperimentRunner(store=ResultStore(root)).run(CONFIG)
        assert run.metrics.count("computed") == 0
        return run.require()

    results = benchmark(warm_run)
    assert len(results) == 12
