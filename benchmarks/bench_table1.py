"""Regenerates Table 1: benchmark characteristics of the DPGs."""

from repro.report.experiments import table1


def bench_table1(benchmark, suite_results, save_tables):
    table = benchmark(table1, suite_results)
    save_tables("table1", table)
    assert len(table.rows) == len(suite_results)
