"""Regenerates Figure 8: termination detail."""

from repro.report.experiments import figure8


def bench_figure8(benchmark, suite_results, save_tables):
    tables = benchmark(figure8, suite_results)
    save_tables("fig08_termination", list(tables))
    node_table, arc_table = tables
    assert node_table.headers[2:] == ["p,n->n", "p,p->n", "p,i->n"]
