"""Regenerates Figure 12: fully-predictable contiguous sequence
lengths (INT average, three predictors)."""

from repro.report.experiments import SEQUENCE_BUCKETS, figure12


def bench_figure12(benchmark, suite_results, save_tables):
    table = benchmark(figure12, suite_results)
    save_tables("fig12_sequences", table)
    assert len(table.rows) == len(SEQUENCE_BUCKETS)
    # Bucket shares cannot exceed 100% of instructions in total.
    for column in (1, 2, 3):
        assert sum(row[column] for row in table.rows) <= 100.0 + 1e-9
