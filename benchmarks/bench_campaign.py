"""Benchmarks the campaign engine end-to-end.

Under pytest-benchmark this measures the cold and warm grid; run
directly it is the CI ``campaign-smoke``::

    python benchmarks/bench_campaign.py

The smoke runs ``examples/campaigns/smoke.toml`` (2 generated
workloads x 2 predictor banks) cold into a scratch cache, re-runs it
with a *fresh* runner over the same store — asserting, via the
``runner.resolve.*`` obs counters, that the warm pass touched zero
pool jobs — and emits the registry-driven report to
``campaign-report/`` at the repo root, asserting the directory
contains every registered table and plot.  Wall times land in
``BENCH_campaign.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.campaign import (
    create_report,
    load_spec,
    plot_registry,
    run_campaign,
    table_registry,
)
from repro.runner import ExperimentRunner, ResultStore, TraceStore

_ROOT = Path(__file__).resolve().parents[1]
SMOKE_SPEC = _ROOT / "examples" / "campaigns" / "smoke.toml"


def _runner(root, observe: bool = False) -> ExperimentRunner:
    return ExperimentRunner(
        store=ResultStore(root), trace_store=TraceStore(root),
        observe=observe,
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points.
# ----------------------------------------------------------------------

def bench_campaign_cold(benchmark, tmp_path_factory):
    spec = load_spec(SMOKE_SPEC)

    def setup():
        root = tmp_path_factory.mktemp("campaign-cold")
        return (spec,), {"runner": _runner(root)}

    campaign = benchmark.pedantic(run_campaign, setup=setup,
                                  rounds=2, iterations=1)
    assert campaign.pool_jobs == spec.jobs()


def bench_campaign_warm(benchmark, tmp_path_factory):
    spec = load_spec(SMOKE_SPEC)
    root = tmp_path_factory.mktemp("campaign-warm")
    run_campaign(spec, runner=_runner(root))

    def warm_run():
        campaign = run_campaign(spec, runner=_runner(root))
        assert campaign.fully_warm
        return campaign

    benchmark(warm_run)


def bench_campaign_report(benchmark, tmp_path_factory):
    root = tmp_path_factory.mktemp("campaign-report")
    campaign = run_campaign(load_spec(SMOKE_SPEC), runner=_runner(root))
    out = iter(range(1_000_000))

    def emit():
        return create_report(campaign, root / f"report{next(out)}")

    benchmark(emit)


# ----------------------------------------------------------------------
# CI smoke.
# ----------------------------------------------------------------------

def smoke(output_path=None, report_dir=None) -> dict:
    """Cold-vs-warm campaign; writes BENCH_campaign.json and a report.

    Fails (raises) when the warm re-run touches the pool, when the
    ``runner.resolve.*`` counters disagree with the grid size, or when
    the report directory is missing any registered exhibit.
    """
    import json
    import tempfile
    import time

    spec = load_spec(SMOKE_SPEC)
    spec.validate()
    grid = spec.jobs()

    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as scratch:
        print(f"[campaign-smoke] cold: {len(spec.workloads)} workload(s) "
              f"x {len(spec.variants)} variant(s) = {grid} jobs")
        start = time.perf_counter()
        cold = run_campaign(spec, runner=_runner(scratch))
        cold_s = time.perf_counter() - start
        assert cold.pool_jobs == grid, cold.resolve_counts

        print("[campaign-smoke] warm: fresh runner over the same store")
        warm_runner = _runner(scratch, observe=True)
        start = time.perf_counter()
        warm = run_campaign(spec, runner=warm_runner)
        warm_s = time.perf_counter() - start
        assert warm.fully_warm, warm.resolve_counts
        assert warm.pool_jobs == 0, warm.resolve_counts

        # The acceptance check proper: the runner's own resolution
        # counters say every grid cell resolved without computing.
        runs = warm_runner.run_many(spec.configs())
        profile = next(
            run.metrics.profile for run in runs
            if run.metrics.profile is not None
        )
        resolve = {
            counter: count
            for counter, count in profile.get("counters", {}).items()
            if counter.startswith("runner.resolve.")
        }
        assert resolve.get("runner.resolve.computed", 0) == 0, resolve
        assert resolve.get("runner.resolve.replayed", 0) == 0, resolve
        assert sum(resolve.values()) >= grid, resolve
        print(f"[campaign-smoke] resolve counters: "
              + ", ".join(f"{k.rsplit('.', 1)[1]}={v}"
                          for k, v in sorted(resolve.items())))

        out = Path(report_dir or _ROOT / "campaign-report")
        create_report(warm, out)
        missing = [
            str(path) for path in
            [out / "index.md", out / "campaign.json"]
            + [out / "tables" / f"{name}.txt" for name in table_registry]
            + [out / "plots" / f"{name}.svg" for name in plot_registry]
            if not path.is_file()
        ]
        assert not missing, f"report incomplete: {missing}"
        print(f"[campaign-smoke] report at {out}: "
              f"{len(table_registry)} table(s), "
              f"{len(plot_registry)} plot(s)")

    report = {
        "spec": str(SMOKE_SPEC.relative_to(_ROOT)),
        "grid_jobs": grid,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "warm_vs_cold": round(cold_s / warm_s, 1) if warm_s else None,
        "cold_resolve": dict(cold.resolve_counts),
        "warm_resolve": dict(warm.resolve_counts),
        "warm_pool_jobs": warm.pool_jobs,
        "report_dir": str(out),
        "tables": sorted(table_registry),
        "plots": sorted(plot_registry),
    }
    path = Path(output_path or _ROOT / "BENCH_campaign.json")
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[campaign-smoke] cold {cold_s:.2f}s -> warm {warm_s:.2f}s "
          f"({report['warm_vs_cold']}x); written to {path}")
    return report


if __name__ == "__main__":
    try:
        smoke()
    except AssertionError as error:
        print(f"[campaign-smoke] FAIL: {error}", file=sys.stderr)
        raise SystemExit(1)
