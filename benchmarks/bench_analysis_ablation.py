"""Ablation benches for the analysis-engine design choices.

DESIGN.md calls out three costs worth isolating: the per-predictor
classification core, the path (generator-class) dataflow, and the
per-generate tree tracking with capped id sets.  Each bench analyses
the same trace prefix with one feature layer enabled.
"""

import pytest

from repro.core import AnalysisConfig, analyze_machine
from repro.workloads import get_workload

_BUDGET = 10_000


def _analyze(config):
    machine = get_workload("com").machine()
    return analyze_machine(machine, "ablate", config)


def bench_classification_only(benchmark):
    config = AnalysisConfig(
        track_paths=False, track_sequences=False, track_branches=False,
        max_instructions=_BUDGET,
    )
    result = benchmark(_analyze, config)
    assert result.nodes == _BUDGET


def bench_with_paths(benchmark):
    config = AnalysisConfig(
        track_paths=True, trees_for=(), track_sequences=False,
        track_branches=False, max_instructions=_BUDGET,
    )
    result = benchmark(_analyze, config)
    assert result.predictors["context"].paths is not None


def bench_with_trees(benchmark):
    config = AnalysisConfig(
        track_paths=True, trees_for=("context",), track_sequences=False,
        track_branches=False, max_instructions=_BUDGET,
    )
    result = benchmark(_analyze, config)
    assert result.predictors["context"].trees is not None


def bench_full_tracking(benchmark):
    config = AnalysisConfig(max_instructions=_BUDGET)
    result = benchmark(_analyze, config)
    assert result.predictors["context"].sequences is not None


@pytest.mark.parametrize("count", [1, 2, 3])
def bench_predictor_count(benchmark, count):
    kinds = ("last", "stride", "context")[:count]
    config = AnalysisConfig(
        predictors=kinds, trees_for=(), track_sequences=False,
        track_branches=False, max_instructions=_BUDGET,
    )
    result = benchmark(_analyze, config)
    assert len(result.predictors) == count


@pytest.mark.parametrize("cap", [4, 64])
def bench_gen_cap(benchmark, cap):
    config = AnalysisConfig(
        predictors=("context",), trees_for=("context",), gen_cap=cap,
        track_sequences=False, track_branches=False,
        max_instructions=_BUDGET,
    )
    result = benchmark(_analyze, config)
    assert result.predictors["context"].trees is not None
