"""Predictor update throughput and accuracy on canonical sequences.

The paper's model makes ~5 predictor queries per dynamic instruction,
so `see()` cost dominates analysis time; these benches track it per
predictor kind, including the gshare branch predictor.
"""

import pytest

from repro.predictors import GsharePredictor, make_predictor

_N = 20_000


def _stride_sequence(n):
    return [(i * 3) & 0xFFFF for i in range(n)]


@pytest.mark.parametrize("kind", ["last", "stride", "context"])
def bench_value_predictor(benchmark, kind):
    values = _stride_sequence(_N)

    def run():
        predictor = make_predictor(kind)
        hits = 0
        for pc in range(8):
            for value in values[:_N // 8]:
                hits += predictor.see(pc, value)
        return hits

    hits = benchmark(run)
    assert hits >= 0


def bench_gshare(benchmark):
    outcomes = [(i % 7) < 4 for i in range(_N)]

    def run():
        predictor = GsharePredictor()
        return sum(predictor.see(i & 63, taken)
                   for i, taken in enumerate(outcomes))

    assert benchmark(run) > 0
