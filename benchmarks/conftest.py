"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's exhibits.  The
underlying workload analyses are shared through a session-scoped suite
run (cached in-process by :mod:`repro.report.experiments`), so the
whole harness pays the trace-analysis cost once.  Rendered tables are
written to ``benchmarks/results/`` so the regenerated exhibits persist
as artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.report.experiments import ExperimentConfig, run_suite

#: Dynamic-instruction budget per workload for the bench harness.  The
#: paper-quality runs use the report CLI with a larger budget; the
#: bench runs keep the suite fast while preserving the shapes.
BENCH_BUDGET = 25_000

BENCH_CONFIG = ExperimentConfig(max_instructions=BENCH_BUDGET)


@pytest.fixture(scope="session")
def suite_results():
    """Per-workload analysis results for the whole suite."""
    return run_suite(BENCH_CONFIG)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture()
def save_tables(results_dir):
    """Writer that persists rendered tables under benchmarks/results/."""

    def save(name: str, tables) -> None:
        if not isinstance(tables, (list, tuple)):
            tables = [tables]
        text = "\n\n".join(table.render() for table in tables) + "\n"
        (results_dir / f"{name}.txt").write_text(text)

    return save
