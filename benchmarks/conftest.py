"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's exhibits.  The
underlying workload analyses flow through the shared experiment runner
(:mod:`repro.runner`): the first harness run traces every workload
(in parallel when ``REPRO_JOBS`` > 1) and writes the results into the
persistent store, so later harness runs — and ``python -m repro.report``
— start warm and re-trace nothing.  Rendered tables are written to
``benchmarks/results/`` so the regenerated exhibits persist as
artifacts, alongside the runner's metrics for the suite run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.runner import ExperimentConfig, default_runner

#: Dynamic-instruction budget per workload for the bench harness.  The
#: paper-quality runs use the report CLI with a larger budget; the
#: bench runs keep the suite fast while preserving the shapes.
BENCH_BUDGET = 25_000

BENCH_CONFIG = ExperimentConfig(max_instructions=BENCH_BUDGET)


@pytest.fixture(scope="session")
def suite_results(results_dir):
    """Per-workload analysis results for the whole suite."""
    run = default_runner().run(BENCH_CONFIG)
    run.metrics.dump(results_dir / "runner_metrics.json")
    return run.require()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture()
def save_tables(results_dir):
    """Writer that persists rendered tables under benchmarks/results/."""

    def save(name: str, tables) -> None:
        if not isinstance(tables, (list, tuple)):
            tables = [tables]
        text = "\n\n".join(table.render() for table in tables) + "\n"
        (results_dir / f"{name}.txt").write_text(text)

    return save
