"""Regenerates Figure 5: overall node/arc generation, propagation and
termination for the three predictors, with INT and FLOAT averages."""

from repro.report.experiments import figure5


def bench_figure5(benchmark, suite_results, save_tables):
    table = benchmark(figure5, suite_results)
    save_tables("fig05_overall", table)
    # 12 workloads + INT + FLOAT averages, one row per predictor.
    assert len(table.rows) == (len(suite_results) + 2) * 3
