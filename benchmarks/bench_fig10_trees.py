"""Regenerates Figure 10: predictability-tree longest paths and
aggregate propagation (gcc analogue, context predictor)."""

from repro.report.experiments import figure10


def bench_figure10(benchmark, suite_results, save_tables):
    table = benchmark(figure10, suite_results, "gcc", "context")
    save_tables("fig10_trees", table)
    # Cumulative curves must be non-decreasing and end at 100%.
    gens = [row[1] for row in table.rows]
    aggs = [row[2] for row in table.rows]
    assert gens == sorted(gens) and aggs == sorted(aggs)
    assert round(gens[-1]) == 100 and round(aggs[-1]) == 100
