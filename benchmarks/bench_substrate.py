"""Substrate throughput: assembler, compiler, and simulator speed.

Not a paper exhibit, but the cost model behind DESIGN.md's performance
budget: how fast the tracing machine and the plain (untraced) machine
retire instructions, and what compiling/assembling a workload costs.
"""

import itertools

from repro.minic import compile_program, compile_source
from repro.workloads import get_workload

_BUDGET = 20_000


def bench_compile_workload(benchmark):
    source = get_workload("gcc").source()
    assembly = benchmark(compile_source, source)
    assert "jal main" in assembly


def bench_assemble_workload(benchmark):
    source = get_workload("gcc").source()
    program = benchmark(compile_program, source)
    assert len(program) > 100


def _drain(machine, budget):
    for __ in itertools.islice(machine.trace(), budget):
        pass
    return machine.uid


def bench_machine_tracing(benchmark):
    workload = get_workload("com")

    def run():
        return _drain(workload.machine(), _BUDGET)

    assert benchmark(run) >= _BUDGET


def bench_machine_untraced(benchmark):
    workload = get_workload("com")

    def run():
        machine = workload.machine(tracing=False,
                                   max_instructions=_BUDGET + 1)
        try:
            machine.run()
        except Exception:
            pass  # instruction budget reached
        return machine.uid

    assert benchmark(run) >= _BUDGET
