"""Benches for the model's extension features (paper Section 6
directions): the hybrid predictor, confidence gating, delayed update,
and the two-level local branch predictor alternative.

These are not paper exhibits; they quantify the design space the paper
points at, on the same workload substrate.
"""

import pytest

from repro.core import AnalysisConfig, analyze_machine
from repro.predictors import (
    ConfidentPredictor,
    DelayedPredictor,
    make_branch_predictor,
    make_predictor,
)
from repro.workloads import get_workload

_BUDGET = 10_000


def _output_stream(name, budget=_BUDGET):
    """(pc, value) pairs of predictable outputs from a workload trace."""
    from itertools import islice

    stream = []
    for dyn in islice(get_workload(name).machine().trace(), budget):
        if dyn.out is not None and not dyn.is_branch:
            stream.append((dyn.pc, dyn.out))
    return stream


@pytest.fixture(scope="module")
def gcc_outputs():
    return _output_stream("gcc")


@pytest.mark.parametrize("kind", ["stride", "context", "hybrid"])
def bench_hybrid_vs_components(benchmark, gcc_outputs, kind):
    def run():
        predictor = make_predictor(kind)
        return sum(predictor.see(pc, value) for pc, value in gcc_outputs)

    hits = benchmark(run)
    assert 0 < hits <= len(gcc_outputs)


def bench_confidence_gating(benchmark, gcc_outputs):
    def run():
        predictor = ConfidentPredictor(make_predictor("stride"),
                                       threshold=4)
        for pc, value in gcc_outputs:
            predictor.see(pc, value)
        return predictor

    predictor = benchmark(run)
    # Gated predictions must be at least as accurate as the raw stream.
    raw = make_predictor("stride")
    raw_hits = sum(raw.see(pc, value) for pc, value in gcc_outputs)
    assert predictor.accuracy() >= raw_hits / len(gcc_outputs)


@pytest.mark.parametrize("delay", [0, 4, 32])
def bench_delayed_update(benchmark, gcc_outputs, delay):
    def run():
        predictor = DelayedPredictor("stride", delay=delay)
        return sum(predictor.see(pc, value) for pc, value in gcc_outputs)

    hits = benchmark(run)
    assert hits >= 0


@pytest.mark.parametrize("kind", ["gshare", "local"])
def bench_branch_predictors(benchmark, kind):
    from itertools import islice

    branches = []
    for dyn in islice(get_workload("go").machine().trace(), 30_000):
        if dyn.is_branch:
            branches.append((dyn.pc, dyn.taken))

    def run():
        predictor = make_branch_predictor(kind)
        return sum(predictor.see(pc, taken) for pc, taken in branches)

    hits = benchmark(run)
    assert hits / len(branches) > 0.7


def bench_analysis_with_hybrid(benchmark):
    config = AnalysisConfig(
        predictors=("stride", "hybrid"), trees_for=(),
        max_instructions=_BUDGET,
    )

    def run():
        machine = get_workload("com").machine()
        return analyze_machine(machine, "hybrid", config)

    result = benchmark(run)
    assert "hybrid" in result.predictors


@pytest.mark.parametrize("ways", [1, 4, 16])
def bench_instruction_reuse(benchmark, ways):
    """Reuse-buffer sweep (paper ref [16]; Section 6's memoization
    suggestion): reuse rate as a function of buffer depth."""
    config = AnalysisConfig(
        predictors=("stride",), trees_for=(), track_paths=False,
        track_sequences=True, track_branches=False,
        track_reuse=True, reuse_ways=ways, max_instructions=_BUDGET,
    )

    def run():
        machine = get_workload("ijp").machine()
        return analyze_machine(machine, "reuse", config)

    result = benchmark(run)
    stats = result.reuse
    assert 0.0 < stats.reuse_rate() < 1.0
