"""Reporting layer: regenerates every table and figure of the paper.

:mod:`repro.report.experiments` holds one function per paper exhibit
(Table 1, Figures 5–13); each returns a :class:`repro.report.tables.Table`
(or several) rendering the same rows/series the paper plots.  The CLI
(``python -m repro.report``) runs them from the command line.
"""

from repro.report.experiments import (
    ExperimentConfig,
    critical_points,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    run_suite,
    table1,
)
from repro.report.tables import Table

__all__ = [
    "ExperimentConfig",
    "Table",
    "critical_points",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "run_suite",
    "table1",
]
