"""One function per paper exhibit (Table 1, Figures 5-13).

Every function takes the per-workload :class:`AnalysisResult` mapping
produced by :func:`run_suite` and renders the same rows/series the
paper's figure plots.  Percentages follow the paper's convention: the
y-axes of Figs. 5-9 are percentages of *total nodes plus arcs* of the
workload's DPG; Fig. 12 is a percentage of dynamic instructions;
Fig. 13 a percentage of dynamic conditional branches.
"""

from __future__ import annotations

from repro.core import AnalysisResult
from repro.core.events import (
    ARC_NP,
    ARC_PN,
    ARC_PP,
    GenClass,
    InKind,
    UseClass,
    gen_mask_name,
)
from repro.core.stats import PredictorResult
from repro.predictors.base import PREDICTOR_KINDS
from repro.report.tables import (
    Table,
    bucket_label,
    cumulative_percent,
    log2_bucket_edges,
    percentage,
)
# Re-exported for backwards compatibility: the config type moved to
# the runner subsystem, which owns experiment execution.
from repro.runner.job import ExperimentConfig  # noqa: F401
from repro.workloads import get_workload

#: Single-letter predictor labels in the paper's order.
LETTERS = {"last": "L", "stride": "S", "context": "C"}


def run_workload(name: str, config: ExperimentConfig) -> AnalysisResult:
    """Deprecated alias of :func:`repro.api.run_workload`."""
    import warnings

    from repro import api

    warnings.warn(
        "repro.report.experiments.run_workload is deprecated; "
        "use repro.api.run_workload",
        DeprecationWarning, stacklevel=2,
    )
    return api.run_workload(name, config)


def run_suite(config: ExperimentConfig | None = None, jobs: int | None = None):
    """Deprecated alias of :func:`repro.api.run_suite`."""
    import warnings

    from repro import api

    warnings.warn(
        "repro.report.experiments.run_suite is deprecated; "
        "use repro.api.run_suite",
        DeprecationWarning, stacklevel=2,
    )
    return api.run_suite(config, jobs=jobs)


def _kinds(results):
    kinds = {}
    for name in results:
        kinds[name] = get_workload(name).kind
    return kinds


def _averaged_rows(results, row_fn):
    """Yield per-workload rows plus INT/FLOAT average rows.

    ``row_fn(result) -> list[float]`` produces the numeric cells for
    one workload; averages are arithmetic means of those percentages,
    matching the paper's averaging.
    """
    kinds = _kinds(results)
    groups = {"int": [], "fp": []}
    rows = []
    for name, result in results.items():
        cells = row_fn(result)
        rows.append((name, cells))
        groups[kinds[name]].append(cells)
    for label, key in (("INT", "int"), ("FLOAT", "fp")):
        member_rows = groups[key]
        if member_rows:
            mean = [
                sum(column) / len(member_rows)
                for column in zip(*member_rows)
            ]
            rows.append((label, mean))
    return rows


# ----------------------------------------------------------------------
# Table 1.
# ----------------------------------------------------------------------

def table1(results) -> Table:
    """Benchmark characteristics (paper Table 1)."""
    table = Table(
        "Table 1: Benchmark characteristics (DPG statistics)",
        ["bench", "static", "nodes", "edges", "edges/node",
         "D-nodes %", "D-edges %"],
        float_format="{:.3f}",
    )
    for name, result in results.items():
        table.add_row(
            name,
            result.static_instructions,
            result.nodes,
            result.arcs,
            result.edge_node_ratio(),
            percentage(result.d_nodes, result.nodes),
            percentage(result.d_arcs, result.arcs),
        )
    table.add_note("paper: edges/node ~1.5 INT, ~1.7 FP; "
                   "D nodes < 0.03%; D-edge share mostly < 1%")
    return table


# ----------------------------------------------------------------------
# Figure 5: overall generation / propagation / termination.
# ----------------------------------------------------------------------

def _behavior_cells(result: AnalysisResult, pred: PredictorResult):
    elements = result.elements
    nodes = pred.nodes
    arcs = pred.arcs
    node_gen = node_prop = node_term = 0
    for kind in InKind:
        predicted = nodes.count(kind, True)
        missed = nodes.count(kind, False)
        if kind in (InKind.PP, InKind.PI, InKind.PN):
            node_prop += predicted
            node_term += missed
        else:
            node_gen += predicted
    return [
        percentage(node_gen, elements),
        percentage(node_prop, elements),
        percentage(node_term, elements),
        percentage(arcs.xy_total(ARC_NP), elements),
        percentage(arcs.xy_total(ARC_PP), elements),
        percentage(arcs.xy_total(ARC_PN), elements),
    ]


def figure5(results) -> Table:
    """Overall node and arc predictability (paper Fig. 5)."""
    table = Table(
        "Figure 5: overall node/arc generation, propagation, termination"
        " (% of nodes+arcs)",
        ["bench", "pred", "node gen", "node prop", "node term",
         "arc gen", "arc prop", "arc term", "prop total"],
    )
    for name, cells in _averaged_rows(
        results, lambda r: _all_pred_cells(r, _behavior_cells)
    ):
        _emit_pred_rows(table, name, cells, per_pred=6, extra_total=(1, 4))
    table.add_note("paper: propagation dominates; 40-65% (INT) / "
                   "25-60% (FP) of nodes+arcs propagate; C > S > L")
    return table


def _all_pred_cells(result: AnalysisResult, cell_fn):
    cells = []
    for kind in PREDICTOR_KINDS:
        pred = result.predictors.get(kind)
        if pred is not None:
            cells.extend(cell_fn(result, pred))
    return cells


def _emit_pred_rows(table, name, cells, per_pred, extra_total=None):
    """Split a flat averaged row back into one table row per predictor."""
    for index, kind in enumerate(PREDICTOR_KINDS):
        chunk = cells[index * per_pred:(index + 1) * per_pred]
        if not chunk:
            continue
        row = [name if index == 0 else "", LETTERS[kind], *chunk]
        if extra_total is not None:
            node_prop_idx, arc_prop_idx = extra_total
            row.append(chunk[node_prop_idx] + chunk[arc_prop_idx])
        table.add_row(*row)


# ----------------------------------------------------------------------
# Figures 6-8: generation / propagation / termination detail.
# ----------------------------------------------------------------------

def _node_class_cells(kinds_out):
    def cell_fn(result, pred):
        elements = result.elements
        return [
            percentage(pred.nodes.count(kind, out), elements)
            for kind, out in kinds_out
        ]
    return cell_fn


def _arc_class_cells(uses_xy):
    def cell_fn(result, pred):
        elements = result.elements
        return [
            percentage(pred.arcs.count(use, xy), elements)
            for use, xy in uses_xy
        ]
    return cell_fn


def _detail_figure(results, title, node_headers, node_kinds, arc_headers,
                   arc_uses, xy):
    node_table = Table(
        f"{title} -- nodes (% of nodes+arcs)",
        ["bench", "pred", *node_headers],
    )
    node_fn = _node_class_cells([(kind, xy == ARC_PP or xy == ARC_NP)
                                 for kind in node_kinds])
    for name, cells in _averaged_rows(
        results, lambda r: _all_pred_cells(r, node_fn)
    ):
        _emit_pred_rows(node_table, name, cells, per_pred=len(node_kinds))
    arc_table = Table(
        f"{title} -- arcs (% of nodes+arcs)",
        ["bench", "pred", *arc_headers],
    )
    arc_fn = _arc_class_cells([(use, xy) for use in arc_uses])
    for name, cells in _averaged_rows(
        results, lambda r: _all_pred_cells(r, arc_fn)
    ):
        _emit_pred_rows(arc_table, name, cells, per_pred=len(arc_uses))
    return node_table, arc_table


def figure6(results):
    """Generation detail (paper Fig. 6)."""
    node_table, arc_table = _detail_figure(
        results,
        "Figure 6: generation",
        ["i,i->p", "n,n->p", "i,n->p"],
        [InKind.II, InKind.NN, InKind.IN],
        ["<wl:n,p>", "<rd:n,p>", "<r:n,p>", "<1:n,p>"],
        [UseClass.WRITE_ONCE, UseClass.DATA, UseClass.REPEAT,
         UseClass.SINGLE],
        ARC_NP,
    )
    arc_table.add_note("paper: repeated-use arcs dominate generation for "
                       "L/S; single-use arcs comparable for C")
    node_table.add_note("paper: all-immediate nodes (i,i->p) are most of "
                        "node generation")
    return node_table, arc_table


def figure7(results):
    """Propagation detail (paper Fig. 7)."""
    node_table, arc_table = _detail_figure(
        results,
        "Figure 7: propagation",
        ["p,p->p", "p,i->p", "p,n->p"],
        [InKind.PP, InKind.PI, InKind.PN],
        ["<wl:p,p>", "<r:p,p>", "<1:p,p>"],
        [UseClass.WRITE_ONCE, UseClass.REPEAT, UseClass.SINGLE],
        ARC_PP,
    )
    arc_table.add_note("paper: most propagation is on single-use arcs "
                       "(same-basic-block dependences)")
    node_table.add_note("paper: p,n->p propagation is mostly memory "
                        "instructions with unpredictable addresses")
    return node_table, arc_table


def figure8(results):
    """Termination detail (paper Fig. 8)."""
    node_table, arc_table = _detail_figure(
        results,
        "Figure 8: termination",
        ["p,n->n", "p,p->n", "p,i->n"],
        [InKind.PN, InKind.PP, InKind.PI],
        ["<wl:p,n>", "<r:p,n>", "<1:p,n>"],
        [UseClass.WRITE_ONCE, UseClass.REPEAT, UseClass.SINGLE],
        ARC_PN,
    )
    node_table.add_note("paper: p,n->n dominates (predictable address, "
                        "unpredictable data); p,p->n notable only for C")
    arc_table.add_note("paper: termination arcs are mostly single-use "
                       "'filtering' control flow")
    return node_table, arc_table


# ----------------------------------------------------------------------
# Figure 9: path analysis.
# ----------------------------------------------------------------------

def figure9(results, top: int = 24):
    """Generator-class contributions to propagation (paper Fig. 9).

    Averages over the integer workloads in ``results``.
    """
    kinds = _kinds(results)
    int_results = [
        result for name, result in results.items() if kinds[name] == "int"
    ]
    overall = Table(
        "Figure 9 (top): % of nodes+arcs on predictable paths from each "
        "generator class (INT average)",
        ["pred", *(cls.name for cls in GenClass)],
    )
    for kind in PREDICTOR_KINDS:
        row = [LETTERS[kind]]
        for cls in GenClass:
            shares = [
                percentage(
                    r.predictors[kind].paths.class_counts[cls], r.elements
                )
                for r in int_results if kind in r.predictors
            ]
            row.append(sum(shares) / len(shares) if shares else 0.0)
        overall.add_row(*row)
    overall.add_note("paper: control flow (C) dominates (~45% of the DPG "
                     "for C prediction); immediates (I) second (~30%)")

    # Bottom: exact combinations, top-N by the context predictor share.
    combo_shares: dict[int, dict[str, float]] = {}
    for kind in PREDICTOR_KINDS:
        shares: dict[int, float] = {}
        count = 0
        for result in int_results:
            pred = result.predictors.get(kind)
            if pred is None:
                continue
            count += 1
            for mask, value in pred.paths.combo_counts.items():
                if mask:
                    shares[mask] = shares.get(mask, 0.0) + percentage(
                        value, result.elements
                    )
        for mask, total in shares.items():
            combo_shares.setdefault(mask, {})[kind] = (
                total / count if count else 0.0
            )
    ranked = sorted(
        combo_shares,
        key=lambda mask: combo_shares[mask].get("context", 0.0),
        reverse=True,
    )[:top]
    combos = Table(
        f"Figure 9 (bottom): top {top} generator combinations "
        "(% of nodes+arcs, INT average)",
        ["combo", "L", "S", "C"],
    )
    for mask in ranked:
        combos.add_row(
            gen_mask_name(mask),
            combo_shares[mask].get("last", 0.0),
            combo_shares[mask].get("stride", 0.0),
            combo_shares[mask].get("context", 0.0),
        )
    combos.add_note("paper: C is the largest set (12-17%), then I (~10% "
                    "for L), CI and M close behind")
    return overall, combos


# ----------------------------------------------------------------------
# Figure 10: predictability trees.
# ----------------------------------------------------------------------

def figure10(results, workload: str = "gcc",
             predictor: str = "context") -> Table:
    """Tree longest-path and aggregate-propagation curves (Fig. 10)."""
    result = results[workload]
    trees = result.predictors[predictor].trees
    if trees is None:
        raise ValueError(f"tree tracking was not enabled for {predictor}")
    maximum = max(trees.depth_hist) if trees.depth_hist else 1
    edges = log2_bucket_edges(max(maximum, 1))
    gen_curve = cumulative_percent(trees.depth_hist, edges)
    agg_curve = cumulative_percent(trees.agg_hist, edges)
    table = Table(
        f"Figure 10: predictability trees ({workload}, {predictor} "
        "predictor)",
        ["longest path <=", "% of generates", "% of aggregate propagation"],
    )
    for edge, gen_pct, agg_pct in zip(edges, gen_curve, agg_curve):
        table.add_row(edge, gen_pct, agg_pct)
    table.add_note("paper: ~90% of generates have longest path <= 8, yet "
                   "trees with longest path >= 256 carry ~80% of "
                   "aggregate propagation")
    return table


# ----------------------------------------------------------------------
# Figure 11: generates influencing a propagate; distances.
# ----------------------------------------------------------------------

def figure11(results, workloads=("com", "go", "gcc"),
             predictor: str = "context"):
    """Influence counts and generate distances (paper Fig. 11)."""
    influence = Table(
        "Figure 11 (top): cumulative % of propagates influenced by <= K "
        f"generates ({predictor} predictor)",
        ["K", *workloads],
    )
    distance = Table(
        "Figure 11 (bottom): cumulative % of propagates with farthest "
        f"generate <= D elements away ({predictor} predictor)",
        ["D", *workloads],
    )
    hists = []
    dist_hists = []
    for name in workloads:
        trees = results[name].predictors[predictor].trees
        if trees is None:
            raise ValueError(f"tree tracking was not enabled for {name}")
        hists.append(trees.influence_hist)
        dist_hists.append(trees.distance_hist)
    max_influence = max((max(h) if h else 1) for h in hists)
    edges = log2_bucket_edges(max(max_influence, 1))
    curves = [cumulative_percent(h, edges) for h in hists]
    for index, edge in enumerate(edges):
        influence.add_row(edge, *(curve[index] for curve in curves))
    max_distance = max((max(h) if h else 1) for h in dist_hists)
    dist_edges = log2_bucket_edges(max(max_distance, 1))
    dist_curves = [cumulative_percent(h, dist_edges) for h in dist_hists]
    for index, edge in enumerate(dist_edges):
        distance.add_row(edge, *(curve[index] for curve in dist_curves))
    influence.add_note("paper: 70-85% of propagates influenced by < 4 "
                       "generates")
    distance.add_note("paper: ~50% of compress propagates within 64 "
                      "elements of their farthest generate; go/gcc reach "
                      "1024+")
    return influence, distance


# ----------------------------------------------------------------------
# Figure 12: predictable contiguous sequences.
# ----------------------------------------------------------------------

#: Paper's Fig. 12 x-axis buckets.
SEQUENCE_BUCKETS = [(1, 1), (2, 2), (3, 4), (5, 8), (9, 16), (17, 32),
                    (33, 64), (65, 128), (129, 256), (257, 1 << 30)]


def figure12(results) -> Table:
    """Predictable sequence lengths (paper Fig. 12), INT average."""
    kinds = _kinds(results)
    int_results = [
        result for name, result in results.items() if kinds[name] == "int"
    ]
    table = Table(
        "Figure 12: % of instructions inside fully-predictable sequences, "
        "by sequence length (INT average)",
        ["length", "L", "S", "C"],
    )
    for low, high in SEQUENCE_BUCKETS:
        label = bucket_label(low, high) if high < (1 << 30) else f"{low}+"
        row = [label]
        for kind in PREDICTOR_KINDS:
            shares = []
            for result in int_results:
                pred = result.predictors.get(kind)
                if pred is None or pred.sequences is None:
                    continue
                in_bucket = sum(
                    length * count
                    for length, count in pred.sequences.lengths.items()
                    if low <= length <= high
                )
                shares.append(percentage(in_bucket, result.nodes))
            row.append(sum(shares) / len(shares) if shares else 0.0)
        table.add_row(*row)
    table.add_note("paper: long sequences common -- e.g. ~13% of "
                   "instructions in 9-16 blocks and ~40% in 9-256 "
                   "sequences for C")
    return table


# ----------------------------------------------------------------------
# Figure 13: branch predictability.
# ----------------------------------------------------------------------

# ----------------------------------------------------------------------
# Extension exhibit: critical points (not a paper figure; Section 1's
# third stated application of the model).
# ----------------------------------------------------------------------

def critical_points(results, predictor: str = "context",
                     top: int = 5) -> Table:
    """Top termination sites per workload — the model's 'critical
    points for prediction'."""
    table = Table(
        f"Critical points: top-{top} termination sites per workload "
        f"({predictor} predictor)",
        ["bench", "pc", "instruction", "executed", "terminated",
         "miss %"],
        float_format="{:.1f}",
    )
    for name, result in results.items():
        critical = result.predictors[predictor].critical
        if critical is None:
            continue
        listing = {
            index: instr.render()
            for index, instr in enumerate(
                get_workload(name).program().instructions
            )
        }
        concentration = critical.concentration(top)
        sites = critical.top_sites(result.static_counts, count=top)
        for index, site in enumerate(sites):
            label = name if index == 0 else ""
            table.add_row(
                label, site.pc, listing.get(site.pc, "?"),
                site.executions, site.terminations,
                100.0 * site.miss_rate,
            )
        if sites:
            table.add_note(
                f"{name}: top-{top} sites cause "
                f"{100 * concentration:.0f}% of terminations"
            )
    return table


#: Paper's Fig. 13 x-axis, predicted classes first.
FIG13_CLASSES = [
    (InKind.PP, True), (InKind.PI, True), (InKind.PN, True),
    (InKind.NN, True), (InKind.IN, True), (InKind.II, True),
    (InKind.PP, False), (InKind.PI, False), (InKind.PN, False),
    (InKind.NN, False), (InKind.IN, False), (InKind.II, False),
]


def figure13(results) -> Table:
    """Branch predictability behaviour (paper Fig. 13), INT average."""
    from repro.core.events import node_class_name

    kinds = _kinds(results)
    int_results = [
        result for name, result in results.items() if kinds[name] == "int"
    ]
    table = Table(
        "Figure 13: branch classes, value-predicted inputs x gshare "
        "direction (% of branches, INT average)",
        ["class", "L", "S", "C"],
    )
    for kind_class, predicted in FIG13_CLASSES:
        row = [node_class_name(kind_class, predicted)]
        for kind in PREDICTOR_KINDS:
            shares = []
            for result in int_results:
                pred = result.predictors.get(kind)
                if pred is None or pred.branches is None:
                    continue
                shares.append(percentage(
                    pred.branches.count(kind_class, predicted),
                    pred.branches.total(),
                ))
            row.append(sum(shares) / len(shares) if shares else 0.0)
        table.add_row(*row)
    accuracies = [
        result.predictors[PREDICTOR_KINDS[0]].branches.accuracy()
        for result in int_results
    ]
    if accuracies:
        table.add_note(
            "gshare accuracy (INT average): "
            f"{100 * sum(accuracies) / len(accuracies):.1f}% "
            "(paper: 93%)"
        )
    table.add_note("paper: 70-82% of branches propagate; slightly over "
                   "half of mispredictions have all-predictable inputs")
    return table
