"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A titled, column-aligned text table.

    Cells may be any object; floats are formatted with
    :attr:`float_format`, everything else with ``str``.
    """

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    float_format: str = "{:.2f}"
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def _format_cell(self, cell) -> str:
        if isinstance(cell, float):
            return self.float_format.format(cell)
        return str(cell)

    def render(self) -> str:
        rendered = [
            [self._format_cell(cell) for cell in row] for row in self.rows
        ]
        columns = len(self.headers)
        widths = [len(header) for header in self.headers]
        for row in rendered:
            for index, cell in enumerate(row):
                if index < columns:
                    widths[index] = max(widths[index], len(cell))

        def line(cells):
            padded = []
            for index, cell in enumerate(cells):
                width = widths[index] if index < columns else len(cell)
                # Left-align the first column, right-align the rest.
                if index == 0:
                    padded.append(cell.ljust(width))
                else:
                    padded.append(cell.rjust(width))
            return "  ".join(padded).rstrip()

        separator = "-" * (sum(widths) + 2 * (columns - 1))
        out = [self.title, "=" * len(self.title), line(self.headers),
               separator]
        out.extend(line(row) for row in rendered)
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def percentage(count: int, total: int) -> float:
    """``count`` as a percentage of ``total`` (0 when total is 0)."""
    return 100.0 * count / total if total else 0.0


def log2_bucket_edges(maximum: int) -> list[int]:
    """Upper edges 1, 2, 4, 8, ... covering values up to ``maximum``."""
    edges = [1]
    while edges[-1] < maximum:
        edges.append(edges[-1] * 2)
    return edges


def bucket_label(low: int, high: int) -> str:
    """Human label for a [low, high] bucket."""
    return str(high) if low == high else f"{low}-{high}"


def cumulative_percent(histogram: dict[int, int], edges: list[int],
                       weight=None) -> list[float]:
    """Cumulative percentage of histogram mass at value <= each edge.

    Args:
        histogram: value -> count.
        edges: ascending bucket edges.
        weight: optional value -> weight multiplier (e.g. the value
            itself, to weight by instructions rather than runs).
    """
    total = 0.0
    for value, count in histogram.items():
        total += count * (weight(value) if weight else 1)
    out = []
    running = 0.0
    remaining = sorted(histogram.items())
    index = 0
    for edge in edges:
        while index < len(remaining) and remaining[index][0] <= edge:
            value, count = remaining[index]
            running += count * (weight(value) if weight else 1)
            index += 1
        out.append(100.0 * running / total if total else 0.0)
    return out
