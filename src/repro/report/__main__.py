"""Command-line interface for regenerating the paper's exhibits.

Examples::

    python -m repro.report --exhibit table1
    python -m repro.report --exhibit fig5 --scale 2
    python -m repro.report --exhibit all --max-instructions 50000
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.report import experiments
from repro.report.experiments import ExperimentConfig, run_suite

_EXHIBITS = {
    "table1": lambda results: [experiments.table1(results)],
    "fig5": lambda results: [experiments.figure5(results)],
    "fig6": lambda results: list(experiments.figure6(results)),
    "fig7": lambda results: list(experiments.figure7(results)),
    "fig8": lambda results: list(experiments.figure8(results)),
    "fig9": lambda results: list(experiments.figure9(results)),
    "fig10": lambda results: [experiments.figure10(results)],
    "fig11": lambda results: list(experiments.figure11(results)),
    "fig12": lambda results: [experiments.figure12(results)],
    "fig13": lambda results: [experiments.figure13(results)],
    # Extension exhibits (not paper figures).
    "critical": lambda results: [experiments.critical_points(results)],
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--exhibit", default="all",
        choices=["all", *sorted(_EXHIBITS)],
        help="which exhibit to regenerate (default: all)",
    )
    parser.add_argument("--scale", type=int, default=1,
                        help="workload problem-size multiplier")
    parser.add_argument("--max-instructions", type=int, default=150_000,
                        help="dynamic-instruction budget per workload")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names (default: all)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the workload analyses "
                             "(default: $REPRO_JOBS, else serial)")
    args = parser.parse_args(argv)

    workloads = tuple(args.workloads.split(",")) if args.workloads else None
    config = ExperimentConfig(
        scale=args.scale,
        max_instructions=args.max_instructions,
        workloads=workloads,
    )
    start = time.time()
    results = run_suite(config, jobs=args.jobs)
    names = sorted(_EXHIBITS) if args.exhibit == "all" else [args.exhibit]
    for name in names:
        try:
            tables = _EXHIBITS[name](results)
        except (KeyError, ValueError) as error:
            print(f"[{name} skipped: {error}]", file=sys.stderr)
            continue
        for table in tables:
            print(table.render())
            print()
    elapsed = time.time() - start
    print(f"[analysed {len(results)} workloads in {elapsed:.1f}s]",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
