"""Deprecated entry point — use ``python -m repro report``.

``python -m repro.report`` forwards to the unified CLI
(:mod:`repro.cli`); every historical flag is accepted unchanged::

    python -m repro.report --exhibit table1
        ->  python -m repro report --exhibit table1
"""

from __future__ import annotations

import sys
import warnings


def main(argv=None) -> int:
    warnings.warn(
        "python -m repro.report is deprecated; use "
        "python -m repro report",
        DeprecationWarning, stacklevel=2,
    )
    from repro.cli import EXIT_INTERRUPTED, main as cli_main

    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        return cli_main(["report", *argv])
    except KeyboardInterrupt:
        return EXIT_INTERRUPTED


if __name__ == "__main__":
    raise SystemExit(main())
