"""repro — a reproduction of "Modeling Program Predictability"
(Sazeides & Smith, ISCA 1998).

The library has four layers:

* **Substrate** — a MIPS-like ISA (:mod:`repro.isa`), an assembler
  (:mod:`repro.asm`), a tracing functional simulator
  (:mod:`repro.cpu`) and a mini-C compiler (:mod:`repro.minic`),
  standing in for the paper's SimpleScalar + gcc toolchain.
* **Predictors** (:mod:`repro.predictors`) — last-value, 2-delta
  stride, two-level context, and gshare.
* **Model** (:mod:`repro.core`) — the dynamic prediction graph and the
  streaming classification of predictability generation, propagation
  and termination, with path/tree, sequence and branch analyses.
* **Evaluation** (:mod:`repro.workloads`, :mod:`repro.report`) — the
  SPEC95-analogue workload suite and the harness regenerating every
  table and figure of the paper.

Quick start::

    from repro import compile_program, Machine, analyze_machine

    program = compile_program("int main() { ... }")
    result = analyze_machine(Machine(program), "mine")
    print(result.predictors["stride"].nodes.behavior_counts())
"""

from repro.asm import AsmError, Program, assemble
from repro.core import (
    AnalysisConfig,
    AnalysisEngine,
    AnalysisResult,
    Analyzer,
    Behavior,
    GenClass,
    InKind,
    UseClass,
    analyze_machine,
    analyze_trace,
    build_dpg,
)
from repro.cpu import DynInst, Machine, MachineResult, Source, run_program
from repro.errors import CompileError, ReproError, SimError
from repro.minic import compile_program, compile_source
from repro.predictors import (
    ContextPredictor,
    GsharePredictor,
    LastValuePredictor,
    PredictorBank,
    StridePredictor,
    make_predictor,
)
from repro.workloads import SUITE, Workload, get_workload


def _resolve_version() -> str:
    """The package version, from metadata rather than a constant.

    Installed (even editable) distributions answer via
    ``importlib.metadata``; a plain ``PYTHONPATH=src`` checkout — the
    supported no-install mode — falls back to parsing the adjacent
    ``pyproject.toml``, so there is exactly one place the version
    lives.
    """
    from importlib import metadata

    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        pass
    try:
        import pathlib
        import tomllib

        pyproject = (pathlib.Path(__file__).resolve().parents[2]
                     / "pyproject.toml")
        with open(pyproject, "rb") as handle:
            return tomllib.load(handle)["project"]["version"]
    except (OSError, KeyError, ImportError, ValueError):
        return "0+unknown"


__version__ = _resolve_version()

__all__ = [
    "AnalysisConfig",
    "AnalysisEngine",
    "AnalysisResult",
    "Analyzer",
    "AsmError",
    "Behavior",
    "CompileError",
    "ContextPredictor",
    "DynInst",
    "GenClass",
    "GsharePredictor",
    "InKind",
    "LastValuePredictor",
    "Machine",
    "MachineResult",
    "PredictorBank",
    "Program",
    "ReproError",
    "SUITE",
    "SimError",
    "Source",
    "StridePredictor",
    "UseClass",
    "Workload",
    "analyze_machine",
    "analyze_trace",
    "assemble",
    "build_dpg",
    "compile_program",
    "compile_source",
    "get_workload",
    "make_predictor",
    "run_program",
]
