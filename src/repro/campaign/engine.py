"""Campaign execution: expand the grid, run it, collect the results.

The engine is a thin deterministic layer over
:meth:`repro.runner.ExperimentRunner.run_many`: one
:class:`~repro.runner.ExperimentConfig` per variant, all sharing the
spec's workload list, so the sweep path simulates each workload once
and fans the trace out to every variant's analyzer.  Everything the
exhibits need — per-(variant, workload) results, cache-resolution
statuses, wall time — rides on the returned :class:`CampaignResult`.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

from repro.campaign.spec import CampaignSpec
from repro.core import AnalysisResult
from repro.runner.api import ExperimentRunner, default_runner
from repro.runner.metrics import STATUS_CACHE_HIT, STATUS_MEMO_HIT

#: Job statuses served without executing anything in a pool worker.
_WARM_STATUSES = frozenset({STATUS_MEMO_HIT, STATUS_CACHE_HIT})


@dataclass
class CampaignResult:
    """Everything a campaign run produced.

    Attributes:
        spec: the campaign that ran.
        results: ``variant name -> workload name -> AnalysisResult``.
        resolve_counts: ``runner.resolve`` status -> job count, over
            the whole grid (memo_hit / cache_hit / replayed /
            computed); the reconciliation channel for asserting a
            re-run was fully warm.
        wall: engine wall-clock seconds for the grid.
    """

    spec: CampaignSpec
    results: dict[str, dict[str, AnalysisResult]] = field(
        default_factory=dict
    )
    resolve_counts: dict[str, int] = field(default_factory=dict)
    wall: float = 0.0

    @property
    def pool_jobs(self) -> int:
        """Jobs that actually executed (not served from memo/cache)."""
        return sum(
            count for status, count in self.resolve_counts.items()
            if status not in _WARM_STATUSES
        )

    @property
    def fully_warm(self) -> bool:
        """True when every grid job came from the memo or the cache."""
        return self.pool_jobs == 0

    def variant_names(self) -> list[str]:
        return [variant.name for variant in self.spec.variants]

    def iter_cells(self):
        """Yield ``(variant, workload name, AnalysisResult)`` in spec
        order — the iteration every registry exhibit builds on."""
        for variant in self.spec.variants:
            per_workload = self.results.get(variant.name, {})
            for name in self.spec.workloads:
                result = per_workload.get(name)
                if result is not None:
                    yield variant, name, result


def run_campaign(
    spec: CampaignSpec,
    runner: ExperimentRunner | None = None,
    jobs: int | None = None,
) -> CampaignResult:
    """Validate ``spec``, run its grid, and collect the results.

    Raises :class:`ValueError` for an invalid spec and
    :class:`repro.errors.RunnerError` when any grid job fails — a
    campaign's exhibits compare cells, so a partial grid is not worth
    reporting.
    """
    spec.validate()
    runner = runner or default_runner()
    start = time.monotonic()
    runs = runner.run_many(spec.configs(), jobs=jobs)
    wall = time.monotonic() - start
    statuses: Counter = Counter()
    for run in runs:
        run.require()
        for metric in run.metrics.jobs:
            statuses[metric.status] += 1
    result = CampaignResult(
        spec=spec,
        resolve_counts=dict(statuses),
        wall=wall,
    )
    for variant, run in zip(spec.variants, runs):
        result.results[variant.name] = dict(run.results)
    return result
