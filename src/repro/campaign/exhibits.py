"""Registry-driven campaign exhibits.

Every exhibit is a function from a
:class:`~repro.campaign.engine.CampaignResult` to either a
:class:`~repro.report.tables.Table` (text) or an SVG document string
(plot), registered by decorating it with :func:`table` or
:func:`plot`.  The report writer iterates the registries mechanically
— it has no idea which exhibits exist — so adding one is a single
decorated function anywhere in this module (or a test/plugin module
that imports it).

Plots are hand-rolled SVG: self-contained, deterministic, diffable,
and free of plotting-library dependencies.
"""

from __future__ import annotations

from typing import Callable

from repro.campaign.engine import CampaignResult
from repro.core.events import InKind
from repro.report.tables import Table, percentage

#: exhibit name -> builder(result) -> Table
table_registry: dict[str, Callable[[CampaignResult], Table]] = {}
#: exhibit name -> builder(result) -> SVG text
plot_registry: dict[str, Callable[[CampaignResult], str]] = {}


def table(name: str):
    """Register a table exhibit under ``name``."""
    def register(func):
        if name in table_registry:
            raise ValueError(f"duplicate table exhibit {name!r}")
        table_registry[name] = func
        return func
    return register


def plot(name: str):
    """Register a plot exhibit under ``name``."""
    def register(func):
        if name in plot_registry:
            raise ValueError(f"duplicate plot exhibit {name!r}")
        plot_registry[name] = func
        return func
    return register


# ----------------------------------------------------------------------
# Shared metric helpers.
# ----------------------------------------------------------------------

def predicted_node_percent(result, predictor: str) -> float:
    """Percent of DPG nodes whose output the predictor predicted."""
    pred = result.predictors[predictor]
    predicted = sum(pred.nodes.count(kind, True) for kind in InKind)
    return percentage(predicted, pred.nodes.total())


def branch_accuracy_percent(result, predictor: str) -> float | None:
    """Conditional-branch accuracy, or None when not tracked."""
    pred = result.predictors[predictor]
    if pred.branches is None:
        return None
    return 100.0 * pred.branches.accuracy()


def variant_mean_predictability(result, variant) -> float:
    """Mean predicted-node percent over the variant's predictors."""
    values = [
        predicted_node_percent(result, spec)
        for spec in variant.predictors
    ]
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# Tables.
# ----------------------------------------------------------------------

@table("variants")
def variants_table(campaign: CampaignResult) -> Table:
    out = Table(
        f"{campaign.spec.name}: predictor-bank variants",
        ["variant", "predictors"],
    )
    for variant in campaign.spec.variants:
        out.add_row(variant.name, " ".join(variant.predictors))
    return out


@table("workloads")
def workloads_table(campaign: CampaignResult) -> Table:
    """Workload provenance: generated members show (seed, knobs)."""
    from repro.workloads.suite import get_workload

    out = Table(
        f"{campaign.spec.name}: workloads",
        ["workload", "kind", "provenance"],
    )
    for name in campaign.spec.workloads:
        workload = get_workload(name)
        preset = getattr(workload, "preset", None)
        if preset is not None:
            detail = (f"synthesized preset={preset} "
                      f"seed={workload.seed}")
        else:
            detail = f"fixed suite ({workload.spec_name})"
        out.add_row(name, workload.kind, detail)
    out.add_note("synthesized workloads regenerate byte-identically "
                 "from their name alone")
    return out


@table("predictability")
def predictability_table(campaign: CampaignResult) -> Table:
    out = Table(
        f"{campaign.spec.name}: predicted-node percent per grid cell",
        ["variant", "workload", "predictor", "% nodes", "% branches"],
    )
    for variant, name, result in campaign.iter_cells():
        for spec in variant.predictors:
            branches = branch_accuracy_percent(result, spec)
            out.add_row(
                variant.name, name, spec,
                predicted_node_percent(result, spec),
                "-" if branches is None else round(branches, 2),
            )
    return out


@table("summary")
def summary_table(campaign: CampaignResult) -> Table:
    """Variant-level means: the design-space comparison at a glance."""
    out = Table(
        f"{campaign.spec.name}: mean predictability by variant",
        ["variant", "workloads", "mean % nodes", "best workload",
         "worst workload"],
    )
    for variant in campaign.spec.variants:
        cells = [
            (name, variant_mean_predictability(result, variant))
            for v, name, result in campaign.iter_cells()
            if v.name == variant.name
        ]
        if not cells:
            continue
        mean = sum(value for __, value in cells) / len(cells)
        best = max(cells, key=lambda cell: cell[1])
        worst = min(cells, key=lambda cell: cell[1])
        out.add_row(
            variant.name, len(cells), mean,
            f"{best[0]} ({best[1]:.1f})",
            f"{worst[0]} ({worst[1]:.1f})",
        )
    out.add_note(f"grid: {len(campaign.spec.workloads)} workloads x "
                 f"{len(campaign.spec.variants)} variants")
    return out


@table("graph-shape")
def graph_shape_table(campaign: CampaignResult) -> Table:
    """DPG shape per workload (variant-independent sanity columns)."""
    out = Table(
        f"{campaign.spec.name}: DPG shape per workload",
        ["workload", "nodes", "arcs", "arcs/node", "static instrs"],
    )
    seen: set[str] = set()
    for __, name, result in campaign.iter_cells():
        if name in seen:
            continue
        seen.add(name)
        out.add_row(name, result.nodes, result.arcs,
                    result.edge_node_ratio(),
                    result.static_instructions)
    return out


# ----------------------------------------------------------------------
# SVG plots.
# ----------------------------------------------------------------------

_PALETTE = ("#4878a8", "#e49444", "#5ba053", "#c44e52",
            "#8172b2", "#937860", "#dd8452", "#64b5cd")


def _svg_grouped_bars(title: str, groups: list[tuple[str, list[float]]],
                      series: list[str], y_label: str) -> str:
    """A grouped bar chart as a self-contained SVG document.

    ``groups`` is ``[(group label, [value per series])]``; values are
    percentages (y axis fixed at 0..100 so campaign plots compare).
    """
    bar_w = 18
    gap = 14
    group_w = bar_w * len(series) + gap
    left, top, height = 60, 40, 220
    width = left + group_w * len(groups) + 40
    legend_h = 18 * len(series) + 8
    total_h = top + height + 60 + legend_h
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width}" height="{total_h}" '
        f'font-family="monospace" font-size="11">',
        f'<text x="{left}" y="18" font-size="13">{_esc(title)}</text>',
    ]
    # y axis with gridlines every 25%.
    for tick in range(0, 101, 25):
        y = top + height - height * tick / 100.0
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{width - 20}" '
            f'y2="{y:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{left - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{tick}</text>'
        )
    parts.append(
        f'<text x="14" y="{top + height / 2:.1f}" '
        f'transform="rotate(-90 14 {top + height / 2:.1f})" '
        f'text-anchor="middle">{_esc(y_label)}</text>'
    )
    for g_index, (label, values) in enumerate(groups):
        x0 = left + g_index * group_w
        for s_index, value in enumerate(values):
            clamped = max(0.0, min(100.0, value))
            bar_h = height * clamped / 100.0
            x = x0 + s_index * bar_w
            y = top + height - bar_h
            color = _PALETTE[s_index % len(_PALETTE)]
            parts.append(
                f'<rect x="{x}" y="{y:.1f}" width="{bar_w - 2}" '
                f'height="{bar_h:.1f}" fill="{color}">'
                f'<title>{_esc(label)} / {_esc(series[s_index])}: '
                f'{value:.2f}</title></rect>'
            )
        center = x0 + (group_w - gap) / 2
        parts.append(
            f'<text x="{center:.1f}" y="{top + height + 14}" '
            f'text-anchor="middle" font-size="9">{_esc(label)}</text>'
        )
    for s_index, name in enumerate(series):
        y = top + height + 40 + 18 * s_index
        color = _PALETTE[s_index % len(_PALETTE)]
        parts.append(
            f'<rect x="{left}" y="{y - 9}" width="12" height="12" '
            f'fill="{color}"/>'
        )
        parts.append(f'<text x="{left + 18}" y="{y}">{_esc(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


@plot("predictability-by-workload")
def predictability_plot(campaign: CampaignResult) -> str:
    """Mean predicted-node percent: one bar group per workload."""
    series = campaign.variant_names()
    by_workload: dict[str, list[float]] = {
        name: [0.0] * len(series) for name in campaign.spec.workloads
    }
    index = {name: i for i, name in enumerate(series)}
    for variant, name, result in campaign.iter_cells():
        by_workload[name][index[variant.name]] = (
            variant_mean_predictability(result, variant)
        )
    groups = [(_short(name), values)
              for name, values in by_workload.items()]
    return _svg_grouped_bars(
        f"{campaign.spec.name}: mean predicted nodes by workload",
        groups, series, "% nodes predicted",
    )


@plot("branch-accuracy")
def branch_accuracy_plot(campaign: CampaignResult) -> str:
    """Best conditional-branch accuracy per (workload, variant)."""
    series = campaign.variant_names()
    by_workload: dict[str, list[float]] = {
        name: [0.0] * len(series) for name in campaign.spec.workloads
    }
    index = {name: i for i, name in enumerate(series)}
    for variant, name, result in campaign.iter_cells():
        accuracies = [
            branch_accuracy_percent(result, spec)
            for spec in variant.predictors
        ]
        accuracies = [a for a in accuracies if a is not None]
        if accuracies:
            by_workload[name][index[variant.name]] = max(accuracies)
    groups = [(_short(name), values)
              for name, values in by_workload.items()]
    return _svg_grouped_bars(
        f"{campaign.spec.name}: branch accuracy by workload",
        groups, series, "% branches correct",
    )


def _short(name: str) -> str:
    """Compact workload label for plot axes."""
    return name[4:] if name.startswith("gen:") else name
