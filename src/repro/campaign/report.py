"""Mechanical report emission from the exhibit registries.

:func:`create_report` takes a finished
:class:`~repro.campaign.engine.CampaignResult` and writes a
self-contained directory::

    <out>/
      index.md          overview + every table inlined
      campaign.json     machine-readable manifest (spec, cache stats,
                        emitted exhibit files)
      tables/<name>.txt one file per table_registry entry
      plots/<name>.svg  one file per plot_registry entry

The writer iterates the registries — it never names an exhibit — so
the report provably contains every registered exhibit, which is what
the campaign-smoke CI job asserts.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.campaign.engine import CampaignResult
from repro.campaign.exhibits import plot_registry, table_registry


def create_report(campaign: CampaignResult,
                  out_dir: str | Path) -> Path:
    """Emit the full report for ``campaign`` under ``out_dir``.

    Returns the report directory.  Existing files are overwritten —
    the report is a pure function of the campaign result, so
    re-emission is idempotent.
    """
    out = Path(out_dir)
    (out / "tables").mkdir(parents=True, exist_ok=True)
    (out / "plots").mkdir(parents=True, exist_ok=True)

    tables: dict[str, str] = {}
    for name in sorted(table_registry):
        rendered = table_registry[name](campaign).render()
        (out / "tables" / f"{name}.txt").write_text(rendered + "\n")
        tables[name] = rendered
    plots: list[str] = []
    for name in sorted(plot_registry):
        (out / "plots" / f"{name}.svg").write_text(
            plot_registry[name](campaign)
        )
        plots.append(name)

    (out / "index.md").write_text(_index_md(campaign, tables, plots))
    manifest = {
        "campaign": campaign.spec.to_dict(),
        "grid_jobs": campaign.spec.jobs(),
        "resolve_counts": campaign.resolve_counts,
        "pool_jobs": campaign.pool_jobs,
        "fully_warm": campaign.fully_warm,
        "wall_seconds": round(campaign.wall, 3),
        "tables": [f"tables/{name}.txt" for name in sorted(tables)],
        "plots": [f"plots/{name}.svg" for name in plots],
    }
    (out / "campaign.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return out


def _index_md(campaign: CampaignResult, tables: dict[str, str],
              plots: list[str]) -> str:
    spec = campaign.spec
    lines = [
        f"# Campaign: {spec.name}",
        "",
    ]
    if spec.description:
        lines += [spec.description, ""]
    lines += [
        f"- grid: {len(spec.workloads)} workloads x "
        f"{len(spec.variants)} variants = {spec.jobs()} jobs",
        f"- scale: {spec.scale}, "
        f"instruction budget: {spec.max_instructions}",
        f"- cache resolution: "
        + (", ".join(f"{status}={count}" for status, count
                     in sorted(campaign.resolve_counts.items()))
           or "none"),
        f"- pool jobs this run: {campaign.pool_jobs}"
        + (" (fully warm)" if campaign.fully_warm else ""),
        "",
        "## Plots",
        "",
    ]
    for name in plots:
        lines.append(f"![{name}](plots/{name}.svg)")
    lines += ["", "## Tables", ""]
    for name, rendered in tables.items():
        lines += [f"### {name}", "", "```", rendered, "```", ""]
    return "\n".join(lines) + "\n"
