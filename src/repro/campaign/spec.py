"""Campaign specs: the declarative grid description.

A spec names a set of workloads and a set of predictor-bank variants;
the engine crosses them.  Specs load from TOML (Python 3.11+'s
:mod:`tomllib`; gated so 3.10 still imports this module) or JSON, and
round-trip through plain dicts so they can be embedded in manifests.

Example (TOML)::

    name = "design-space"
    scale = 1
    workloads = [
      "gen:pointer-chase@1",
      "gen:graph-walk@1",
      "com",
    ]

    [[variants]]
    name = "baseline"
    predictors = ["last", "stride", "context"]

    [[variants]]
    name = "small-tables"
    predictors = ["last(bits=10)", "context(l1=10,l2=14)"]
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

try:
    import tomllib
except ImportError:  # pragma: no cover - Python 3.10
    tomllib = None

from repro.predictors.base import parse_predictor_spec
from repro.runner.job import ExperimentConfig
from repro.workloads.suite import get_workload


@dataclass(frozen=True)
class PredictorVariant:
    """One predictor-bank configuration of the design space."""

    name: str
    predictors: tuple[str, ...]

    def validate(self) -> None:
        if not self.name:
            raise ValueError("variant with empty name")
        if not self.predictors:
            raise ValueError(f"variant {self.name!r} has no predictors")
        for spec in self.predictors:
            parse_predictor_spec(spec)  # raises ValueError when bad
        if len(set(self.predictors)) != len(self.predictors):
            raise ValueError(
                f"variant {self.name!r} repeats a predictor spec"
            )


@dataclass(frozen=True)
class CampaignSpec:
    """A full campaign: workloads x variants plus run parameters."""

    name: str
    workloads: tuple[str, ...]
    variants: tuple[PredictorVariant, ...]
    scale: int = 1
    max_instructions: int = 150_000
    trees_for: tuple[str, ...] = ()
    description: str = ""

    def validate(self) -> None:
        """Check the spec is runnable; raises ValueError if not."""
        if not self.name:
            raise ValueError("campaign needs a name")
        if not self.workloads:
            raise ValueError("campaign has no workloads")
        if not self.variants:
            raise ValueError("campaign has no variants")
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if len(set(self.workloads)) != len(self.workloads):
            raise ValueError("campaign repeats a workload")
        names = [variant.name for variant in self.variants]
        if len(set(names)) != len(names):
            raise ValueError("campaign repeats a variant name")
        for workload in self.workloads:
            try:
                get_workload(workload)
            except KeyError as error:
                raise ValueError(str(error)) from None
        for variant in self.variants:
            variant.validate()

    def configs(self) -> list[ExperimentConfig]:
        """One :class:`ExperimentConfig` per variant, spec order."""
        return [
            ExperimentConfig(
                scale=self.scale,
                max_instructions=self.max_instructions,
                workloads=self.workloads,
                predictors=variant.predictors,
                trees_for=self.trees_for,
            )
            for variant in self.variants
        ]

    def jobs(self) -> int:
        """Grid size: |workloads| x |variants|."""
        return len(self.workloads) * len(self.variants)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "scale": self.scale,
            "max_instructions": self.max_instructions,
            "trees_for": list(self.trees_for),
            "workloads": list(self.workloads),
            "variants": [
                {"name": v.name, "predictors": list(v.predictors)}
                for v in self.variants
            ],
        }


def spec_from_dict(data: dict) -> CampaignSpec:
    """Build (and bounds-check the shape of) a spec from a plain dict."""
    if not isinstance(data, dict):
        raise ValueError(f"campaign spec must be a table, got {type(data)}")
    unknown = set(data) - {
        "name", "description", "scale", "max_instructions",
        "trees_for", "workloads", "variants",
    }
    if unknown:
        raise ValueError(
            f"unknown campaign spec keys: {', '.join(sorted(unknown))}"
        )
    try:
        variants = tuple(
            PredictorVariant(
                name=str(raw["name"]),
                predictors=tuple(str(p) for p in raw["predictors"]),
            )
            for raw in data.get("variants", ())
        )
        return CampaignSpec(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            scale=int(data.get("scale", 1)),
            max_instructions=int(data.get("max_instructions", 150_000)),
            trees_for=tuple(data.get("trees_for", ())),
            workloads=tuple(str(w) for w in data.get("workloads", ())),
            variants=variants,
        )
    except KeyError as error:
        raise ValueError(f"campaign spec missing key {error}") from None


def load_spec(path: str | Path) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file.

    The spec is shape-checked here; call :meth:`CampaignSpec.validate`
    (the engine does) for the semantic checks that need the workload
    and predictor registries.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".toml":
        if tomllib is None:  # pragma: no cover - Python 3.10
            raise ValueError(
                f"{path}: TOML specs need Python 3.11+ (no tomllib); "
                "use the JSON spec format instead"
            )
        data = tomllib.loads(text)
    elif path.suffix == ".json":
        data = json.loads(text)
    else:
        raise ValueError(
            f"{path}: unknown spec format {path.suffix!r} "
            "(expected .toml or .json)"
        )
    return spec_from_dict(data)
