"""Design-space campaigns over workloads x predictor banks.

A campaign is a declarative spec — a TOML or JSON file, or a
:class:`CampaignSpec` built in code — crossing a set of workloads
(fixed suite members and/or synthesized ``gen:`` names) with a set of
predictor-bank *variants* (parameterized predictor spec strings such
as ``context(l1=12,l2=16,order=6)``).  The engine expands the cross
product into one :class:`~repro.runner.ExperimentConfig` per variant
and executes the whole grid through the shared
:class:`~repro.runner.ExperimentRunner`'s sweep path, so each workload
is simulated at most once no matter how many variants analyse it, and
a re-run of an unchanged campaign is served entirely from the
two-tier cache.

Exhibits are registry-driven: :data:`~repro.campaign.exhibits.table_registry`
and :data:`~repro.campaign.exhibits.plot_registry` map exhibit names to
builder functions, and :func:`~repro.campaign.report.create_report`
iterates them mechanically into a self-contained report directory —
adding an exhibit is one decorated function, never a report-writer
edit.
"""

from repro.campaign.engine import CampaignResult, run_campaign
from repro.campaign.exhibits import plot_registry, table_registry
from repro.campaign.report import create_report
from repro.campaign.spec import (
    CampaignSpec,
    PredictorVariant,
    load_spec,
    spec_from_dict,
)

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "PredictorVariant",
    "create_report",
    "load_spec",
    "plot_registry",
    "run_campaign",
    "spec_from_dict",
    "table_registry",
]
