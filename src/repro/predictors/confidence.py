"""Prediction confidence estimation (paper ref [8]).

The paper notes that misspeculation "can be mitigated somewhat with
the use of confidence mechanisms; these are probably essential for
effective value prediction and speculation".  This module provides the
Jacobsen/Rotenberg/Smith-style estimator: a table of saturating
counters indexed like the predictor, incremented on correct
predictions and reset (or decremented) on mispredictions.  A
prediction is *used* only when the counter is at or above a threshold.

:class:`ConfidentPredictor` wraps any :class:`ValuePredictor`; its
``see`` reports whether a *confident and correct* prediction was made,
and it keeps the coverage/accuracy accounting speculation studies
need:

* ``used`` — predictions confident enough to act on;
* ``used_correct`` — of those, the correct ones (accuracy = the
  misspeculation exposure);
* ``missed`` — correct predictions suppressed by low confidence
  (lost coverage).
"""

from __future__ import annotations

from repro.predictors.base import ValuePredictor


class ConfidenceEstimator:
    """Saturating-counter confidence table."""

    def __init__(self, index_bits: int = 16, threshold: int = 4,
                 maximum: int = 15, penalty: str = "reset"):
        if penalty not in ("reset", "decrement"):
            raise ValueError(f"unknown penalty policy: {penalty!r}")
        self.threshold = threshold
        self.maximum = maximum
        self.penalty = penalty
        self._mask = (1 << index_bits) - 1
        self._counters = bytearray(1 << index_bits)

    def confident(self, key: int) -> bool:
        """Would a prediction for ``key`` be acted upon?"""
        return self._counters[key & self._mask] >= self.threshold

    def train(self, key: int, correct: bool) -> None:
        index = key & self._mask
        if correct:
            if self._counters[index] < self.maximum:
                self._counters[index] += 1
        elif self.penalty == "reset":
            self._counters[index] = 0
        elif self._counters[index] > 0:
            self._counters[index] -= 1


class ConfidentPredictor(ValuePredictor):
    """A value predictor gated by a confidence estimator."""

    def __init__(self, inner: ValuePredictor, threshold: int = 4,
                 index_bits: int = 16, penalty: str = "reset"):
        self.inner = inner
        self.kind = f"confident-{inner.kind}"
        self.letter = inner.letter
        self.estimator = ConfidenceEstimator(
            index_bits=index_bits, threshold=threshold, penalty=penalty
        )
        self.used = 0
        self.used_correct = 0
        self.missed = 0
        self.total = 0

    def see(self, key: int, value) -> bool:
        confident = self.estimator.confident(key)
        correct = self.inner.see(key, value)
        self.estimator.train(key, correct)
        self.total += 1
        if confident:
            self.used += 1
            if correct:
                self.used_correct += 1
        elif correct:
            self.missed += 1
        return confident and correct

    def peek(self, key: int):
        if not self.estimator.confident(key):
            return None
        return self.inner.peek(key)

    def coverage(self) -> float:
        """Fraction of all predictions acted upon."""
        return self.used / self.total if self.total else 0.0

    def accuracy(self) -> float:
        """Accuracy of the predictions acted upon (1 - misspeculation
        rate)."""
        return self.used_correct / self.used if self.used else 0.0
