"""Delayed predictor update (the paper's Section 3 caveat, as an
ablation).

The paper updates predictors immediately after each prediction and
notes that "introducing delayed update timing would have imposed
particular implementation idiosyncrasies".  Real hardware cannot
update instantly: the actual value is known only some pipeline depth
after the prediction.  :class:`DelayedPredictor` models that with a
FIFO of pending updates — a prediction for a key is made against state
that has not yet absorbed the last ``delay`` observations.

Used by the ablation benches to quantify how much the paper's
immediate-update assumption flatters each predictor.
"""

from __future__ import annotations

from collections import deque

from repro.predictors.base import ValuePredictor, make_predictor


class DelayedPredictor(ValuePredictor):
    """Wraps a predictor, applying updates ``delay`` predictions late."""

    def __init__(self, inner: ValuePredictor | str, delay: int = 8):
        if isinstance(inner, str):
            inner = make_predictor(inner)
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.inner = inner
        self.kind = f"delayed-{inner.kind}"
        self.letter = inner.letter
        self.delay = delay
        self._pending: deque = deque()

    def see(self, key: int, value) -> bool:
        predicted = self.inner.peek(key)
        correct = predicted is not None and predicted == value
        self._pending.append((key, value))
        if len(self._pending) > self.delay:
            update_key, update_value = self._pending.popleft()
            self.inner.see(update_key, update_value)
        return correct

    def peek(self, key: int):
        return self.inner.peek(key)

    def flush(self) -> None:
        """Apply all pending updates (end of trace)."""
        while self._pending:
            key, value = self._pending.popleft()
            self.inner.see(key, value)
