"""64K-entry gshare conditional-branch predictor (McFarling, ref [11]).

A global history register of taken/not-taken outcomes is XORed with the
branch PC to index a table of 2-bit saturating counters.  The paper
uses this predictor for all conditional branch directions and reports
an overall accuracy of 93% on its SPEC95 integer traces.
"""

from __future__ import annotations


class GsharePredictor:
    """Global-history XOR-indexed pattern history table."""

    kind = "gshare"

    def __init__(self, index_bits: int = 16):
        self.index_bits = index_bits
        self._mask = (1 << index_bits) - 1
        self._counters = bytearray([1]) * (1 << index_bits)
        self._history = 0

    def see(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``, learn ``taken``, report hit."""
        index = (pc ^ self._history) & self._mask
        counters = self._counters
        counter = counters[index]
        correct = (counter >= 2) == taken
        if taken:
            if counter < 3:
                counters[index] = counter + 1
        elif counter > 0:
            counters[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask
        return correct

    def peek(self, pc: int) -> bool:
        """Return the direction that ``see`` would predict."""
        index = (pc ^ self._history) & self._mask
        return self._counters[index] >= 2
