"""Hybrid stride + context value predictor.

The paper cites Wang & Franklin's "Highly Accurate Data Value
Prediction using Hybrid Predictors" (ref [17]) among the predictors
that pushed accuracy up.  This implementation combines the repo's
2-delta stride and two-level context components with a per-entry
2-bit *chooser* (as in combining branch predictors): the chooser is
trained towards whichever component was correct when they disagree.

This predictor is not part of the paper's three-way comparison; it is
provided as the natural "better predictor" extension the paper's
Section 6 anticipates, and can be selected anywhere a predictor kind
is accepted (``make_predictor("hybrid")``, ``AnalysisConfig(
predictors=(..., "hybrid"))``).
"""

from __future__ import annotations

from repro.predictors.base import ValuePredictor
from repro.predictors.context import ContextPredictor
from repro.predictors.stride import StridePredictor


class HybridPredictor(ValuePredictor):
    """Chooser-combined stride and context prediction."""

    kind = "hybrid"
    letter = "H"

    def __init__(self, index_bits: int = 16, l2_bits: int = 20,
                 chooser_init: int = 2):
        self.stride = StridePredictor(index_bits)
        self.context = ContextPredictor(index_bits, l2_bits)
        self._mask = (1 << index_bits) - 1
        #: 2-bit chooser per entry; >= 2 selects the context component.
        #: ``chooser_init`` sets the mix's starting bias (0/1 favours
        #: stride, 2/3 context).
        self._chooser = bytearray([chooser_init]) * (1 << index_bits)

    def see(self, key: int, value) -> bool:
        index = key & self._mask
        chooser = self._chooser[index]
        stride_pred = self.stride.peek(key)
        context_pred = self.context.peek(key)
        chosen = context_pred if chooser >= 2 else stride_pred
        correct = chosen is not None and chosen == value
        # Components always train.
        stride_hit = self.stride.see(key, value)
        context_hit = self.context.see(key, value)
        # The chooser trains only on disagreement.
        if stride_hit != context_hit:
            if context_hit:
                if chooser < 3:
                    self._chooser[index] = chooser + 1
            elif chooser > 0:
                self._chooser[index] = chooser - 1
        return correct

    def peek(self, key: int):
        if self._chooser[key & self._mask] >= 2:
            return self.context.peek(key)
        return self.stride.peek(key)
