"""The 2-delta stride predictor.

First proposed for addresses by Eickemeyer and Vassiliadis (paper ref
[5]): each of the 2^16 untagged entries holds the last value, the
*prediction* stride, and the last *observed* stride.  The prediction
stride is replaced only when a new stride is observed twice in a row,
which keeps one-off irregularities from destroying a learned stride.

Last-value prediction is the stride-0 special case, so everything a
last-value predictor catches, this predictor catches too (modulo the
different hysteresis).
"""

from __future__ import annotations

from repro.predictors.base import ValuePredictor


class StridePredictor(ValuePredictor):
    """Predicts ``last + stride`` with 2-delta stride replacement."""

    kind = "stride"
    letter = "S"

    def __init__(self, index_bits: int = 16):
        self.index_bits = index_bits
        self._mask = (1 << index_bits) - 1
        #: entry: [last_value, prediction_stride, last_observed_stride]
        self._entries: list = [None] * (1 << index_bits)

    #: Strides on integer values are computed modulo 2^32, as a
    #: hardware stride predictor over 32-bit registers would: the step
    #: from 0 to 0xFFFFFFFF *is* stride -1.
    _MASK32 = 0xFFFF_FFFF
    _SIGN32 = 0x8000_0000

    def see(self, key: int, value) -> bool:
        index = key & self._mask
        entry = self._entries[index]
        if entry is None:
            self._entries[index] = [value, 0, 0]
            return False
        last, stride, observed = entry
        if type(value) is int and type(last) is int and type(stride) is int:
            prediction = (last + stride) & self._MASK32
            new_stride = (value - last) & self._MASK32
            if new_stride & self._SIGN32:
                new_stride -= 0x1_0000_0000
        else:
            # Floating-point values (or int/float aliasing in the
            # untagged table) use exact arithmetic.
            prediction = last + stride
            new_stride = value - last
        correct = prediction == value
        if new_stride == observed:
            entry[1] = new_stride
        entry[2] = new_stride
        entry[0] = value
        return correct

    def peek(self, key: int):
        entry = self._entries[key & self._mask]
        if entry is None:
            return None
        last, stride, __ = entry
        if type(last) is int and type(stride) is int:
            return (last + stride) & self._MASK32
        return last + stride
