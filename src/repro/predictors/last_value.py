"""Last-value predictor with 2-bit saturating-counter replacement.

Based on the predictor of Lipasti, Wilkerson and Shen (paper ref [10]):
2^16 untagged entries, each holding a value and a 2-bit counter that
provides hysteresis — the stored value is replaced only after the
counter drains, i.e. after two bad predictions in a row from the
half-confident state.
"""

from __future__ import annotations

from repro.predictors.base import ValuePredictor

_EMPTY = object()


class LastValuePredictor(ValuePredictor):
    """Predicts that each key produces the same value as last time."""

    kind = "last"
    letter = "L"

    def __init__(self, index_bits: int = 16, hysteresis: int = 3):
        self.index_bits = index_bits
        #: saturating-counter ceiling; 3 is the paper's 2-bit counter,
        #: 0 disables hysteresis entirely (always-replace).
        self.hysteresis = hysteresis
        self._mask = (1 << index_bits) - 1
        self._values: list = [_EMPTY] * (1 << index_bits)
        self._counters = bytearray(1 << index_bits)

    def see(self, key: int, value) -> bool:
        index = key & self._mask
        values = self._values
        stored = values[index]
        correct = stored is not _EMPTY and stored == value
        counters = self._counters
        counter = counters[index]
        if correct:
            if counter < self.hysteresis:
                counters[index] = counter + 1
        elif counter > 0:
            counters[index] = counter - 1
        else:
            values[index] = value
            counters[index] = min(1, self.hysteresis)
        return correct

    def peek(self, key: int):
        stored = self._values[key & self._mask]
        return None if stored is _EMPTY else stored
