"""Common value-predictor interface and factory.

Predictor *specs* extend the bare kind names with constructor
parameters, ``kind(param=value,...)``::

    make_predictor("context")                  # the paper's defaults
    make_predictor("last(bits=12)")            # 4K-entry last-value
    make_predictor("context(l1=12,l2=16)")     # shrunken two-level
    make_predictor("context(order=6)")         # deeper value history
    make_predictor("last(hysteresis=0)")       # no replacement damping

The full spec string is the predictor's identity everywhere — in
:class:`repro.core.AnalysisConfig.predictors`, in job content hashes,
and as the key of :attr:`repro.core.stats.AnalysisResult.predictors` —
so two analyses differing only in a table size hash (and cache) apart.
This is the design-space axis the source paper held constant; see
docs/campaign.md for the sweep machinery built on top of it.
"""

from __future__ import annotations

import abc
import re


class ValuePredictor(abc.ABC):
    """A finite-state next-value predictor.

    Predictors are keyed by an integer (a PC, or a hash of PC and
    operand slot for input predictors) and observe the sequence of
    values presented for each key.  Tables are finite and untagged, so
    different keys may alias — exactly as in the paper's simulations.
    """

    #: Short machine name ("last", "stride", "context").
    kind: str = ""
    #: Single-letter label used in the paper's figures (L / S / C).
    letter: str = ""

    @abc.abstractmethod
    def see(self, key: int, value) -> bool:
        """Predict the next value for ``key``, then learn ``value``.

        Returns True when the prediction matched ``value``.  The
        predictor state is updated immediately (paper Section 3).
        """

    @abc.abstractmethod
    def peek(self, key: int):
        """Return the value that ``see`` would predict, or None."""


_SPEC_RE = re.compile(r"^([a-z_]+)(?:\(([^()]*)\))?$")

#: spec parameter name -> (constructor kwarg, min, max) per kind.
#: ``bits``-style parameters are table *index* widths, so the caps
#: bound memory (2^24 entries is already 16M); ``hysteresis`` is the
#: saturating-counter ceiling, ``order`` the context history depth.
PREDICTOR_PARAMS: dict[str, dict[str, tuple[str, int, int]]] = {
    "last": {
        "bits": ("index_bits", 1, 24),
        "hysteresis": ("hysteresis", 0, 255),
    },
    "stride": {
        "bits": ("index_bits", 1, 24),
    },
    "context": {
        "l1": ("l1_bits", 1, 24),
        "l2": ("l2_bits", 4, 24),
        "order": ("order", 1, 16),
        "hysteresis": ("hysteresis", 0, 255),
    },
    "hybrid": {
        "bits": ("index_bits", 1, 24),
        "l2": ("l2_bits", 4, 24),
        "chooser": ("chooser_init", 0, 3),
    },
}


def parse_predictor_spec(spec: str) -> tuple[str, dict[str, int]]:
    """Split a predictor spec into ``(kind, constructor kwargs)``.

    Raises :class:`ValueError` on unknown kinds, unknown parameters,
    non-integer values, and out-of-range values — with a message that
    names the offending piece (these surface verbatim in campaign spec
    validation, see :mod:`repro.campaign.spec`).
    """
    match = _SPEC_RE.match(spec.replace(" ", ""))
    if match is None:
        raise ValueError(
            f"malformed predictor spec {spec!r}; expected "
            f"'kind' or 'kind(param=value,...)'"
        )
    kind, body = match.group(1), match.group(2)
    if kind not in PREDICTOR_PARAMS:
        raise ValueError(
            f"unknown predictor kind: {kind!r} (known: "
            f"{', '.join(sorted(PREDICTOR_PARAMS))})"
        )
    kwargs: dict[str, int] = {}
    if body:
        allowed = PREDICTOR_PARAMS[kind]
        for part in body.split(","):
            name, eq, raw = part.partition("=")
            if not eq or not name:
                raise ValueError(
                    f"malformed parameter {part!r} in predictor spec "
                    f"{spec!r}; expected 'param=value'"
                )
            if name not in allowed:
                raise ValueError(
                    f"unknown parameter {name!r} for predictor "
                    f"{kind!r} (known: {', '.join(sorted(allowed))})"
                )
            try:
                value = int(raw, 0)
            except ValueError:
                raise ValueError(
                    f"parameter {name!r} in predictor spec {spec!r} "
                    f"must be an integer, got {raw!r}"
                ) from None
            arg, lo, hi = allowed[name]
            if not lo <= value <= hi:
                raise ValueError(
                    f"parameter {name!r} in predictor spec {spec!r} "
                    f"must be in [{lo}, {hi}], got {value}"
                )
            kwargs[arg] = value
    return kind, kwargs


def make_predictor(kind: str) -> ValuePredictor:
    """Create a fresh predictor from a kind name or parameterised spec.

    Args:
        kind: ``"last"``, ``"stride"``, ``"context"``, or ``"hybrid"``
            (the stride+context combination of paper ref [17]), each
            optionally parameterised — ``"last(bits=12)"``,
            ``"context(l1=12,l2=16,order=6)"`` — see
            :data:`PREDICTOR_PARAMS` for the knobs per kind.

    Raises:
        ValueError: unknown kind, unknown/out-of-range parameter.
    """
    from repro.predictors.context import ContextPredictor
    from repro.predictors.hybrid import HybridPredictor
    from repro.predictors.last_value import LastValuePredictor
    from repro.predictors.stride import StridePredictor

    table = {
        "last": LastValuePredictor,
        "stride": StridePredictor,
        "context": ContextPredictor,
        "hybrid": HybridPredictor,
    }
    base, kwargs = parse_predictor_spec(kind)
    return table[base](**kwargs)


#: Predictor kinds in the paper's presentation order (L, S, C).
PREDICTOR_KINDS = ("last", "stride", "context")
