"""Common value-predictor interface and factory."""

from __future__ import annotations

import abc


class ValuePredictor(abc.ABC):
    """A finite-state next-value predictor.

    Predictors are keyed by an integer (a PC, or a hash of PC and
    operand slot for input predictors) and observe the sequence of
    values presented for each key.  Tables are finite and untagged, so
    different keys may alias — exactly as in the paper's simulations.
    """

    #: Short machine name ("last", "stride", "context").
    kind: str = ""
    #: Single-letter label used in the paper's figures (L / S / C).
    letter: str = ""

    @abc.abstractmethod
    def see(self, key: int, value) -> bool:
        """Predict the next value for ``key``, then learn ``value``.

        Returns True when the prediction matched ``value``.  The
        predictor state is updated immediately (paper Section 3).
        """

    @abc.abstractmethod
    def peek(self, key: int):
        """Return the value that ``see`` would predict, or None."""


def make_predictor(kind: str) -> ValuePredictor:
    """Create a fresh predictor of the given kind.

    Args:
        kind: ``"last"``, ``"stride"``, ``"context"``, or ``"hybrid"``
            (the stride+context combination of paper ref [17]).
    """
    from repro.predictors.context import ContextPredictor
    from repro.predictors.hybrid import HybridPredictor
    from repro.predictors.last_value import LastValuePredictor
    from repro.predictors.stride import StridePredictor

    table = {
        "last": LastValuePredictor,
        "stride": StridePredictor,
        "context": ContextPredictor,
        "hybrid": HybridPredictor,
    }
    try:
        return table[kind]()
    except KeyError:
        raise ValueError(f"unknown predictor kind: {kind!r}") from None


#: Predictor kinds in the paper's presentation order (L, S, C).
PREDICTOR_KINDS = ("last", "stride", "context")
