"""The paper's predictor suite.

Three finite-state value predictors (Section 3 of the paper):

* **last-value** — 2^16 entries, 2-bit saturating replacement counter
  (Lipasti/Wilkerson/Shen-style).
* **stride** — the 2-delta stride predictor, 2^16 entries; the stride
  is replaced only when a new stride appears twice in a row.
* **context** — a two-level context-based predictor: a 2^16-entry
  first-level table holding the last four values in hashed form, and a
  *shared* 2^20-entry second-level table with 3-bit replacement
  counters.

Conditional branch directions are predicted by a 64K-entry **gshare**.

All predictors expose ``see(key, value) -> bool``: predict the next
value for ``key``, compare with the actual ``value``, update
immediately (the paper's immediate-update caveat), and report whether
the prediction was correct.
"""

from repro.predictors.base import (
    PREDICTOR_KINDS,
    PREDICTOR_PARAMS,
    ValuePredictor,
    make_predictor,
    parse_predictor_spec,
)
from repro.predictors.bank import PredictorBank
from repro.predictors.confidence import ConfidenceEstimator, ConfidentPredictor
from repro.predictors.context import ContextPredictor
from repro.predictors.delayed import DelayedPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.hybrid import HybridPredictor
from repro.predictors.last_value import LastValuePredictor
from repro.predictors.local_branch import (
    LocalBranchPredictor,
    make_branch_predictor,
)
from repro.predictors.stride import StridePredictor

__all__ = [
    "ConfidenceEstimator",
    "ConfidentPredictor",
    "ContextPredictor",
    "DelayedPredictor",
    "GsharePredictor",
    "HybridPredictor",
    "LastValuePredictor",
    "LocalBranchPredictor",
    "PREDICTOR_KINDS",
    "PREDICTOR_PARAMS",
    "PredictorBank",
    "StridePredictor",
    "ValuePredictor",
    "make_branch_predictor",
    "make_predictor",
    "parse_predictor_spec",
]
