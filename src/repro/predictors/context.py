"""Two-level context-based value predictor.

The version of Sazeides & Smith's context predictor used in the paper
(refs [13], [14]): a first-level *value history table* of 2^16 entries,
indexed by a truncated PC, holds the last four values produced for that
entry in hashed form — a rolling 20-bit signature built by shifting
left 5 bits per value and XORing in a full-width fold of the new value,
so each value's influence decays out after four steps (an order-4
hashed FCM).  The signature indexes a **shared** 2^20-entry
second-level *value prediction table* holding a predicted next value
and a 3-bit saturating counter that guides replacement.

Sharing the second level is deliberate (it matches the paper's setup):
it lets one instruction benefit from patterns learned by another, and
also allows destructive interference — both effects show up in the
paper's results and are reproduced here.
"""

from __future__ import annotations

from repro.predictors.base import ValuePredictor

_EMPTY = object()


def fold_value(value, mask: int = 0xFFFFF) -> int:
    """Hash a produced value into the signature width.

    The rolling signature shifts left by :attr:`ContextPredictor.HASH_BITS`
    per value and XORs in this full-width fold, so a value's influence
    decays out of the context after ``l2_bits / HASH_BITS`` steps —
    an order-4 hashed FCM for the default sizes, per the paper's
    companion TR (ECE-TR-97-8).
    """
    raw = hash(value)
    return (raw ^ (raw >> 20) ^ (raw >> 40)) & mask


class ContextPredictor(ValuePredictor):
    """Order-4 hashed finite-context-method predictor."""

    kind = "context"
    letter = "C"

    #: Bits of hashed history per value in the context signature
    #: (the default ``l2_bits // order``).
    HASH_BITS = 5
    #: Number of values forming the context (the default ``order``).
    ORDER = 4

    def __init__(self, l1_bits: int = 16, l2_bits: int = 20,
                 order: int = 4, hysteresis: int = 7):
        self.l1_bits = l1_bits
        self.l2_bits = l2_bits
        #: history depth: how many values form the context signature.
        self.order = order
        #: saturating-counter ceiling (7 = the paper's 3-bit counter).
        self.hysteresis = hysteresis
        #: per-value shift keeping ``order`` values alive in the
        #: signature; 20/4 reproduces the class-level default of 5.
        self._hash_bits = max(1, l2_bits // order)
        self._l1_mask = (1 << l1_bits) - 1
        self._l2_mask = (1 << l2_bits) - 1
        #: first level: rolling context signature per entry.
        self._contexts = [0] * (1 << l1_bits)
        #: shared second level: predicted value + saturating counter.
        self._values: list = [_EMPTY] * (1 << l2_bits)
        self._counters = bytearray(1 << l2_bits)

    def see(self, key: int, value) -> bool:
        l1_index = key & self._l1_mask
        context = self._contexts[l1_index]
        values = self._values
        stored = values[context]
        correct = stored is not _EMPTY and stored == value
        counters = self._counters
        counter = counters[context]
        if correct:
            if counter < self.hysteresis:
                counters[context] = counter + 1
        elif counter > 0:
            counters[context] = counter - 1
        else:
            values[context] = value
            counters[context] = min(1, self.hysteresis)
        raw = hash(value)
        l2_mask = self._l2_mask
        folded = (raw ^ (raw >> 20) ^ (raw >> 40)) & l2_mask
        self._contexts[l1_index] = (
            ((context << self._hash_bits) ^ folded) & l2_mask
        )
        return correct

    def peek(self, key: int):
        context = self._contexts[key & self._l1_mask]
        stored = self._values[context]
        return None if stored is _EMPTY else stored
