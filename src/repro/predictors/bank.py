"""Input/output predictor banks.

The paper uses *separate but identical* predictors for instruction
inputs and outputs, to prevent prediction "short circuits" where an
instruction's output predictor has just seen the value its input
predictor is about to be asked for.  :class:`PredictorBank` packages
one predictor pair of a given kind.

Output predictions are keyed by the producing instruction's PC.  Input
predictions are keyed by ``(PC << 2) | operand_slot`` so that a
two-source instruction does not alias its own operands (the paper
indexes input predictors "by PC" without stating a slot rule; see
DESIGN.md).
"""

from __future__ import annotations

from repro.predictors.base import ValuePredictor, make_predictor


class PredictorBank:
    """One value-predictor pair (inputs + outputs) of a given kind."""

    def __init__(self, kind: str):
        self.kind = kind
        self.outputs: ValuePredictor = make_predictor(kind)
        self.inputs: ValuePredictor = make_predictor(kind)
        self.letter = self.outputs.letter

    def see_output(self, pc: int, value) -> bool:
        """Predict-and-learn an instruction result at production time."""
        return self.outputs.see(pc, value)

    def see_input(self, pc: int, slot: int, value) -> bool:
        """Predict-and-learn a source operand at consumption time."""
        return self.inputs.see((pc << 2) | slot, value)
