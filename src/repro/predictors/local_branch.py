"""Two-level local-history branch predictor.

The paper chose gshare for branch directions but remarks that "an
interesting alternative would be a two-level predictor that more
closely mirrors the structure of the context-based predictor" — i.e. a
per-branch history indexing a shared pattern table, exactly parallel
to the value predictor's per-PC context indexing a shared second
level (Yeh & Patt, paper ref [18]).

This class is interchangeable with :class:`GsharePredictor` and can be
selected via ``AnalysisConfig(branch_predictor="local")``.
"""

from __future__ import annotations


class LocalBranchPredictor:
    """Per-branch history, shared 2-bit-counter pattern table."""

    kind = "local"

    def __init__(self, history_bits: int = 12, table_bits: int = 14):
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._table_mask = (1 << table_bits) - 1
        #: first level: per-PC branch history register.
        self._histories = [0] * (1 << table_bits)
        #: second level: shared pattern history table.
        self._counters = bytearray([1]) * (1 << table_bits)

    def see(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``, learn ``taken``, report hit."""
        slot = pc & self._table_mask
        history = self._histories[slot]
        index = (history ^ (pc << 2)) & self._table_mask
        counter = self._counters[index]
        correct = (counter >= 2) == taken
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
        self._histories[slot] = (
            ((history << 1) | (1 if taken else 0)) & self._history_mask
        )
        return correct

    def peek(self, pc: int) -> bool:
        slot = pc & self._table_mask
        index = (self._histories[slot] ^ (pc << 2)) & self._table_mask
        return self._counters[index] >= 2


def make_branch_predictor(kind: str, index_bits: int = 16):
    """Factory for branch predictors: ``"gshare"`` or ``"local"``."""
    from repro.predictors.gshare import GsharePredictor

    if kind == "gshare":
        return GsharePredictor(index_bits)
    if kind == "local":
        return LocalBranchPredictor()
    raise ValueError(f"unknown branch predictor kind: {kind!r}")
