"""Wire format of the analysis service.

The service speaks JSON over HTTP (see docs/service.md for the full
endpoint contract).  This module is the boundary where untrusted
request bodies become typed values and back:

* :func:`config_from_dict` / :func:`config_to_dict` — the JSON shape
  of an :class:`repro.runner.ExperimentConfig` (unknown keys and
  mistyped values are rejected, sequences become the tuples the frozen
  dataclass expects);
* :func:`parse_analyze_request` / :func:`parse_sweep_request` — full
  request-body validation for ``POST /v1/analyze`` and
  ``POST /v1/sweep``;
* :exc:`ProtocolError` — the single exception the server maps to
  HTTP 400; its message is safe to echo back to the client.

Everything here is pure (no I/O), so the broker and the tests can use
it without a socket in sight.
"""

from __future__ import annotations

import dataclasses

from repro.runner import ExperimentConfig
from repro.runner.policy import POLICY_FIELDS
from repro.service.qos.tenant import Tenant, TenantError
from repro.service.qos.tenant import parse_tenant as _parse_tenant
from repro.workloads import get_workload

__all__ = [
    "ProtocolError",
    "config_from_dict",
    "config_to_dict",
    "parse_analyze_request",
    "parse_sweep_request",
    "parse_tenant_header",
]


class ProtocolError(ValueError):
    """A request body that cannot be turned into typed values.

    The server maps this to HTTP 400; the message is written for the
    client (names the offending field, never leaks server internals).
    """


#: ExperimentConfig fields that arrive as JSON arrays and must become
#: tuples (the config dataclass is frozen and hashable).
_TUPLE_FIELDS = frozenset({"workloads", "predictors", "trees_for"})

_CONFIG_FIELDS = {f.name: f for f in dataclasses.fields(ExperimentConfig)}

#: Execution-policy knobs (plus the envelope key itself).  These are
#: server-side configuration — the operator sets them on ``repro
#: serve``; a client must not be able to pick how much parallelism or
#: which engine the server spends on its request, so they get a
#: pointed rejection rather than the generic unknown-key 400.
_POLICY_KEYS = frozenset(POLICY_FIELDS) | {"policy"}

#: QoS knobs a client might try to smuggle into a request body.
#: Tenant identity travels on the ``X-Repro-Tenant`` header; quotas,
#: priority classes and weights are operator policy (``repro serve
#: --qos ...``).  Letting a request body pick its own priority or
#: quota would defeat the isolation the policy exists to provide, so
#: these get a pointed rejection (docs/qos.md).
_QOS_KEYS = frozenset({"qos", "priority", "class", "quota", "weight"})


def parse_tenant_header(value: str | None) -> Tenant:
    """Validate a raw ``X-Repro-Tenant`` header at the trust boundary.

    ``None`` (header absent) is the default tenant; a malformed value
    becomes a :exc:`ProtocolError` → HTTP 400 whose message states
    the tenant-name grammar.
    """
    try:
        return _parse_tenant(value)
    except TenantError as error:
        raise ProtocolError(str(error)) from None


def _reject_reserved(payload: dict) -> None:
    """Pointed 400s for tenant/QoS keys in a request body."""
    for name in payload:
        if name == "tenant":
            raise ProtocolError(
                "field 'tenant' is carried on the X-Repro-Tenant "
                "request header, not in the request body"
            )
        if name in _QOS_KEYS:
            raise ProtocolError(
                f"field {name!r} is server-side QoS policy; it is set "
                f"by the service operator (`repro serve --qos ...`), "
                f"not by clients"
            )


def _as_tuple(name: str, value):
    if value is None and name == "workloads":
        return None
    if isinstance(value, str) or not isinstance(value, (list, tuple)):
        raise ProtocolError(
            f"config field {name!r} must be an array of strings"
        )
    items = tuple(value)
    for item in items:
        if not isinstance(item, str):
            raise ProtocolError(
                f"config field {name!r} must be an array of strings"
            )
    return items


def config_from_dict(payload) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from a JSON object.

    Missing keys inherit the config defaults; unknown keys are an
    error (a typoed knob silently doing nothing is worse than a 400).
    """
    if payload is None:
        return ExperimentConfig()
    if not isinstance(payload, dict):
        raise ProtocolError("config must be a JSON object")
    kwargs = {}
    for name, value in payload.items():
        config_field = _CONFIG_FIELDS.get(name)
        if config_field is None:
            if name in _POLICY_KEYS:
                raise ProtocolError(
                    f"config field {name!r} is server-side execution "
                    f"policy; it is set by the service operator "
                    f"(`repro serve --policy ...`), not by clients"
                )
            if name in _QOS_KEYS or name == "tenant":
                _reject_reserved({name: value})
            known = ", ".join(sorted(_CONFIG_FIELDS))
            raise ProtocolError(
                f"unknown config field {name!r} (known: {known})"
            )
        if name in _TUPLE_FIELDS:
            kwargs[name] = _as_tuple(name, value)
        elif name == "max_instructions" and value is None:
            kwargs[name] = None
        elif isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                f"config field {name!r} must be an integer"
            )
        else:
            kwargs[name] = value
    return ExperimentConfig(**kwargs)


def config_to_dict(config: ExperimentConfig) -> dict:
    """The JSON shape of ``config`` (inverse of
    :func:`config_from_dict` for any valid config)."""
    payload = dataclasses.asdict(config)
    for name in _TUPLE_FIELDS:
        if payload[name] is not None:
            payload[name] = list(payload[name])
    return payload


def _check_workload(name) -> str:
    if not isinstance(name, str) or not name:
        raise ProtocolError("'workload' must be a non-empty string")
    try:
        get_workload(name)
    except KeyError:
        raise ProtocolError(f"unknown workload {name!r}") from None
    return name


def parse_analyze_request(payload) -> tuple[str, ExperimentConfig]:
    """Validate a ``POST /v1/analyze`` body: ``(workload, config)``.

    Expected shape::

        {"workload": "<suite name>", "config": {...optional...}}
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    _reject_reserved(payload)
    unknown = set(payload) - {"workload", "config"}
    if unknown:
        raise ProtocolError(
            f"unknown request field(s): {', '.join(sorted(unknown))}"
        )
    if "workload" not in payload:
        raise ProtocolError("missing required field 'workload'")
    name = _check_workload(payload["workload"])
    config = config_from_dict(payload.get("config"))
    return name, config


def parse_sweep_request(payload) -> list[tuple[str, ExperimentConfig]]:
    """Validate a ``POST /v1/sweep`` body: a list of (name, config).

    Expected shape::

        {"workloads": ["fib", ...],        # default: the full suite
         "configs": [{...}, {...}, ...]}   # at least one

    Every (workload, config) pair becomes one broker job, so the
    sweep's trace sharing happens exactly as in
    :func:`repro.api.run_sweep` whenever the pairs land in one batch.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    _reject_reserved(payload)
    unknown = set(payload) - {"workloads", "configs"}
    if unknown:
        raise ProtocolError(
            f"unknown request field(s): {', '.join(sorted(unknown))}"
        )
    if "configs" not in payload or not isinstance(payload["configs"], list):
        raise ProtocolError("'configs' must be a non-empty array")
    if not payload["configs"]:
        raise ProtocolError("'configs' must be a non-empty array")
    configs = [config_from_dict(item) for item in payload["configs"]]
    names = payload.get("workloads")
    if names is None:
        from repro.workloads import SUITE
        names = [w.name for w in SUITE]
    else:
        names = list(_as_tuple("workloads", names) or ())
        if not names:
            raise ProtocolError("'workloads' must be a non-empty array")
        names = [_check_workload(name) for name in names]
    return [(name, config) for config in configs for name in names]
