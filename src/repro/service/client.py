"""Blocking client for the analysis service (stdlib ``http.client``).

The client owns the retry story so callers do not have to: transport
errors (connection refused/reset — e.g. a ``service.accept`` fault or
a restarting server), HTTP 5xx and HTTP 429 are retried with the same
full-jitter exponential backoff the pool uses between task attempts
(:func:`repro.runner.backoff_delay`); a 429's ``Retry-After`` hint is
honoured when it is larger than the computed delay.  4xx other than
429 are *not* retried — the request itself is wrong, and repeating it
cannot help.

Each request opens a fresh connection: reconnect-per-attempt is what
makes retrying through a flapping server safe, and the service's cost
profile is dominated by analysis, not TCP handshakes.
"""

from __future__ import annotations

import http.client
import json
import logging
import random
import socket
import time
from dataclasses import dataclass

from repro.runner import backoff_delay

__all__ = [
    "RequestFailed",
    "ServiceClient",
    "ServiceError",
    "ServiceResponse",
    "ServiceUnavailable",
]

_log = logging.getLogger(__name__)

#: HTTP statuses worth retrying (the server may recover).
_RETRY_STATUSES = frozenset({429, 500, 502, 503, 504})


class ServiceError(Exception):
    """Base of everything the client raises."""


class ServiceUnavailable(ServiceError):
    """Retries exhausted without a non-retryable answer.

    ``last_error`` is the final transport exception (or None when the
    last attempt reached the server and got a retryable status, in
    which case ``last_status`` is set).  ``retry_after`` carries the
    server's last ``Retry-After`` hint (0.0 when none was given) so a
    failover router can keep honouring it against the *next* target —
    a shedding worker's sibling shares the same backing stores and
    likely the same load.
    """

    def __init__(self, message: str, last_error=None,
                 last_status: int | None = None, attempts: int = 0,
                 retry_after: float = 0.0):
        super().__init__(message)
        self.last_error = last_error
        self.last_status = last_status
        self.attempts = attempts
        self.retry_after = retry_after


class RequestFailed(ServiceError):
    """The server answered with a non-retryable error status.

    ``status`` is the HTTP status, ``payload`` the decoded JSON body
    (``{"error": ...}`` shape, possibly with a ``detail`` object).
    """

    def __init__(self, status: int, payload):
        if isinstance(payload, dict) and payload.get("error"):
            message = f"HTTP {status}: {payload['error']}"
        else:
            message = f"HTTP {status}"
        super().__init__(message)
        self.status = status
        self.payload = payload


@dataclass(frozen=True)
class ServiceResponse:
    """One successful exchange: decoded body plus transport facts."""

    status: int
    payload: object
    attempts: int


class ServiceClient:
    """Blocking JSON-over-HTTP client with retry/backoff.

    Args:
        host, port: where the service listens.
        timeout: per-attempt socket timeout in seconds.
        retries: extra attempts after the first (so ``retries=3`` is
            at most four requests on the wire).
        backoff_base, backoff_cap: the :func:`repro.runner.backoff_delay`
            parameters.
        tenant: the tenant name sent on every request's
            ``X-Repro-Tenant`` header (None: no header — the server
            bills the default tenant).  A tenant shed on its own
            quota gets the same treatment as global shedding: the 429
            is retried with its per-tenant ``Retry-After`` honoured,
            and exhaustion surfaces the last hint in
            :attr:`ServiceUnavailable.retry_after`.
        rng, sleep: injection seams for deterministic tests.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0, retries: int = 3,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 deadline: float | None = None,
                 tenant: str | None = None,
                 rng: random.Random | None = None, sleep=None,
                 clock=None):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.deadline = deadline
        self._rng = rng or random.Random()
        self._sleep = sleep if sleep is not None else time.sleep
        self._clock = clock if clock is not None else time.monotonic

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------

    def _attempt(self, method: str, path: str, body: bytes | None):
        """One request on a fresh connection: ``(status, headers, raw)``."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Accept": "application/json",
                       "Connection": "close"}
            if self.tenant is not None:
                headers["X-Repro-Tenant"] = self.tenant
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            return response.status, dict(response.getheaders()), raw
        finally:
            conn.close()

    def request(self, method: str, path: str,
                payload=None) -> ServiceResponse:
        """Send one logical request, retrying per the policy above.

        ``deadline`` (constructor) caps the *total* retry budget in
        seconds — attempts and backoff sleeps together.  A flapping
        server whose ``Retry-After`` hints keep growing can therefore
        delay a deadlined client only until the budget runs out, never
        indefinitely; the final :class:`ServiceUnavailable` notes the
        exhausted deadline and carries the last hint for failover
        routers to propagate.
        """
        body = (json.dumps(payload).encode()
                if payload is not None else None)
        started = self._clock()
        last_error: Exception | None = None
        last_status: int | None = None
        last_hint = 0.0
        attempts = 0
        deadline_hit = False
        for attempt in range(1, self.retries + 2):
            attempts = attempt
            retry_after = 0.0
            try:
                status, headers, raw = self._attempt(method, path, body)
            except (OSError, http.client.HTTPException,
                    socket.timeout) as error:
                last_error, last_status = error, None
            else:
                decoded = self._decode(raw)
                if status < 400:
                    return ServiceResponse(status=status, payload=decoded,
                                           attempts=attempt)
                if status not in _RETRY_STATUSES:
                    raise RequestFailed(status, decoded)
                last_error, last_status = None, status
                try:
                    retry_after = float(headers.get("Retry-After", 0))
                except (TypeError, ValueError):
                    retry_after = 0.0
                last_hint = max(last_hint, retry_after)
            if attempt <= self.retries:
                delay = max(
                    backoff_delay(attempt, self.backoff_base,
                                  self.backoff_cap, self._rng),
                    retry_after,
                )
                if self.deadline is not None:
                    remaining = (started + self.deadline) - self._clock()
                    if delay >= remaining:
                        deadline_hit = True
                        break
                _log.debug("retrying %s %s in %.3fs (attempt %d: %s)",
                           method, path, delay, attempt,
                           last_error or f"HTTP {last_status}")
                self._sleep(delay)
        detail = (f"HTTP {last_status}" if last_status is not None
                  else repr(last_error))
        if deadline_hit:
            detail += (f"; {self.deadline:.1f}s retry deadline "
                       f"exhausted")
        raise ServiceUnavailable(
            f"{method} {path} failed after {attempts} attempt(s): {detail}",
            last_error=last_error, last_status=last_status,
            attempts=attempts, retry_after=last_hint,
        )

    @staticmethod
    def _decode(raw: bytes):
        if not raw:
            return None
        try:
            return json.loads(raw)
        except json.JSONDecodeError:
            return raw.decode("utf-8", "replace")

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------

    def analyze(self, workload: str, config: dict | None = None) -> dict:
        """``POST /v1/analyze``; the response body dict
        (``{"workload", "status", "result"}``)."""
        body = {"workload": workload}
        if config is not None:
            body["config"] = config
        return self.request("POST", "/v1/analyze", body).payload

    def sweep(self, configs: list, workloads: list | None = None) -> dict:
        """``POST /v1/sweep``; the response body dict
        (``{"jobs", "failed"}``)."""
        body: dict = {"configs": configs}
        if workloads is not None:
            body["workloads"] = workloads
        return self.request("POST", "/v1/sweep", body).payload

    def workloads(self) -> list:
        """``GET /v1/workloads``; the catalogue list."""
        return self.request("GET", "/v1/workloads").payload["workloads"]

    def health(self) -> dict:
        return self.request("GET", "/healthz").payload

    def ready(self) -> dict:
        """``GET /readyz`` without retries (a 503 *is* the answer)."""
        status, __, raw = self._attempt("GET", "/readyz", None)
        payload = self._decode(raw)
        if not isinstance(payload, dict):
            payload = {"ready": False}
        payload.setdefault("ready", status == 200)
        return payload

    def metrics(self) -> str:
        """``GET /metrics``; raw Prometheus exposition text."""
        return self.request("GET", "/metrics").payload
