"""The service's error taxonomy, shared across its layers.

These classes used to live in :mod:`repro.service.broker` (which
still re-exports them, so existing import sites keep working).  They
moved here so the QoS layer can subclass :exc:`Overloaded` for its
per-tenant sheds without importing the broker — the broker imports
QoS, not the other way around.

HTTP mapping (the server's contract, docs/service.md):
:exc:`Overloaded` → 429 with ``Retry-After``; :exc:`BrokerClosed` →
503; :exc:`JobError` → 500 with the failure detail.
"""

from __future__ import annotations

__all__ = ["BrokerClosed", "JobError", "Overloaded"]


class Overloaded(Exception):
    """Admission refused: the queue is full or the wait too long.

    ``retry_after`` is the server's backoff hint in seconds (the
    ``Retry-After`` header of the resulting HTTP 429).
    """

    def __init__(self, retry_after: float, reason: str):
        super().__init__(reason)
        self.retry_after = max(1, round(retry_after))


class BrokerClosed(RuntimeError):
    """Submission after drain began (HTTP 503 at the server)."""


class JobError(RuntimeError):
    """An admitted job ran and failed; carries the runner's failure.

    ``detail`` is JSON-safe (workload, error text, kind, attempts,
    timed_out) and goes into the HTTP 500 body verbatim.
    """

    def __init__(self, detail: dict):
        super().__init__(detail.get("error", "job failed"))
        self.detail = detail
