"""repro.service — the analysis server and its client.

``repro.api`` over the wire: a stdlib-only asyncio HTTP server
(``python -m repro serve``) whose request broker coalesces identical
in-flight requests, batches cold work onto the experiment runner,
sheds load with HTTP 429 when saturated, and drains gracefully on
SIGTERM.  See docs/service.md for the architecture, the endpoint
contract and the operational story; ``benchmarks/bench_service.py``
measures it.

Layering: protocol (wire format) → broker (scheduling) → server
(HTTP) / client (blocking caller side).  The broker reuses the
runner's stores, journal and fault plumbing — the service adds no
second cache or execution path.
"""

from repro.service.broker import (
    AnalysisBroker,
    BrokerClosed,
    BrokerConfig,
    JobError,
    Overloaded,
)
from repro.service.fleet import (
    CircuitBreaker,
    FleetClient,
    FleetConfig,
    FleetSupervisor,
    HashRing,
    run_fleet_chaos,
)
from repro.service.client import (
    RequestFailed,
    ServiceClient,
    ServiceError,
    ServiceResponse,
    ServiceUnavailable,
)
from repro.service.protocol import (
    ProtocolError,
    config_from_dict,
    config_to_dict,
    parse_analyze_request,
    parse_sweep_request,
    parse_tenant_header,
)
from repro.service.qos import (
    DEFAULT_TENANT,
    QosError,
    QosPolicy,
    QuotaExceeded,
    Tenant,
    TenantError,
    load_qos_policy,
)
from repro.service.server import (
    BackgroundServer,
    MAX_BODY,
    ServiceServer,
    run_server,
)

__all__ = [
    "AnalysisBroker",
    "BackgroundServer",
    "BrokerClosed",
    "BrokerConfig",
    "CircuitBreaker",
    "DEFAULT_TENANT",
    "FleetClient",
    "FleetConfig",
    "FleetSupervisor",
    "HashRing",
    "JobError",
    "MAX_BODY",
    "Overloaded",
    "ProtocolError",
    "QosError",
    "QosPolicy",
    "QuotaExceeded",
    "RequestFailed",
    "ServiceClient",
    "ServiceError",
    "ServiceResponse",
    "ServiceServer",
    "ServiceUnavailable",
    "Tenant",
    "TenantError",
    "config_from_dict",
    "config_to_dict",
    "load_qos_policy",
    "parse_analyze_request",
    "parse_sweep_request",
    "parse_tenant_header",
    "run_fleet_chaos",
    "run_server",
]
