"""The analysis server: stdlib asyncio HTTP in front of the broker.

A deliberately small HTTP/1.1 implementation over
:func:`asyncio.start_server` — request line, headers,
``Content-Length`` bodies, keep-alive — because the container ships no
web framework and the service needs exactly six routes
(docs/service.md):

========================  ====================================================
route                     behaviour
========================  ====================================================
``POST /v1/analyze``      one workload under one config, via the broker
``POST /v1/sweep``        a config sweep fanned out to per-job submissions
``GET /v1/workloads``     the workload suite catalogue
``GET /healthz``          liveness (always 200 while the process runs)
``GET /readyz``           readiness + broker load stats (503 while draining)
``GET /metrics``          Prometheus exposition of the process recorder
========================  ====================================================

Error mapping: :exc:`~repro.service.protocol.ProtocolError` → 400,
:exc:`~repro.service.broker.Overloaded` → 429 with ``Retry-After``,
:exc:`~repro.service.broker.BrokerClosed` → 503,
:exc:`~repro.service.broker.JobError` → 500 with the failure detail.

Shutdown is a **drain**, not a stop: SIGTERM/SIGINT close the
listener, every in-flight request finishes and is answered, the
broker finishes every admitted job (journaled through the runner),
and only then does :func:`run_server` return 0.  Chaos sites
``service.accept`` (drop a fresh connection) and ``service.handler``
(500 an otherwise-fine request) plug the service into the fault plans
of docs/robustness.md.

:class:`BackgroundServer` hosts the whole stack on a daemon thread
with an ephemeral port — the harness the tests and
``benchmarks/bench_service.py`` drive.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading

from repro.obs import Recorder, get_recorder, set_recorder
from repro.obs.export import to_prometheus
from repro.runner import ResultStore, TraceStore, default_store, \
    default_trace_store
from repro.runner.faults import maybe_fault
from repro.service.broker import (
    AnalysisBroker,
    BrokerClosed,
    BrokerConfig,
    JobError,
    Overloaded,
)
from repro.service.protocol import (
    ProtocolError,
    parse_analyze_request,
    parse_sweep_request,
    parse_tenant_header,
)
from repro.workloads import SUITE

__all__ = ["BackgroundServer", "MAX_BODY", "ServiceServer", "run_server"]

_log = logging.getLogger(__name__)

#: Request-body cap; anything larger is refused with HTTP 413.
MAX_BODY = 1 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: a request that dies before reaching a route."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _Conn:
    """Per-connection state the drain logic needs.

    ``busy`` is True from the moment a request is fully parsed until
    its response is written; drain closes idle connections immediately
    and waits for busy ones — that is the zero-dropped-requests rule.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False


async def _read_request(reader: asyncio.StreamReader, max_body: int):
    """Parse one request: ``(method, path, headers, body)`` or None.

    None means the peer closed the connection between requests (the
    normal end of a keep-alive session).
    """
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise _HttpError(400, "request line too long") from None
    if not line:
        return None
    try:
        method, path, _version = line.decode("ascii").split(None, 2)
    except (UnicodeDecodeError, ValueError):
        raise _HttpError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _HttpError(400, "header line too long") from None
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) > 100:
            raise _HttpError(400, "too many headers")
        try:
            name, __, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise _HttpError(400, "malformed header") from None
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        length = int(length)
    except ValueError:
        raise _HttpError(400, "malformed Content-Length") from None
    if length < 0:
        raise _HttpError(400, "malformed Content-Length")
    if length > max_body:
        raise _HttpError(413, f"body exceeds {max_body} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None
    return method, path, headers, body


def _encode_response(status: int, body: bytes, content_type: str,
                     keep_alive: bool,
                     extra: dict[str, str] | None = None) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class ServiceServer:
    """The HTTP front of one :class:`AnalysisBroker`."""

    def __init__(self, broker: AnalysisBroker, host: str = "127.0.0.1",
                 port: int = 0, max_body: int = MAX_BODY):
        self.broker = broker
        self.host = host
        self._requested_port = port
        self.max_body = max_body
        self._server: asyncio.Server | None = None
        self._conns: set[_Conn] = set()
        self._draining = False

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral one)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self.broker.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )

    async def shutdown(self) -> None:
        """Drain: close the listener, finish in-flight, drain broker."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections are parked in readline with no
        # request pending — close them; busy ones finish their
        # response (the handler sends Connection: close and exits).
        while self._conns:
            for conn in list(self._conns):
                if not conn.busy:
                    conn.writer.close()
            await asyncio.sleep(0.01)
        await self.broker.drain()

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        if maybe_fault("service.accept"):
            writer.close()
            return
        conn = _Conn(writer)
        self._conns.add(conn)
        try:
            while not self._draining:
                try:
                    request = await _read_request(reader, self.max_body)
                except _HttpError as error:
                    conn.busy = True
                    await self._respond(writer, error.status,
                                        {"error": str(error)},
                                        keep_alive=False)
                    return
                if request is None:
                    return
                conn.busy = True
                method, path, headers, body = request
                status, payload, content_type, extra = (
                    await self._dispatch(method, path, headers, body)
                )
                keep_alive = (
                    not self._draining
                    and headers.get("connection", "").lower() != "close"
                    and status != 503
                )
                await self._respond(writer, status, payload,
                                    keep_alive=keep_alive,
                                    content_type=content_type,
                                    extra=extra)
                conn.busy = False
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._conns.discard(conn)
            writer.close()

    async def _respond(self, writer, status: int, payload,
                       keep_alive: bool,
                       content_type: str = "application/json",
                       extra: dict | None = None) -> None:
        if isinstance(payload, (dict, list)):
            body = json.dumps(payload).encode()
        elif isinstance(payload, str):
            body = payload.encode()
        else:
            body = payload
        get_recorder().count(f"service.http.{status // 100}xx", 1)
        writer.write(_encode_response(status, body, content_type,
                                      keep_alive, extra))
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------

    async def _dispatch(self, method: str, path: str,
                        headers: dict[str, str], body: bytes):
        """Route one request: ``(status, payload, content_type, extra)``.

        ``headers`` arrive lower-cased from :func:`_read_request`; the
        only one consulted here is ``x-repro-tenant``, validated at
        this trust boundary into the tenant the broker bills.
        """
        try:
            if maybe_fault("service.handler"):
                raise _HttpError(500, "injected fault at service.handler")
            if path == "/healthz":
                self._require(method, "GET")
                return 200, {"status": "ok"}, "application/json", None
            if path == "/readyz":
                self._require(method, "GET")
                stats = self.broker.stats()
                ready = not self._draining and not self.broker.draining
                stats["ready"] = ready
                return ((200 if ready else 503), stats,
                        "application/json", None)
            if path == "/metrics":
                self._require(method, "GET")
                text = to_prometheus(get_recorder().snapshot())
                return (200, text,
                        "text/plain; version=0.0.4; charset=utf-8", None)
            if path == "/v1/workloads":
                self._require(method, "GET")
                catalogue = [
                    {"name": w.name, "kind": w.kind,
                     "description": w.description}
                    for w in SUITE
                ]
                return (200, {"workloads": catalogue},
                        "application/json", None)
            if path == "/v1/analyze":
                self._require(method, "POST")
                tenant = parse_tenant_header(headers.get("x-repro-tenant"))
                name, config = parse_analyze_request(self._json(body))
                payload, status = await self.broker.submit(
                    name, config, tenant=tenant
                )
                return (200, {"workload": name, "status": status,
                              "result": payload}, "application/json", None)
            if path == "/v1/sweep":
                self._require(method, "POST")
                tenant = parse_tenant_header(headers.get("x-repro-tenant"))
                pairs = parse_sweep_request(self._json(body))
                return await self._sweep(pairs, tenant)
            raise _HttpError(404, f"no route for {path}")
        except _HttpError as error:
            return (error.status, {"error": str(error)},
                    "application/json", None)
        except ProtocolError as error:
            return 400, {"error": str(error)}, "application/json", None
        except Overloaded as error:
            return (429, {"error": str(error),
                          "retry_after": error.retry_after},
                    "application/json",
                    {"Retry-After": str(error.retry_after)})
        except BrokerClosed:
            return (503, {"error": "server is draining"},
                    "application/json", None)
        except JobError as error:
            return (500, {"error": str(error), "detail": error.detail},
                    "application/json", None)
        except Exception as error:  # noqa: BLE001 — a 500, not a crash
            _log.exception("unhandled error serving %s %s", method, path)
            return (500, {"error": f"{type(error).__name__}: {error}"},
                    "application/json", None)

    async def _sweep(self, pairs, tenant=None):
        """Fan a sweep out to per-job submissions; per-job outcomes.

        Submissions race together, so cold same-workload jobs land in
        one broker batch and share a single simulation.  The response
        reports every job; the HTTP status is 200 only when all
        succeeded (429 when every failure was load shedding, 500
        otherwise).
        """
        outcomes = await asyncio.gather(
            *(self.broker.submit(name, config, tenant=tenant)
              for name, config in pairs),
            return_exceptions=True,
        )
        jobs, failures = [], []
        for (name, __), outcome in zip(pairs, outcomes):
            if isinstance(outcome, Exception):
                failures.append(outcome)
                entry = {"workload": name, "error": str(outcome)}
                if isinstance(outcome, JobError):
                    entry["detail"] = outcome.detail
                jobs.append(entry)
            else:
                payload, status = outcome
                jobs.append({"workload": name, "status": status,
                             "result": payload})
        body = {"jobs": jobs, "failed": len(failures)}
        if not failures:
            return 200, body, "application/json", None
        if all(isinstance(f, Overloaded) for f in failures):
            retry = max(f.retry_after for f in failures)
            body["retry_after"] = retry
            return (429, body, "application/json",
                    {"Retry-After": str(retry)})
        if all(isinstance(f, BrokerClosed) for f in failures):
            return 503, body, "application/json", None
        return 500, body, "application/json", None

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    @staticmethod
    def _json(body: bytes):
        try:
            return json.loads(body or b"null")
        except json.JSONDecodeError as error:
            raise ProtocolError(f"request body is not JSON: {error}")


# ----------------------------------------------------------------------
# Entry points.
# ----------------------------------------------------------------------

async def serve(host: str, port: int,
                broker_config: BrokerConfig | None = None,
                store: ResultStore | None = None,
                trace_store: TraceStore | None = None,
                ready=None, stop: asyncio.Event | None = None,
                use_default_stores: bool = True) -> int:
    """Serve until ``stop`` (or SIGTERM/SIGINT), drain, return 0.

    ``ready(port)`` is called once the listener is bound — how
    :class:`BackgroundServer` and the CLI learn the ephemeral port.
    ``use_default_stores`` pulls the environment-configured cache
    tiers when no stores are passed; tests pass explicit (or no)
    stores instead.
    """
    if store is None and trace_store is None and use_default_stores:
        store, trace_store = default_store(), default_trace_store()
    # A service without counters has a useless /metrics endpoint:
    # install an enabled recorder for the server's lifetime unless
    # the caller already runs one (then theirs keeps ownership).
    restore = None
    if not get_recorder().enabled:
        restore = set_recorder(Recorder())
    broker = AnalysisBroker(store=store, trace_store=trace_store,
                            config=broker_config)
    server = ServiceServer(broker, host=host, port=port)
    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without signal support
    await server.start()
    _log.info("repro service listening on %s:%d", host, server.port)
    if ready is not None:
        ready(server.port)
    try:
        await stop.wait()
        _log.info("repro service draining")
        await server.shutdown()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        if restore is not None:
            set_recorder(restore)
    _log.info("repro service drained cleanly")
    return 0


def run_server(host: str = "127.0.0.1", port: int = 8642,
               broker_config: BrokerConfig | None = None,
               store: ResultStore | None = None,
               trace_store: TraceStore | None = None) -> int:
    """Blocking entry point behind ``python -m repro serve``."""
    return asyncio.run(serve(host, port, broker_config=broker_config,
                             store=store, trace_store=trace_store))


class BackgroundServer:
    """A full service stack on a daemon thread (tests, benchmarks).

    ::

        with BackgroundServer(store=store) as server:
            client = ServiceClient(port=server.port)
            ...

    ``port=0`` (the default) binds an ephemeral port; ``port``
    resolves once ``__enter__`` returns.  ``stop()`` triggers the
    same drain path as SIGTERM and joins the thread.
    """

    def __init__(self, store: ResultStore | None = None,
                 trace_store: TraceStore | None = None,
                 broker_config: BrokerConfig | None = None,
                 host: str = "127.0.0.1", port: int = 0):
        self._store = store
        self._trace_store = trace_store
        self._broker_config = broker_config
        self._host = host
        self.port = port
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self.exit_code: int | None = None
        self._error: BaseException | None = None

    def _main(self) -> None:
        async def body() -> int:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            return await serve(
                self._host, self.port,
                broker_config=self._broker_config,
                store=self._store, trace_store=self._trace_store,
                ready=self._on_ready, stop=self._stop,
                use_default_stores=False,
            )

        try:
            self.exit_code = asyncio.run(body())
        except BaseException as error:  # noqa: BLE001 — surfaced in stop()
            self._error = error
            self._ready.set()

    def _on_ready(self, port: int) -> None:
        self.port = port
        self._ready.set()

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        return self

    def stop(self) -> int | None:
        """Drain and join; returns the serve loop's exit code."""
        if self._thread is None:
            return self.exit_code
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already gone
        self._thread.join(timeout=60)
        self._thread = None
        if self._error is not None:
            raise RuntimeError("service died") from self._error
        return self.exit_code

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
