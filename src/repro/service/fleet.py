"""Fleet supervision: N serve workers behind one failover router.

One serve process is a single point of failure: a ``kill -9`` or a
wedge (alive but unresponsive) takes the whole service down.  The
fleet layer grows :mod:`repro.service` to N worker processes sharing
the content-addressed stores, with the three classic availability
mechanisms on top (docs/service.md has the operator view):

* :class:`FleetSupervisor` — spawns one ``run_server`` process per
  worker, probes each ``/healthz`` on a monitor thread, and restarts
  dead or wedged workers with the runner's own full-jitter exponential
  backoff (:func:`repro.runner.backoff_delay`).  Shutdown is a
  *rolling* SIGTERM drain: workers drain one at a time, so the rest
  of the fleet keeps answering until the end.
* :class:`CircuitBreaker` — per-worker closed → open → half-open
  state machine fed by both probe and request outcomes.  An open
  breaker takes the worker out of rotation immediately (no client
  waits on a corpse); after ``recovery_time`` one half-open probe is
  let through, and its outcome decides re-close vs re-open.
* :class:`HashRing` + :class:`FleetClient` — consistent-hash routing
  of requests by job identity (same request → same worker, so each
  worker's broker keeps coalescing its own repeats) with failover:
  when the preferred worker's breaker is open or the request fails in
  transport, the next worker on the ring gets it.  A worker that shed
  load with ``Retry-After`` is benched for that long — the hint is
  honoured *across* failover targets, and the client's total retry
  budget is capped by a deadline.

Chaos: :func:`run_fleet_chaos` is the acceptance harness behind
``python -m repro chaos --fleet``.  Under a seeded plan
(:func:`repro.runner.faults.default_fleet_chaos_plan`) it drives
zipf-distributed load while ``kill -9``-ing one worker mid-flight
(``worker.kill``) and SIGSTOP-wedging another (``worker.wedge``), then
asserts the headline invariant: **zero failed client requests,
byte-identical results vs the fault-free run, and a restarted healthy
fleet.**

Everything is counted under ``fleet.*`` (spawns, restarts, probe
failures, breaker transitions, router failovers) so ``repro stats``
and the ``/metrics`` of the supervising process tell the story.
"""

from __future__ import annotations

import bisect
import hashlib
import http.client
import json
import logging
import multiprocessing
import os
import random
import signal
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs import Recorder, get_recorder, set_recorder
from repro.runner import backoff_delay
from repro.runner.faults import get_fault_plan, set_fault_plan
from repro.service.broker import BrokerConfig
from repro.service.client import (
    RequestFailed,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "FleetClient",
    "FleetConfig",
    "FleetSupervisor",
    "HashRing",
    "WorkerHandle",
    "run_fleet_chaos",
]

_log = logging.getLogger(__name__)

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed → open → half-open availability gate for one worker.

    * **closed**: requests flow; ``failure_threshold`` *consecutive*
      failures trip it open.
    * **open**: :meth:`allow` refuses everything until
      ``recovery_time`` has passed, then flips to half-open.
    * **half-open**: one probe request is let through; success closes
      the breaker (counters reset), failure re-opens it for another
      full ``recovery_time``.

    Time is injectable (``clock``) so the state machine is property-
    testable without sleeping; all transitions are counted under
    ``fleet.breaker.*``.  Thread-safe — the supervisor's probe thread
    and any number of router threads feed the same breaker.
    """

    def __init__(self, failure_threshold: int = 3,
                 recovery_time: float = 1.0, clock=None):
        self.failure_threshold = max(1, failure_threshold)
        self.recovery_time = recovery_time
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """The current state (resolving an elapsed open → half-open)."""
        with self._lock:
            self._tick()
            return self._state

    def allow(self) -> bool:
        """May a request go to this worker right now?"""
        with self._lock:
            self._tick()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_HALF_OPEN and not self._probing:
                # Exactly one in-flight probe owns the half-open slot.
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._tick()
            if self._state != BREAKER_CLOSED:
                self._transition(BREAKER_CLOSED)
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._tick()
            if self._state == BREAKER_HALF_OPEN:
                # The recovery probe failed: straight back to open.
                self._transition(BREAKER_OPEN)
                self._opened_at = self._clock()
                self._probing = False
                return
            self._failures += 1
            if (self._state == BREAKER_CLOSED
                    and self._failures >= self.failure_threshold):
                self._transition(BREAKER_OPEN)
                self._opened_at = self._clock()

    def _tick(self) -> None:
        if (self._state == BREAKER_OPEN
                and self._clock() - self._opened_at >= self.recovery_time):
            self._transition(BREAKER_HALF_OPEN)
            self._probing = False

    def _transition(self, state: str) -> None:
        if state != self._state:
            get_recorder().count(f"fleet.breaker.{state}", 1)
            self._state = state


class HashRing:
    """Consistent-hash ring over worker ids.

    ``replicas`` virtual nodes per worker smooth the key distribution;
    :meth:`preference_order` walks the ring from a key's position and
    returns every worker exactly once — position 0 is the owner, the
    rest are the deterministic failover order (so retries of one key
    always land on the same sibling, preserving *its* coalescing too).
    """

    def __init__(self, worker_ids, replicas: int = 64):
        self._ring: list[tuple[int, int]] = []
        for worker_id in worker_ids:
            for replica in range(replicas):
                point = self._hash(f"{worker_id}:{replica}")
                self._ring.append((point, worker_id))
        self._ring.sort()
        self._points = [point for point, __ in self._ring]
        self._workers = list(worker_ids)

    @staticmethod
    def _hash(text: str) -> int:
        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def owner(self, key: str) -> int:
        return self.preference_order(key)[0]

    def preference_order(self, key: str) -> list[int]:
        if not self._ring:
            raise ValueError("empty hash ring")
        start = bisect.bisect_left(self._points, self._hash(key))
        order: list[int] = []
        for offset in range(len(self._ring)):
            __, worker_id = self._ring[(start + offset) % len(self._ring)]
            if worker_id not in order:
                order.append(worker_id)
                if len(order) == len(self._workers):
                    break
        return order


@dataclass
class FleetConfig:
    """Tuning knobs of one :class:`FleetSupervisor`.

    Attributes:
        workers: worker serve processes to run.
        host: bind address for every worker.
        probe_interval: seconds between ``/healthz`` probe rounds.
        probe_timeout: per-probe socket timeout — a wedged (SIGSTOPped,
            deadlocked) worker fails probes only by timing out, so this
            bounds wedge detection latency.
        wedge_threshold: consecutive failed probes before a live-but-
            unresponsive worker is declared wedged and restarted.
        breaker_failures / breaker_recovery: per-worker
            :class:`CircuitBreaker` parameters.
        restart_backoff_base / restart_backoff_cap: parameters of
            :func:`repro.runner.backoff_delay` between restarts of the
            same worker (the streak resets once it passes a probe).
        drain_timeout: seconds each worker gets to drain on SIGTERM
            before escalating to SIGKILL during :meth:`stop`.
        log_path: supervisor event log (one timestamped line per
            spawn/probe-failure/restart/drain) — the CI artifact.
    """

    workers: int = 2
    host: str = "127.0.0.1"
    probe_interval: float = 0.25
    probe_timeout: float = 1.0
    wedge_threshold: int = 3
    breaker_failures: int = 3
    breaker_recovery: float = 1.0
    restart_backoff_base: float = 0.1
    restart_backoff_cap: float = 2.0
    drain_timeout: float = 30.0
    log_path: str | None = None


@dataclass
class WorkerHandle:
    """One supervised serve process and its availability state."""

    worker_id: int
    host: str
    port: int
    process: object = None
    breaker: CircuitBreaker = None
    restarts: int = 0
    probe_failures: int = 0        #: consecutive, resets on success
    restart_at: float = 0.0        #: backoff gate for the next spawn
    not_before: float = 0.0        #: Retry-After bench (router-side)
    state: str = "down"            #: down | up | restarting | stopped

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


def _free_port(host: str) -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _worker_main(host: str, port: int, cache_root, broker_config,
                 plan) -> None:
    """Entry point of one worker process: serve until SIGTERM."""
    from repro.runner.cache import ResultStore
    from repro.runner.tracestore import TraceStore
    from repro.service.server import run_server

    if plan is not None:
        set_fault_plan(plan)
    store = trace_store = None
    if cache_root is not None:
        store = ResultStore(cache_root)
        trace_store = TraceStore(cache_root)
    raise SystemExit(run_server(host=host, port=port,
                                broker_config=broker_config,
                                store=store, trace_store=trace_store))


class FleetSupervisor:
    """Spawn, probe, restart and drain N worker serve processes.

    ::

        fleet = FleetSupervisor(FleetConfig(workers=3),
                                cache_root=cache_dir)
        fleet.start()
        client = FleetClient(fleet)
        ...
        fleet.stop()        # rolling SIGTERM drain

    The supervisor never routes requests itself — that is
    :class:`FleetClient` — it owns process lifecycle only: spawn,
    ``/healthz`` probing, wedge detection (probe timeouts), and
    restart with exponential backoff + jitter.  Workers share the
    content-addressed stores under ``cache_root``, so a restarted
    worker serves its predecessor's cached results immediately.
    """

    def __init__(self, config: FleetConfig | None = None,
                 cache_root: str | Path | None = None,
                 broker_config: BrokerConfig | None = None,
                 rng: random.Random | None = None):
        self.config = config or FleetConfig()
        self.cache_root = (str(cache_root)
                           if cache_root is not None else None)
        self.broker_config = broker_config or BrokerConfig(jobs=1)
        self._rng = rng or random.Random()
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0])
        self.workers: dict[int, WorkerHandle] = {}
        self.ring: HashRing | None = None
        self._monitor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._log_fh = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "FleetSupervisor":
        if self.config.log_path:
            Path(self.config.log_path).parent.mkdir(parents=True,
                                                    exist_ok=True)
            self._log_fh = open(self.config.log_path, "a")
        for worker_id in range(self.config.workers):
            handle = WorkerHandle(
                worker_id=worker_id,
                host=self.config.host,
                port=_free_port(self.config.host),
                breaker=CircuitBreaker(
                    failure_threshold=self.config.breaker_failures,
                    recovery_time=self.config.breaker_recovery,
                ),
            )
            self.workers[worker_id] = handle
            self._spawn(handle)
        self.ring = HashRing(sorted(self.workers))
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="fleet-monitor",
                                         daemon=True)
        self._monitor.start()
        return self

    def stop(self) -> None:
        """Rolling SIGTERM drain, one worker at a time, then SIGKILL
        stragglers.  The rest of the fleet keeps serving while each
        worker drains — zero-downtime shutdown."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
            self._monitor = None
        for handle in self.workers.values():
            self._drain_worker(handle)
        self._event("fleet stopped")
        if self._log_fh is not None:
            self._log_fh.close()
            self._log_fh = None

    def _drain_worker(self, handle: WorkerHandle) -> None:
        process = handle.process
        handle.state = "stopped"
        if process is None or not process.is_alive():
            return
        self._event(f"worker {handle.worker_id}: draining (SIGTERM)")
        try:
            # SIGCONT first: a SIGSTOPped (wedged) worker cannot act
            # on the drain signal; a running one ignores the CONT.
            os.kill(process.pid, signal.SIGCONT)
            os.kill(process.pid, signal.SIGTERM)
        except (OSError, TypeError):
            pass
        process.join(timeout=self.config.drain_timeout)
        if process.is_alive():
            self._event(f"worker {handle.worker_id}: drain timed out; "
                        f"SIGKILL")
            get_recorder().count("fleet.drain_kills", 1)
            process.kill()
            process.join(timeout=5)
        else:
            self._event(f"worker {handle.worker_id}: drained cleanly")

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Spawning / restarting.
    # ------------------------------------------------------------------

    def _spawn(self, handle: WorkerHandle) -> None:
        process = self._ctx.Process(
            target=_worker_main,
            args=(handle.host, handle.port, self.cache_root,
                  self.broker_config, get_fault_plan()),
            name=f"repro-fleet-worker-{handle.worker_id}",
            daemon=True,
        )
        process.start()
        handle.process = process
        handle.state = "up"
        handle.probe_failures = 0
        get_recorder().count("fleet.spawns", 1)
        self._event(f"worker {handle.worker_id}: spawned pid "
                    f"{process.pid} on {handle.host}:{handle.port}")

    def _schedule_restart(self, handle: WorkerHandle,
                          reason: str) -> None:
        """Kill what is left of the worker and gate its respawn behind
        exponential backoff + jitter."""
        process = handle.process
        if process is not None and process.is_alive():
            process.kill()          # SIGKILL: it is dead or wedged
            process.join(timeout=5)
        handle.restarts += 1
        delay = backoff_delay(handle.restarts,
                              self.config.restart_backoff_base,
                              self.config.restart_backoff_cap,
                              self._rng)
        handle.restart_at = time.monotonic() + delay
        handle.state = "restarting"
        handle.breaker.record_failure()
        get_recorder().count("fleet.restarts", 1)
        self._event(f"worker {handle.worker_id}: {reason}; restart "
                    f"#{handle.restarts} in {delay:.2f}s (backoff)")

    # ------------------------------------------------------------------
    # Monitoring.
    # ------------------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.config.probe_interval):
            for handle in list(self.workers.values()):
                if self._stopping.is_set():
                    return
                try:
                    self._check(handle)
                except Exception:   # noqa: BLE001 — monitor never dies
                    _log.exception("fleet: monitor error on worker %d",
                                   handle.worker_id)

    def _check(self, handle: WorkerHandle) -> None:
        if handle.state == "restarting":
            if time.monotonic() >= handle.restart_at:
                self._spawn(handle)
            return
        if not handle.alive():
            self._schedule_restart(handle, "process died "
                                   f"(exit {handle.process.exitcode})")
            return
        if self._probe(handle):
            if handle.probe_failures:
                self._event(f"worker {handle.worker_id}: healthy again "
                            f"after {handle.probe_failures} failed "
                            f"probe(s)")
            handle.probe_failures = 0
            handle.restarts = 0      # a healthy pass resets the streak
            handle.breaker.record_success()
            return
        handle.probe_failures += 1
        handle.breaker.record_failure()
        get_recorder().count("fleet.probe_failures", 1)
        self._event(f"worker {handle.worker_id}: probe failed "
                    f"({handle.probe_failures}/"
                    f"{self.config.wedge_threshold})")
        if handle.probe_failures >= self.config.wedge_threshold:
            self._schedule_restart(handle, "wedged (probe timeouts)")

    def _probe(self, handle: WorkerHandle) -> bool:
        conn = http.client.HTTPConnection(
            handle.host, handle.port, timeout=self.config.probe_timeout)
        try:
            conn.request("GET", "/healthz",
                         headers={"Connection": "close"})
            response = conn.getresponse()
            response.read()
            return response.status == 200
        except (OSError, http.client.HTTPException):
            return False
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def healthy(self) -> bool:
        """True when every worker is up with a closed breaker."""
        return all(handle.state == "up" and handle.alive()
                   and handle.breaker.state == BREAKER_CLOSED
                   for handle in self.workers.values())

    def wait_healthy(self, timeout: float = 30.0) -> bool:
        """Block until :meth:`healthy` (or ``timeout``); returns it."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.healthy():
                return True
            time.sleep(0.05)
        return self.healthy()

    def stats(self) -> dict:
        """Per-worker availability snapshot (breaker state included)."""
        return {
            "workers": {
                str(worker_id): {
                    "port": handle.port,
                    "state": handle.state,
                    "alive": handle.alive(),
                    "breaker": handle.breaker.state,
                    "restarts": handle.restarts,
                    "probe_failures": handle.probe_failures,
                }
                for worker_id, handle in self.workers.items()
            },
            "healthy": self.healthy(),
        }

    def _event(self, message: str) -> None:
        _log.info("fleet: %s", message)
        if self._log_fh is not None:
            with self._lock:
                self._log_fh.write(f"{time.strftime('%H:%M:%S')} "
                                   f"{message}\n")
                self._log_fh.flush()


class FleetClient:
    """Consistent-hash router with breaker-aware failover.

    Routes each request to the ring owner of its *request key* (the
    sha256 of the canonical ``(workload, config)`` JSON — a stable
    stand-in for the runner's job key that needs no compilation), so
    identical requests keep hitting the same worker and coalesce in
    its broker.  On breaker-open, transport failure or retry
    exhaustion the next worker on the ring gets the request; a worker
    that answered 429 with ``Retry-After`` is benched for that long
    (the hint survives failover instead of dying with the target that
    sent it).  ``deadline`` caps the whole routed request — failovers,
    benches and sleeps included.
    """

    def __init__(self, fleet: FleetSupervisor, timeout: float = 60.0,
                 retries_per_worker: int = 1, deadline: float = 120.0,
                 tenant: str | None = None,
                 rng: random.Random | None = None):
        self.fleet = fleet
        self.timeout = timeout
        self.retries_per_worker = retries_per_worker
        self.deadline = deadline
        #: Tenant identity, forwarded on every routed request.  Quota
        #: *state* is per-worker (each broker keeps its own buckets);
        #: the QoS policy *file* is fleet-wide via the shared
        #: BrokerConfig, so a failover lands under the same rules on
        #: the sibling — including any per-tenant Retry-After bench.
        self.tenant = tenant
        self._rng = rng or random.Random()

    # ------------------------------------------------------------------

    @staticmethod
    def request_key(workload: str, config: dict | None) -> str:
        canonical = json.dumps({"workload": workload,
                                "config": config or {}},
                               sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def analyze(self, workload: str,
                config: dict | None = None) -> dict:
        """Routed ``POST /v1/analyze`` with failover.  Raises
        :class:`ServiceUnavailable` only once every worker has been
        exhausted within the deadline."""
        key = self.request_key(workload, config)
        order = self.fleet.ring.preference_order(key)
        started = time.monotonic()
        get_recorder().count("fleet.router.requests", 1)
        last: ServiceUnavailable | None = None
        attempt = 0
        while time.monotonic() - started < self.deadline:
            attempt += 1
            routed = False
            for worker_id in order:
                handle = self.fleet.workers[worker_id]
                now = time.monotonic()
                if now < handle.not_before:
                    get_recorder().count("fleet.router.benched", 1)
                    continue
                if not handle.breaker.allow():
                    get_recorder().count("fleet.router.skipped", 1)
                    continue
                routed = True
                remaining = self.deadline - (now - started)
                client = ServiceClient(
                    host=handle.host, port=handle.port,
                    timeout=min(self.timeout, max(0.1, remaining)),
                    retries=self.retries_per_worker,
                    deadline=max(0.1, remaining),
                    tenant=self.tenant,
                    rng=self._rng,
                )
                try:
                    payload = client.analyze(workload, config)
                except ServiceUnavailable as error:
                    last = error
                    handle.breaker.record_failure()
                    if error.retry_after > 0:
                        # Honour the shed hint across failover: bench
                        # this worker, try the sibling right away.
                        handle.not_before = (time.monotonic()
                                             + error.retry_after)
                    get_recorder().count("fleet.router.failovers", 1)
                    _log.debug("fleet: worker %d failed (%s); failing "
                               "over", worker_id, error)
                    continue
                except RequestFailed:
                    # The request itself is wrong (4xx): the worker is
                    # fine, and no sibling will answer differently.
                    handle.breaker.record_success()
                    raise
                handle.breaker.record_success()
                if worker_id != order[0]:
                    get_recorder().count("fleet.router.failover_hits", 1)
                return payload
            if not routed:
                # Everything benched or breaker-open: wait for the
                # soonest gate to lift (bounded by the deadline).
                gates = [handle.not_before
                         for handle in self.fleet.workers.values()]
                wait = min(0.25, max(0.01, min(gates)
                                     - time.monotonic()))
                time.sleep(wait)
        raise ServiceUnavailable(
            f"fleet: analyze({workload!r}) failed after {attempt} "
            f"round(s) within the {self.deadline:.1f}s deadline",
            last_error=last,
            retry_after=last.retry_after if last is not None else 0.0,
        )


# ----------------------------------------------------------------------
# Chaos acceptance harness (python -m repro chaos --fleet).
# ----------------------------------------------------------------------

def _zipf_indices(count: int, n: int, rng: random.Random,
                  exponent: float = 1.2) -> list[int]:
    """``count`` indices in ``[0, n)`` under a zipf-ish distribution."""
    weights = [1.0 / ((rank + 1) ** exponent) for rank in range(n)]
    total = sum(weights)
    cumulative, acc = [], 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    picks = []
    for __ in range(count):
        draw = rng.random()
        picks.append(bisect.bisect_left(cumulative, draw))
    return picks


def run_fleet_chaos(seed: int = 0, workloads=("com", "go"),
                    max_instructions: int = 5_000, requests: int = 24,
                    workers: int = 2, threads: int = 4,
                    cache_root: str | Path | None = None,
                    log_path: str | Path | None = None,
                    plan=None) -> dict:
    """Drive the fleet through the seeded kill/wedge plan; report.

    The invariant under test (the PR's headline acceptance): with
    ``worker.kill`` firing at least once under concurrent zipf load,
    **zero client-visible request failures**, results byte-identical
    to a fault-free run, and a fleet that returns to healthy.  Returns
    a report dict with ``ok`` plus per-invariant booleans — the CLI
    turns it into exit codes and prose.
    """
    import tempfile

    from repro.core.export import result_to_dict
    from repro.runner.api import ExperimentRunner
    from repro.runner.cache import ResultStore
    from repro.runner.faults import default_fleet_chaos_plan
    from repro.runner.job import ExperimentConfig
    from repro.runner.tracestore import TraceStore

    rng = random.Random(seed)
    plan = plan or default_fleet_chaos_plan(seed)
    distinct = [(name, {"max_instructions": max_instructions})
                for name in workloads]

    # Fault-free baseline through the plain runner (the same compute
    # path the brokers use), canonical JSON per distinct request.
    with tempfile.TemporaryDirectory(prefix="repro-fleet-base-") as base:
        runner = ExperimentRunner(store=ResultStore(base),
                                  trace_store=TraceStore(base))
        config = ExperimentConfig(workloads=tuple(workloads),
                                  max_instructions=max_instructions)
        run = runner.run(config)
        if run.failures:
            raise RuntimeError(f"fault-free baseline failed: "
                               f"{run.failures}")
        baseline = {
            name: json.dumps(result_to_dict(result), sort_keys=True)
            for name, result in run.results.items()
        }

    owns_root = cache_root is None
    if owns_root:
        cache_root = tempfile.mkdtemp(prefix="repro-fleet-chaos-")
    report: dict = {"seed": seed, "requests": requests,
                    "workers": workers}
    restore_recorder = None
    if not get_recorder().enabled:
        # The fleet.* counters tell the story; make sure they exist.
        restore_recorder = set_recorder(Recorder())
    previous_plan = set_fault_plan(plan)
    fleet = FleetSupervisor(
        FleetConfig(workers=workers,
                    log_path=str(log_path) if log_path else None),
        cache_root=cache_root,
    )
    failures: list[str] = []
    mismatches: list[str] = []
    kills = wedges = 0
    wedged_pids: list[tuple[int, int]] = []
    try:
        fleet.start()
        fleet.wait_healthy(timeout=30)
        # A modest per-attempt timeout: a SIGSTOP-wedged worker holds
        # its connections until the supervisor SIGKILLs it (probe
        # timeouts), which resets them — the client never waits the
        # full timeout in practice.
        client = FleetClient(fleet, timeout=15.0, deadline=90.0)
        picks = _zipf_indices(requests, len(distinct), rng)
        lock = threading.Lock()

        def one_request(index: int) -> None:
            name, config = distinct[index]
            try:
                payload = client.analyze(name, config)
            except ServiceError as error:
                with lock:
                    failures.append(f"{name}: {error}")
                return
            text = json.dumps(payload["result"], sort_keys=True)
            if text != baseline[name]:
                with lock:
                    mismatches.append(name)

        inflight: list[threading.Thread] = []
        for tick, index in enumerate(picks, start=1):
            # The chaos driver owns the worker-level sites: kill -9
            # the owner of the in-flight key, SIGSTOP-wedge a sibling.
            name, config = distinct[index]
            key = FleetClient.request_key(name, config)
            if plan.should_fire("worker.kill"):
                victim = fleet.workers[fleet.ring.owner(key)]
                if victim.alive():
                    kills += 1
                    os.kill(victim.process.pid, signal.SIGKILL)
                    fleet._event(f"chaos: SIGKILL worker "
                                 f"{victim.worker_id} (tick {tick})")
            if plan.should_fire("worker.wedge"):
                order = fleet.ring.preference_order(key)
                victim = fleet.workers[order[-1]]
                if victim.alive():
                    wedges += 1
                    os.kill(victim.process.pid, signal.SIGSTOP)
                    wedged_pids.append((victim.worker_id,
                                        victim.process.pid))
                    fleet._event(f"chaos: SIGSTOP worker "
                                 f"{victim.worker_id} (tick {tick})")
            thread = threading.Thread(target=one_request,
                                      args=(index,), daemon=True)
            thread.start()
            inflight.append(thread)
            while sum(1 for t in inflight if t.is_alive()) >= threads:
                time.sleep(0.01)
        for thread in inflight:
            thread.join(timeout=120)

        # A freshly-SIGSTOPped worker still *looks* healthy (alive,
        # breaker closed) until enough probes time out — wait for the
        # supervisor to actually detect and replace each wedged pid so
        # "recovered" certifies the full wedge→restart cycle.
        deadline = time.monotonic() + 60
        for worker_id, pid in wedged_pids:
            while (fleet.workers[worker_id].process is not None
                   and fleet.workers[worker_id].process.pid == pid
                   and time.monotonic() < deadline):
                time.sleep(0.05)
        recovered = fleet.wait_healthy(timeout=60)
        snapshot = get_recorder().snapshot()
        counters = snapshot.get("counters", {}) if snapshot else {}
        report.update({
            "failed_requests": len(failures),
            "failures": failures[:5],
            "mismatches": sorted(set(mismatches)),
            "kills": kills,
            "wedges": wedges,
            "restarts": int(counters.get("fleet.restarts", 0)),
            "failovers": int(counters.get("fleet.router.failovers", 0)),
            "recovered": recovered,
            "fleet": fleet.stats(),
            "fired": dict(plan.fired),
        })
    finally:
        try:
            fleet.stop()
        finally:
            set_fault_plan(previous_plan)
            if restore_recorder is not None:
                set_recorder(restore_recorder)
            if owns_root:
                import shutil
                shutil.rmtree(cache_root, ignore_errors=True)

    report["ok"] = (
        not failures
        and not mismatches
        and kills >= 1
        and report["recovered"]
    )
    return report
