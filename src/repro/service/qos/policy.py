"""The QoS policy file: classes, weights, quotas — operator-only.

A :class:`QosPolicy` plays the same role for the service's *sharing*
behaviour that :class:`repro.runner.ExecutionPolicy` plays for its
*execution* behaviour: a frozen, validated bundle of knobs the
operator sets (``repro serve --qos policy.toml``) and clients can
never touch — :mod:`repro.service.protocol` rejects QoS keys in
request bodies at the trust boundary, and the policy is excluded from
job identity (two tenants requesting the same job share one cached
result).

The file is TOML (via :mod:`tomllib`; gated so 3.10 still imports
this module) or JSON::

    default_class = "batch"          # class for unlisted tenants
    batch_max = 8                    # cap jobs per dispatched batch

    [classes.interactive]
    weight = 8                       # deficit-round-robin weight
    [classes.batch]
    weight = 4
    [classes.background]
    weight = 1

    [defaults]                       # quota for unlisted tenants
    rate = 5.0                       # tokens (requests) per second
    burst = 10                       # bucket size
    max_inflight = 8                 # owned cold jobs in flight

    [tenants.alice]
    class = "interactive"
    rate = 20.0
    burst = 40
    max_inflight = 16

Every quota knob is optional; ``None`` means unlimited, so an empty
policy (or no ``--qos`` flag at all) reproduces the tenant-blind
pre-QoS behaviour exactly.  The three priority classes are fixed —
``interactive`` / ``batch`` / ``background`` — only their weights are
configurable, which keeps the fairness story auditable
(docs/qos.md).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10
    tomllib = None

__all__ = [
    "CLASSES",
    "ClassSpec",
    "QosError",
    "QosPolicy",
    "TenantSpec",
    "load_qos_policy",
    "qos_policy_from_dict",
]

#: The fixed priority classes, highest-priority first.
CLASSES = ("interactive", "batch", "background")

_DEFAULT_WEIGHTS = {"interactive": 8, "batch": 4, "background": 1}


class QosError(ValueError):
    """A QoS policy that fails validation (message names the knob)."""


@dataclass(frozen=True)
class ClassSpec:
    """One priority class: a name and its scheduling weight."""

    name: str
    weight: int

    def __post_init__(self):
        if self.name not in CLASSES:
            known = ", ".join(CLASSES)
            raise QosError(
                f"unknown priority class {self.name!r} (classes are "
                f"fixed: {known})"
            )
        if not isinstance(self.weight, int) or isinstance(self.weight, bool) \
                or self.weight < 1:
            raise QosError(
                f"class {self.name!r} weight must be a positive "
                f"integer, got {self.weight!r}"
            )


@dataclass(frozen=True)
class TenantSpec:
    """Per-tenant knobs; ``None`` inherits the policy defaults.

    Attributes:
        klass: priority class (``class`` in the file).
        rate: token-bucket refill in requests/second (None = unlimited).
        burst: token-bucket capacity (None = derived from ``rate``).
        max_inflight: owned cold jobs in flight (None = unlimited).
    """

    klass: str | None = None
    rate: float | None = None
    burst: int | None = None
    max_inflight: int | None = None

    def __post_init__(self):
        if self.klass is not None and self.klass not in CLASSES:
            known = ", ".join(CLASSES)
            raise QosError(
                f"unknown priority class {self.klass!r} (classes are "
                f"fixed: {known})"
            )
        if self.rate is not None:
            if isinstance(self.rate, bool) \
                    or not isinstance(self.rate, (int, float)) \
                    or self.rate <= 0:
                raise QosError(
                    f"'rate' must be a positive number, got {self.rate!r}"
                )
        if self.burst is not None:
            if isinstance(self.burst, bool) \
                    or not isinstance(self.burst, int) or self.burst < 1:
                raise QosError(
                    f"'burst' must be a positive integer, got "
                    f"{self.burst!r}"
                )
        if self.max_inflight is not None:
            if isinstance(self.max_inflight, bool) \
                    or not isinstance(self.max_inflight, int) \
                    or self.max_inflight < 1:
                raise QosError(
                    f"'max_inflight' must be a positive integer, got "
                    f"{self.max_inflight!r}"
                )

    def to_dict(self) -> dict:
        payload = {}
        if self.klass is not None:
            payload["class"] = self.klass
        for name in ("rate", "burst", "max_inflight"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        return payload


@dataclass(frozen=True)
class QosPolicy:
    """The validated QoS policy one broker runs under.

    Picklable on purpose: ``serve --fleet N`` ships one policy to
    every worker (the *file* is shared; the quota *state* each worker
    keeps is its own — see docs/qos.md).
    """

    classes: tuple[ClassSpec, ...] = tuple(
        ClassSpec(name, _DEFAULT_WEIGHTS[name]) for name in CLASSES
    )
    default_class: str = "batch"
    defaults: TenantSpec = field(default_factory=TenantSpec)
    tenants: tuple[tuple[str, TenantSpec], ...] = ()
    batch_max: int | None = None

    def __post_init__(self):
        names = [spec.name for spec in self.classes]
        if sorted(names) != sorted(set(names)):
            raise QosError("duplicate priority class in policy")
        if self.default_class not in names:
            raise QosError(
                f"default_class {self.default_class!r} is not a "
                f"configured class"
            )
        if self.batch_max is not None:
            if isinstance(self.batch_max, bool) \
                    or not isinstance(self.batch_max, int) \
                    or self.batch_max < 1:
                raise QosError(
                    f"'batch_max' must be a positive integer, got "
                    f"{self.batch_max!r}"
                )
        seen = set()
        for name, __ in self.tenants:
            if name in seen:
                raise QosError(f"duplicate tenant {name!r} in policy")
            seen.add(name)

    # ------------------------------------------------------------------
    # Resolution.
    # ------------------------------------------------------------------

    def class_weights(self) -> dict[str, int]:
        """``{class name: weight}`` in priority order."""
        weights = {spec.name: spec.weight for spec in self.classes}
        return {name: weights[name] for name in CLASSES if name in weights}

    def spec_for(self, tenant_name: str) -> TenantSpec:
        """The fully-resolved spec for one tenant.

        Per-tenant knobs win; unset ones inherit the ``[defaults]``
        table; a still-unset ``burst`` derives from ``rate`` (one
        second of refill, at least 1) so a rate alone is a complete
        quota.
        """
        own = dict(self.tenants).get(tenant_name, TenantSpec())
        klass = own.klass or self.defaults.klass or self.default_class
        rate = own.rate if own.rate is not None else self.defaults.rate
        burst = own.burst if own.burst is not None else self.defaults.burst
        if burst is None and rate is not None:
            burst = max(1, math.ceil(rate))
        max_inflight = (own.max_inflight if own.max_inflight is not None
                        else self.defaults.max_inflight)
        return TenantSpec(klass=klass, rate=rate, burst=burst,
                          max_inflight=max_inflight)

    def describe(self) -> dict:
        """JSON-safe summary (the ``/readyz`` body, the serve banner)."""
        return {
            "classes": {spec.name: spec.weight for spec in self.classes},
            "default_class": self.default_class,
            "defaults": self.defaults.to_dict(),
            "tenants": {name: spec.to_dict()
                        for name, spec in self.tenants},
            "batch_max": self.batch_max,
        }


# ----------------------------------------------------------------------
# Parsing.
# ----------------------------------------------------------------------

def _tenant_spec_from_dict(owner: str, data) -> TenantSpec:
    if not isinstance(data, dict):
        raise QosError(f"{owner} must be a table/object")
    unknown = set(data) - {"class", "rate", "burst", "max_inflight"}
    if unknown:
        raise QosError(
            f"unknown key(s) in {owner}: {', '.join(sorted(unknown))}"
        )
    rate = data.get("rate")
    if isinstance(rate, int) and not isinstance(rate, bool):
        rate = float(rate)
    return TenantSpec(
        klass=data.get("class"),
        rate=rate,
        burst=data.get("burst"),
        max_inflight=data.get("max_inflight"),
    )


def qos_policy_from_dict(data) -> QosPolicy:
    """Build a :class:`QosPolicy` from a decoded TOML/JSON document.

    Unknown keys are an error at every level — a typoed quota knob
    silently granting unlimited access is worse than a load failure.
    """
    if not isinstance(data, dict):
        raise QosError("QoS policy must be a table/object at top level")
    unknown = set(data) - {"classes", "default_class", "defaults",
                           "tenants", "batch_max"}
    if unknown:
        raise QosError(
            f"unknown top-level key(s): {', '.join(sorted(unknown))}"
        )
    weights = dict(_DEFAULT_WEIGHTS)
    classes_data = data.get("classes", {})
    if not isinstance(classes_data, dict):
        raise QosError("'classes' must be a table of {class: {weight}}")
    for name, spec in classes_data.items():
        if not isinstance(spec, dict) or set(spec) - {"weight"}:
            raise QosError(
                f"class {name!r} accepts exactly one key: 'weight'"
            )
        if name not in weights:
            known = ", ".join(CLASSES)
            raise QosError(
                f"unknown priority class {name!r} (classes are "
                f"fixed: {known})"
            )
        weights[name] = spec.get("weight")
    tenants_data = data.get("tenants", {})
    if not isinstance(tenants_data, dict):
        raise QosError("'tenants' must be a table of per-tenant specs")
    tenants = tuple(
        (name, _tenant_spec_from_dict(f"tenant {name!r}", spec))
        for name, spec in sorted(tenants_data.items())
    )
    return QosPolicy(
        classes=tuple(ClassSpec(name, weights[name]) for name in CLASSES),
        default_class=data.get("default_class", "batch"),
        defaults=_tenant_spec_from_dict(
            "'defaults'", data.get("defaults", {})
        ),
        tenants=tenants,
        batch_max=data.get("batch_max"),
    )


def load_qos_policy(path: str | Path) -> QosPolicy:
    """Load a policy file (``.toml`` or ``.json``) and validate it."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise QosError(f"cannot read QoS policy {path}: {error}") from None
    if path.suffix.lower() == ".toml":
        if tomllib is None:  # pragma: no cover - Python 3.10
            raise QosError(
                f"{path}: TOML policies need Python 3.11+ (no tomllib); "
                f"use the JSON form instead"
            )
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise QosError(f"{path}: invalid TOML: {error}") from None
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise QosError(f"{path}: invalid JSON: {error}") from None
    try:
        return qos_policy_from_dict(data)
    except QosError as error:
        raise QosError(f"{path}: {error}") from None
