"""Per-tenant bottleneck attribution: where did the latency go?

The paper treats predictability as a measurable, decomposable
property of a workload; the QoS layer applies the same stance to
service latency — every tenant's wall time is decomposed into named
phases so "tenant X is slow" becomes "tenant X spends 70% of its wall
time queued behind batch work".  The phases (:data:`PHASES`):

* ``queue`` — admitted and waiting for dispatch (plus, for coalesced
  requests, waiting on another tenant's identical in-flight job);
* ``simulate`` / ``analyze`` / ``store`` — the batch's recorded spans
  (``simulate*``, ``analyze*``, ``store.*``/``trace.*``), each
  request billed the full batch phase because every batch member
  genuinely waits for the whole batch;
* ``pool`` — batch execution not covered by a recorded span
  (executor hand-off, runner bookkeeping, process-pool overhead).

:class:`TenantAccounting` is the broker-side sink: it keeps an
in-memory rollup (the ``/readyz`` ``qos`` section) and mirrors every
datum into labelled ``qos.*`` counters on the current recorder, which
is what ``/metrics`` exposes and ``repro qos report`` reads back —
from a live server's exposition text or from a metrics/profile JSON
dump (:func:`attribution_from_prometheus` /
:func:`attribution_from_counters`).
"""

from __future__ import annotations

from repro.obs.export import decode_labels, encode_labels, parse_prometheus

__all__ = [
    "PHASES",
    "TenantAccounting",
    "attribution_from_counters",
    "attribution_from_prometheus",
    "phases_from_span",
    "render_attribution",
]

#: The named phases every tenant's wall time decomposes into.
PHASES = ("queue", "pool", "simulate", "analyze", "store")

#: ``/metrics`` family name -> logical counter, for reading a live
#: server's exposition text back into a report.
_PROM_FAMILIES = {
    "repro_qos_requests_total": "qos.requests",
    "repro_qos_served_total": "qos.served",
    "repro_qos_shed_total": "qos.shed",
    "repro_qos_request_seconds_total": "qos.request_seconds",
    "repro_qos_phase_seconds_total": "qos.phase_seconds",
}


def _classify(name: str) -> str | None:
    """Map a span name to its phase (None: keep descending)."""
    if name.startswith(("simulate", "sim.")):
        return "simulate"
    if name.startswith("analyze"):
        return "analyze"
    if name.startswith(("store.", "trace.")):
        return "store"
    return None


def phases_from_span(span, wall: float) -> dict[str, float]:
    """Split one batch's wall seconds into execution phases.

    ``span`` is the batch's ``qos.batch`` :class:`repro.obs.Span` (or
    its dict form; or a null span when observation is off).  The walk
    bills a subtree to the first classified ancestor — ``analyze``
    includes its kernel children, a ``store.trace.get`` includes the
    decode inside it — so nothing is double-counted.  Whatever no
    span explains is the ``pool`` residual.
    """
    phases: dict[str, float] = {}

    def walk(node) -> None:
        if isinstance(node, dict):
            name = node.get("name", "")
            node_wall = node.get("wall", 0.0)
            children = node.get("children", ())
        else:
            name = getattr(node, "name", "")
            node_wall = getattr(node, "wall", 0.0)
            children = getattr(node, "children", ())
        phase = _classify(name)
        if phase is not None:
            phases[phase] = phases.get(phase, 0.0) + node_wall
            return
        for child in children:
            walk(child)

    if isinstance(span, dict):
        top_children = span.get("children", ())
    else:
        top_children = getattr(span, "children", ())
    for child in top_children or ():
        walk(child)
    explained = sum(phases.values())
    phases["pool"] = max(0.0, wall - explained)
    return phases


class TenantAccounting:
    """The broker's per-tenant rollup plus labelled-counter mirror.

    Runs on the event-loop thread only (like the queue it annotates);
    the recorder it mirrors into is itself thread-safe.
    """

    def __init__(self):
        self._tenants: dict[str, dict] = {}

    def _bucket(self, tenant: str) -> dict:
        bucket = self._tenants.get(tenant)
        if bucket is None:
            bucket = self._tenants[tenant] = {
                "requests": 0,
                "served": {},
                "shed": {},
                "wall_seconds": 0.0,
                "phases": {},
            }
        return bucket

    def record(self, tenant: str, status: str, wall: float,
               phases: dict[str, float], recorder) -> None:
        """Bill one answered request: status, wall time, phase split."""
        bucket = self._bucket(tenant)
        bucket["requests"] += 1
        bucket["served"][status] = bucket["served"].get(status, 0) + 1
        bucket["wall_seconds"] += wall
        recorder.count("qos.requests", 1, labels={"tenant": tenant})
        recorder.count("qos.served", 1,
                       labels={"tenant": tenant, "status": status})
        recorder.count("qos.request_seconds", wall,
                       labels={"tenant": tenant})
        for phase, seconds in phases.items():
            if seconds <= 0.0:
                continue
            bucket["phases"][phase] = (
                bucket["phases"].get(phase, 0.0) + seconds
            )
            recorder.count("qos.phase_seconds", seconds,
                           labels={"tenant": tenant, "phase": phase})

    def record_shed(self, tenant: str, reason: str, recorder) -> None:
        """Bill one refused request (``rate``/``inflight``/``backpressure``)."""
        bucket = self._bucket(tenant)
        bucket["shed"][reason] = bucket["shed"].get(reason, 0) + 1
        recorder.count("qos.shed", 1,
                       labels={"tenant": tenant, "reason": reason})

    def snapshot(self) -> dict:
        """JSON-safe per-tenant rollup (the ``/readyz`` ``qos`` body)."""
        view = {}
        for tenant, bucket in sorted(self._tenants.items()):
            view[tenant] = {
                "requests": bucket["requests"],
                "served": dict(sorted(bucket["served"].items())),
                "shed": dict(sorted(bucket["shed"].items())),
                "wall_seconds": round(bucket["wall_seconds"], 4),
                "phases": {name: round(seconds, 4)
                           for name, seconds
                           in sorted(bucket["phases"].items())},
            }
        return view


# ----------------------------------------------------------------------
# The report: counters -> per-tenant bottleneck table.
# ----------------------------------------------------------------------

def attribution_from_counters(counters: dict) -> dict:
    """Build the attribution report from a profile's counter dict.

    Accepts any counter mapping that contains the labelled ``qos.*``
    counters (a recorder snapshot, a metrics JSON's profile section);
    everything else is ignored.
    """
    tenants: dict[str, dict] = {}

    def bucket(tenant: str) -> dict:
        return tenants.setdefault(tenant, {
            "requests": 0, "served": {}, "shed": {},
            "wall_seconds": 0.0, "phases": {},
        })

    for name, value in counters.items():
        base, labels = decode_labels(name)
        tenant = labels.get("tenant")
        if tenant is None or not base.startswith("qos."):
            continue
        entry = bucket(tenant)
        if base == "qos.requests":
            entry["requests"] += int(value)
        elif base == "qos.served":
            status = labels.get("status", "?")
            entry["served"][status] = (
                entry["served"].get(status, 0) + int(value)
            )
        elif base == "qos.shed":
            reason = labels.get("reason", "?")
            entry["shed"][reason] = entry["shed"].get(reason, 0) + int(value)
        elif base == "qos.request_seconds":
            entry["wall_seconds"] += float(value)
        elif base == "qos.phase_seconds":
            phase = labels.get("phase", "?")
            entry["phases"][phase] = (
                entry["phases"].get(phase, 0.0) + float(value)
            )
    return _finish(tenants)


def attribution_from_prometheus(text: str) -> dict:
    """Build the report from ``GET /metrics`` exposition text."""
    counters: dict[str, float] = {}
    for family, labels, value in parse_prometheus(text):
        logical = _PROM_FAMILIES.get(family)
        if logical is None:
            continue
        name = encode_labels(logical, labels)
        counters[name] = counters.get(name, 0.0) + value
    return attribution_from_counters(counters)


def _finish(tenants: dict) -> dict:
    for entry in tenants.values():
        attributed = sum(entry["phases"].values())
        wall = entry["wall_seconds"]
        entry["attributed_seconds"] = attributed
        entry["coverage"] = (attributed / wall) if wall > 0 else 1.0
        entry["bottleneck"] = (
            max(entry["phases"], key=entry["phases"].get)
            if entry["phases"] else None
        )
    return {"tenants": dict(sorted(tenants.items()))}


def render_attribution(report: dict) -> str:
    """The human table behind ``python -m repro qos report``."""
    tenants = report.get("tenants", {})
    if not tenants:
        return "(no qos.* counters recorded — is a QoS policy active?)"
    header = (f"{'tenant':<16} {'req':>6} {'shed':>5} {'wall':>9} "
              + "".join(f"{phase + '%':>10}" for phase in PHASES)
              + f" {'cover%':>8}  bottleneck")
    lines = [header, "-" * len(header)]
    for tenant, entry in tenants.items():
        wall = entry["wall_seconds"]
        shed = sum(entry["shed"].values())

        def pct(phase: str) -> str:
            if wall <= 0:
                return f"{'-':>10}"
            return f"{100.0 * entry['phases'].get(phase, 0.0) / wall:>9.1f}%"

        lines.append(
            f"{tenant:<16} {entry['requests']:>6} {shed:>5} "
            f"{wall:>8.2f}s "
            + "".join(pct(phase) for phase in PHASES)
            + f" {100.0 * entry['coverage']:>7.1f}%  "
            + (entry["bottleneck"] or "-")
        )
    return "\n".join(lines)
