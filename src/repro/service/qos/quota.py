"""Per-tenant quota admission: token buckets and in-flight caps.

Quotas are the *first* gate a submission meets — checked before the
broker's global EWMA estimate — so an abusive tenant is shed on its
own budget before it can push the shared queue into global
backpressure.  Two independent limits per tenant, both from the QoS
policy (docs/qos.md):

* **request rate** — a token bucket (``rate`` tokens/second, capacity
  ``burst``); *every* request spends a token, warm hits and coalesced
  joins included, because each one consumes protocol and lookup work
  and "billed to each requester" is the coalescing contract;
* **in-flight cap** — ``max_inflight`` bounds the cold jobs a tenant
  *owns* (queued or executing).  Coalesced joins do not count: they
  add no pool load, and capping them would punish cache-friendly
  traffic.

A refusal raises :exc:`QuotaExceeded` — a subclass of
:exc:`repro.service.errors.Overloaded`, so the server's existing
429 + ``Retry-After`` mapping and the client's retry logic apply
unchanged; the hint is *per-tenant* (the bucket's actual refill
deficit), not the global estimate.

State lives in broker memory, one instance per worker process: in a
fleet the policy *file* is shared but each worker enforces its own
buckets, so a tenant's fleet-wide budget is ``rate x workers`` when
load is spread (consistent-hash routing keeps one job key on one
worker, which keeps the arithmetic honest).  Everything here runs on
the broker's event-loop thread; the injectable ``clock`` makes the
bucket deterministic under test.
"""

from __future__ import annotations

import time

from repro.service.errors import Overloaded
from repro.service.qos.policy import QosPolicy, TenantSpec

__all__ = ["QuotaExceeded", "TenantQuotas", "TokenBucket"]


class QuotaExceeded(Overloaded):
    """A per-tenant quota refusal (HTTP 429, per-tenant Retry-After).

    ``tenant`` names who was shed; ``scope`` is ``"rate"`` or
    ``"inflight"`` — the attribution counters split sheds by it.
    """

    def __init__(self, retry_after: float, reason: str,
                 tenant: str, scope: str):
        super().__init__(retry_after, reason)
        self.tenant = tenant
        self.scope = scope


class TokenBucket:
    """A token bucket: ``rate`` tokens/second up to ``burst``.

    Starts full.  ``clock`` is any monotonic ``() -> float`` — tests
    inject a fake; production uses :func:`time.monotonic`.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock")

    def __init__(self, rate: float, burst: int, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    @property
    def tokens(self) -> float:
        """Current (refilled) token count, without taking any."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(float(self.burst),
                           self._tokens + elapsed * self.rate)

    def try_take(self, n: float = 1.0) -> float:
        """Take ``n`` tokens if available: 0.0 on success, else the
        seconds until ``n`` tokens will have accrued (the per-tenant
        ``Retry-After`` hint) with nothing taken."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate


class TenantQuotas:
    """Quota state for every tenant one broker has seen.

    ``policy=None`` (no ``--qos`` file) disables every limit — the
    pre-QoS behaviour.  Not thread-safe by design: the broker calls
    it from the event loop only.
    """

    def __init__(self, policy: QosPolicy | None = None, clock=None):
        self._policy = policy
        self._clock = clock or time.monotonic
        self._specs: dict[str, TenantSpec] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight: dict[str, int] = {}

    def spec_for(self, tenant: str) -> TenantSpec:
        """The resolved (cached) policy spec for ``tenant``."""
        spec = self._specs.get(tenant)
        if spec is None:
            if self._policy is None:
                spec = TenantSpec(klass="batch")
            else:
                spec = self._policy.spec_for(tenant)
            self._specs[tenant] = spec
        return spec

    def class_for(self, tenant: str) -> str:
        """The scheduling class ``tenant``'s cold jobs queue under."""
        return self.spec_for(tenant).klass or "batch"

    def charge(self, tenant: str) -> None:
        """Spend one rate token; :exc:`QuotaExceeded` when dry."""
        spec = self.spec_for(tenant)
        if spec.rate is None:
            return
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                spec.rate, spec.burst or 1, clock=self._clock
            )
        wait = bucket.try_take()
        if wait > 0.0:
            raise QuotaExceeded(
                wait,
                f"tenant {tenant!r} is over its request rate "
                f"({spec.rate:g}/s, burst {bucket.burst})",
                tenant, "rate",
            )

    def begin(self, tenant: str) -> None:
        """Claim an in-flight slot; :exc:`QuotaExceeded` at the cap.

        Pair every successful call with :meth:`end` (the broker does
        it from the job future's done callback)."""
        spec = self.spec_for(tenant)
        inflight = self._inflight.get(tenant, 0)
        cap = spec.max_inflight
        if cap is not None and inflight >= cap:
            raise QuotaExceeded(
                1.0,
                f"tenant {tenant!r} already has {inflight} job(s) in "
                f"flight (cap {cap})",
                tenant, "inflight",
            )
        self._inflight[tenant] = inflight + 1

    def end(self, tenant: str) -> None:
        """Release an in-flight slot claimed by :meth:`begin`."""
        count = self._inflight.get(tenant, 0)
        if count <= 1:
            self._inflight.pop(tenant, None)
        else:
            self._inflight[tenant] = count - 1

    def snapshot(self) -> dict:
        """JSON-safe view: per-tenant tokens left and jobs in flight."""
        view: dict[str, dict] = {}
        for tenant in sorted(set(self._buckets) | set(self._inflight)):
            entry: dict = {}
            bucket = self._buckets.get(tenant)
            if bucket is not None:
                entry["tokens"] = round(bucket.tokens, 3)
            entry["inflight"] = self._inflight.get(tenant, 0)
            view[tenant] = entry
        return view
