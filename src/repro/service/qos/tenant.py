"""Tenant identity: who a service request is billed to.

A tenant is a short operator-assigned name carried on the
``X-Repro-Tenant`` request header.  It is *identity*, not
*authorization* — the service trusts the header the way it trusts the
request body, and uses it for quota accounting, scheduling class and
attribution, never for access control.

The name grammar is deliberately strict (lowercase alphanumerics plus
``.``, ``_``, ``-``; must start with a letter or digit; at most
:data:`MAX_TENANT_LENGTH` characters) because tenant names become
metric label values, policy-file keys and report rows; a malformed
header is rejected at the trust boundary with a pointed 400 rather
than laundered into the metrics namespace.  Anonymous requests (no
header) are billed to :data:`DEFAULT_TENANT`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "DEFAULT_TENANT",
    "MAX_TENANT_LENGTH",
    "TENANT_HEADER",
    "Tenant",
    "TenantError",
    "parse_tenant",
]

#: The request header a client sets to identify itself.
TENANT_HEADER = "X-Repro-Tenant"

#: Upper bound on a tenant name (label values stay readable).
MAX_TENANT_LENGTH = 32

_TENANT_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")


class TenantError(ValueError):
    """A tenant name that fails validation.

    The message is written for the client (names the rule that was
    broken); :mod:`repro.service.protocol` re-raises it as a
    :exc:`~repro.service.protocol.ProtocolError` → HTTP 400.
    """


@dataclass(frozen=True)
class Tenant:
    """One validated tenant identity."""

    name: str

    def __str__(self) -> str:
        return self.name


#: Where anonymous (headerless) requests are billed.
DEFAULT_TENANT = Tenant("default")


def parse_tenant(value: str | None) -> Tenant:
    """Validate a raw ``X-Repro-Tenant`` header value.

    ``None`` (header absent) maps to :data:`DEFAULT_TENANT`; an empty
    or malformed value raises :exc:`TenantError` with a message that
    states the grammar — the caller turns that into HTTP 400.
    """
    if value is None:
        return DEFAULT_TENANT
    name = value.strip()
    if not name:
        raise TenantError(
            f"{TENANT_HEADER} must not be empty; omit the header to "
            f"run as the default tenant"
        )
    if len(name) > MAX_TENANT_LENGTH:
        raise TenantError(
            f"{TENANT_HEADER} {name[:MAX_TENANT_LENGTH]!r}... is too "
            f"long (max {MAX_TENANT_LENGTH} characters)"
        )
    if not _TENANT_RE.match(name):
        raise TenantError(
            f"{TENANT_HEADER} {name!r} is invalid: tenant names are "
            f"lowercase alphanumerics plus '.', '_', '-', starting "
            f"with a letter or digit"
        )
    return Tenant(name)
