"""Weighted-fair deficit scheduling for the broker's cold queue.

A :class:`DeficitScheduler` replaces the broker's FIFO deque with one
deque *per priority class* serviced by deficit round-robin (DRR):
each class carries a deficit counter, topped up by its weight when
its turn comes, and spends one unit per job popped.  Over a saturated
period the classes therefore share dispatch slots in weight
proportion (the default 8:4:1 for ``interactive``/``batch``/
``background``), and — because the rotation always completes a cycle
— no class can be starved in either direction: a flood of background
work cannot delay interactive jobs by more than one quantum, and
background still drains at its weight's pace.

Pops may be bounded (``limit``, the policy's ``batch_max``): the
scheduler remembers its position *and* unspent deficits across calls,
so fairness holds across dispatched batches, not just within one.
Within a class, order is FIFO — single-tenant behaviour (one class,
no policy file) is byte-for-byte the old queue.

Pure data structure: no clocks, no locks (event-loop-only, like the
queue it replaces), fully deterministic — the fairness tests drive it
directly.
"""

from __future__ import annotations

from collections import deque

__all__ = ["DeficitScheduler"]


class DeficitScheduler:
    """Deficit-round-robin queues over priority classes.

    Args:
        weights: ``{class name: weight >= 1}`` in priority order
            (iteration order is the service order).  Default: a single
            ``batch`` class — plain FIFO.
    """

    def __init__(self, weights: dict[str, int] | None = None):
        if not weights:
            weights = {"batch": 1}
        for name, weight in weights.items():
            if weight < 1:
                raise ValueError(
                    f"class {name!r} weight must be >= 1, got {weight}"
                )
        self._order = list(weights)
        self._weights = dict(weights)
        self._queues: dict[str, deque] = {name: deque() for name in weights}
        self._deficit: dict[str, float] = {name: 0.0 for name in weights}
        self._count = 0
        self._next = 0          # rotation position (index into _order)
        self._entering = True   # top up deficit on first touch of a class

    def __len__(self) -> int:
        return self._count

    @property
    def classes(self) -> tuple[str, ...]:
        return tuple(self._order)

    def depth(self, klass: str) -> int:
        """Queued items in one class."""
        return len(self._queues[klass])

    def push(self, klass: str, item) -> None:
        """Enqueue ``item`` under ``klass`` (FIFO within the class)."""
        queue = self._queues.get(klass)
        if queue is None:
            known = ", ".join(self._order)
            raise KeyError(f"unknown class {klass!r} (have: {known})")
        queue.append(item)
        self._count += 1

    def pop(self, limit: int | None = None) -> list:
        """Dequeue up to ``limit`` items (all, when None) in DRR order.

        Rotation position and deficits persist across calls; a call
        cut short by ``limit`` mid-quantum resumes the same class next
        time, so bounded batches do not distort the weight shares.
        """
        out: list = []
        n = len(self._order)
        while self._count and (limit is None or len(out) < limit):
            name = self._order[self._next % n]
            queue = self._queues[name]
            if not queue:
                # An idle class banks no credit (standard DRR).
                self._deficit[name] = 0.0
                self._advance()
                continue
            if self._entering:
                self._deficit[name] += self._weights[name]
                self._entering = False
            while queue and self._deficit[name] >= 1.0 \
                    and (limit is None or len(out) < limit):
                out.append(queue.popleft())
                self._count -= 1
                self._deficit[name] -= 1.0
            if not queue:
                self._deficit[name] = 0.0
            elif self._deficit[name] >= 1.0:
                break  # limit hit mid-quantum: resume here next call
            self._advance()
        return out

    def _advance(self) -> None:
        self._next = (self._next + 1) % max(1, len(self._order))
        self._entering = True
