"""repro.service.qos — multi-tenant quality of service.

The QoS layer makes the analysis service safe to share: without it,
admission, queuing and shedding are tenant-blind, so one abusive
client can exhaust the cold queue and move every other client's p99.
Four pieces (docs/qos.md):

* **tenant identity** (:mod:`repro.service.qos.tenant`) — the
  ``X-Repro-Tenant`` request header parsed at the protocol trust
  boundary into a validated :class:`Tenant`; anonymous callers get
  :data:`DEFAULT_TENANT`;
* **quota admission** (:mod:`repro.service.qos.quota`) — per-tenant
  token buckets (rate + burst) and an in-flight cap, checked *before*
  the broker's global EWMA gate and shed with HTTP 429 carrying a
  per-tenant ``Retry-After``;
* **priority scheduling** (:mod:`repro.service.qos.scheduler`) — the
  broker's cold queue becomes weighted-fair deficit queues over the
  ``interactive`` / ``batch`` / ``background`` priority classes, so a
  saturating background tenant cannot starve interactive work;
* **attribution** (:mod:`repro.service.qos.attribution`) — per-tenant
  ``qos.*`` counters and phase rollups (queue wait, pool, simulate,
  analyze, store) exported via ``/metrics`` and rendered by
  ``python -m repro qos report``.

Policy is operator configuration, exactly like
:class:`~repro.runner.ExecutionPolicy`: a TOML/JSON file handed to
``repro serve --qos``; clients cannot set or override any of it
(:mod:`repro.service.protocol` rejects QoS keys at the trust
boundary).  With no policy file the layer is inert — one class, no
quotas, FIFO order — so existing single-tenant deployments behave
exactly as before.
"""

from repro.service.qos.attribution import (
    PHASES,
    TenantAccounting,
    attribution_from_counters,
    attribution_from_prometheus,
    phases_from_span,
    render_attribution,
)
from repro.service.qos.policy import (
    CLASSES,
    ClassSpec,
    QosError,
    QosPolicy,
    TenantSpec,
    load_qos_policy,
    qos_policy_from_dict,
)
from repro.service.qos.quota import (
    QuotaExceeded,
    TenantQuotas,
    TokenBucket,
)
from repro.service.qos.scheduler import DeficitScheduler
from repro.service.qos.tenant import (
    DEFAULT_TENANT,
    Tenant,
    TenantError,
    parse_tenant,
)

__all__ = [
    "CLASSES",
    "ClassSpec",
    "DEFAULT_TENANT",
    "DeficitScheduler",
    "PHASES",
    "QosError",
    "QosPolicy",
    "QuotaExceeded",
    "Tenant",
    "TenantAccounting",
    "TenantError",
    "TenantQuotas",
    "TenantSpec",
    "TokenBucket",
    "attribution_from_counters",
    "attribution_from_prometheus",
    "load_qos_policy",
    "parse_tenant",
    "phases_from_span",
    "qos_policy_from_dict",
    "render_attribution",
]
