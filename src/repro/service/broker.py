"""The request broker: coalescing, batching, backpressure, drain.

The broker sits between the HTTP layer and the experiment runner and
enforces the service's three invariants (docs/service.md):

* **warm requests never touch the pool** — a job whose result is in
  the broker memo or the disk store is answered directly, the only
  thread hop being the store read;
* **identical in-flight requests run once** — cold submissions are
  keyed by :func:`repro.runner.job_key` and coalesced onto a single
  future (single-flight), so a stampede of equal requests costs one
  computation;
* **the event loop never blocks** — cold jobs queue, a dispatcher
  gathers everything that arrives within ``batch_window`` into one
  batch, and each batch runs on an executor thread through a fresh
  :class:`~repro.runner.ExperimentRunner` (the runner is not
  thread-safe; the *stores* are shared and safe).  Batching matters:
  the runner's sweep path groups batch jobs by execution identity, so
  N configs of one workload cost one simulation
  (:func:`repro.core.analyze_many` fan-out).

Admission is bounded: when the queue is full or the EWMA-estimated
wait exceeds ``max_wait``, :meth:`AnalysisBroker.submit` raises
:exc:`Overloaded` carrying a ``retry_after`` hint, which the server
turns into HTTP 429.  :meth:`AnalysisBroker.drain` stops admission,
finishes every admitted job (each batch journals through the runner)
and only then returns — the graceful-shutdown half of the contract.

Concurrent batches sharing one store root race for the run journal's
lock; the loser degrades to running without checkpointing (a logged
warning, not an error) — see docs/robustness.md.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.export import result_to_dict
from repro.obs import get_recorder
from repro.runner import (
    ExecutionPolicy,
    ExperimentConfig,
    ExperimentRunner,
    Job,
    ResultStore,
    TraceStore,
    job_key,
)
from repro.service.errors import BrokerClosed, JobError, Overloaded
from repro.service.qos.attribution import TenantAccounting, phases_from_span
from repro.service.qos.policy import QosPolicy
from repro.service.qos.quota import QuotaExceeded, TenantQuotas
from repro.service.qos.scheduler import DeficitScheduler
from repro.service.qos.tenant import DEFAULT_TENANT, Tenant

__all__ = [
    "AnalysisBroker",
    "BrokerClosed",
    "BrokerConfig",
    "JobError",
    "Overloaded",
    "STATUS_COALESCED",
    "STATUS_COMPUTED",
    "STATUS_WARM",
]

_log = logging.getLogger(__name__)

#: How a submission was served (the ``status`` half of ``submit``'s
#: return value; also echoed to clients in the response body).
STATUS_WARM = "warm"            #: memo/store hit, no pool involved
STATUS_COALESCED = "coalesced"  #: joined an identical in-flight job
STATUS_COMPUTED = "computed"    #: queued, batched and executed


@dataclass(frozen=True)
class BrokerConfig:
    """Tuning knobs of one :class:`AnalysisBroker`.

    Attributes:
        workers: concurrent batches (executor threads); each batch may
            itself fan out over ``jobs`` runner processes.
        jobs: worker-process count each batch's runner uses.
        max_queue: admission bound — queued (not yet dispatched) jobs
            beyond this are shed with :exc:`Overloaded`.
        max_wait: admission bound — estimated seconds until a new job
            would finish, beyond which it is shed.
        batch_window: seconds the dispatcher waits after the first
            queued job for stragglers to join the batch.
        memo_entries: broker-level LRU of decoded result payloads (the
            warmest tier, above the disk store).
        timeout: per-job wall-clock limit handed to the runner.
        retries: extra attempts for failed jobs (parallel runs).
        policy: the server-side :class:`ExecutionPolicy` each batch
            runner executes under.  This is operator configuration
            (``repro serve --policy ...``); clients cannot set or
            override it — :mod:`repro.service.protocol` rejects policy
            keys in request bodies at the trust boundary.  When None,
            a policy is synthesized from the legacy ``jobs``/
            ``timeout``/``retries`` knobs; when given, it wins over
            them entirely.
        qos: the multi-tenant :class:`~repro.service.qos.QosPolicy`
            (``repro serve --qos policy.toml``) — priority classes,
            per-tenant quotas and the batch-size cap.  Operator-only,
            exactly like ``policy``; None keeps the tenant-blind
            pre-QoS behaviour (one class, no quotas, unbounded
            batches).  See docs/qos.md.
    """

    workers: int = 2
    jobs: int = 1
    max_queue: int = 64
    max_wait: float = 30.0
    batch_window: float = 0.02
    memo_entries: int = 1024
    timeout: float | None = None
    retries: int = 1
    policy: "ExecutionPolicy | None" = None
    qos: "QosPolicy | None" = None

    def effective_policy(self) -> "ExecutionPolicy":
        """The policy batch runners execute under (see ``policy``)."""
        if self.policy is not None:
            return self.policy
        return ExecutionPolicy(jobs=max(1, self.jobs),
                               timeout=self.timeout,
                               retries=self.retries)


@dataclass
class _Pending:
    """One admitted cold job waiting for its batch."""

    key: str
    name: str
    config: ExperimentConfig
    future: asyncio.Future
    tenant: str = DEFAULT_TENANT.name
    enqueued_at: float = 0.0
    #: Filled by the batch that executes this entry, read back by
    #: ``submit`` to bill the requester's phase attribution.
    queue_wait: float = 0.0
    phases: dict = field(default_factory=dict)


class AnalysisBroker:
    """Single-flight, batching, backpressured front of the runner.

    Args:
        store: shared :class:`~repro.runner.ResultStore` (or None for
            memo-only operation — every cold job recomputes).
        trace_store: shared :class:`~repro.runner.TraceStore` for the
            execution tier (or None to simulate on every miss).
        config: a :class:`BrokerConfig`.
        batch_runner: test seam — a callable ``(pairs) -> outcomes``
            run on the executor, where ``pairs`` is a list of
            ``(name, config)`` and each outcome is a payload dict or
            an Exception.  Default: :meth:`_run_batch_in_thread`.
        quota_clock: test seam — the monotonic clock the per-tenant
            token buckets read (default :func:`time.monotonic`).
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        trace_store: TraceStore | None = None,
        config: BrokerConfig | None = None,
        batch_runner=None,
        quota_clock=None,
    ):
        self._store = store
        self._trace_store = trace_store
        self.config = config or BrokerConfig()
        self._batch_runner = batch_runner or self._run_batch_in_thread
        self._memo: OrderedDict[str, dict] = OrderedDict()
        self._inflight: dict[str, asyncio.Future] = {}
        qos = self.config.qos
        self._queue = DeficitScheduler(
            qos.class_weights() if qos is not None else None
        )
        self._batch_max = qos.batch_max if qos is not None else None
        self._quotas = TenantQuotas(qos, clock=quota_clock)
        self._accounting = TenantAccounting()
        self._batches: set[asyncio.Task] = set()
        self._wake = asyncio.Event()
        self._slots = asyncio.Semaphore(max(1, self.config.workers))
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-batch",
        )
        self._dispatcher: asyncio.Task | None = None
        self._closed = False
        #: EWMA of per-job batch latency, seeding the admission
        #: estimate before the first batch lands.
        self._job_seconds = 0.5

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher (must run inside the event loop)."""
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="repro-broker-dispatch"
            )

    @property
    def draining(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """Point-in-time load view (the ``/readyz`` body)."""
        stats = {
            "queue_depth": len(self._queue),
            "inflight": len(self._inflight),
            "batches": len(self._batches),
            "memo_entries": len(self._memo),
            "draining": self._closed,
            "est_job_seconds": round(self._job_seconds, 4),
            "policy": self.config.effective_policy().describe(),
        }
        if self.config.qos is not None:
            stats["qos"] = {
                "policy": self.config.qos.describe(),
                "quotas": self._quotas.snapshot(),
                "tenants": self._accounting.snapshot(),
            }
        return stats

    def attribution(self) -> dict:
        """The per-tenant rollup :class:`TenantAccounting` keeps."""
        return self._accounting.snapshot()

    async def drain(self) -> None:
        """Stop admission, finish every admitted job, then return.

        Idempotent.  Queued jobs still execute — their clients were
        admitted and are awaiting futures; "drain" means no *new*
        work, not dropped work.
        """
        self._closed = True
        self._wake.set()
        while self._inflight or self._queue or self._batches:
            waits = list(self._inflight.values()) + list(self._batches)
            if waits:
                await asyncio.gather(*waits, return_exceptions=True)
            # Let done-callbacks (inflight cleanup, batch discard) run.
            await asyncio.sleep(0)
            self._wake.set()
        if self._dispatcher is not None:
            self._wake.set()
            await self._dispatcher
            self._dispatcher = None
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------

    async def submit(self, name: str,
                     config: ExperimentConfig | None = None,
                     tenant: "Tenant | str | None" = None,
                     ) -> tuple[dict, str]:
        """Resolve one job: ``(payload, status)``.

        ``payload`` is the JSON-safe result dict
        (:func:`repro.core.export.result_to_dict` shape); ``status``
        is one of :data:`STATUS_WARM` / :data:`STATUS_COALESCED` /
        :data:`STATUS_COMPUTED`.  ``tenant`` is who the request is
        billed to (quota, scheduling class, attribution); None means
        the default tenant.  Raises :exc:`Overloaded` (including its
        per-tenant :exc:`~repro.service.qos.QuotaExceeded` subclass),
        :exc:`BrokerClosed` or :exc:`JobError`.
        """
        recorder = get_recorder()
        recorder.count("service.requests", 1)
        who = str(tenant) if tenant else DEFAULT_TENANT.name
        started = time.monotonic()
        if self._closed:
            raise BrokerClosed("broker is draining")
        # The rate bucket is spent per *request* — warm and coalesced
        # included (coalesced hits are billed to each requester,
        # executed once) — and before the global gate, so an abusive
        # tenant sheds on its own budget first.
        try:
            self._quotas.charge(who)
        except QuotaExceeded as error:
            recorder.count("service.shed", 1)
            self._accounting.record_shed(who, error.scope, recorder)
            raise
        config = config or ExperimentConfig()
        key = await asyncio.to_thread(job_key, Job(name, config))

        payload = await self._resolve_warm(key)
        if payload is not None:
            recorder.count("service.warm", 1)
            wall = time.monotonic() - started
            self._accounting.record(who, STATUS_WARM, wall,
                                    {"store": wall}, recorder)
            return payload, STATUS_WARM

        # Coalesce onto an identical in-flight job.  Checked *after*
        # the warm path's awaits so two racing cold submissions cannot
        # both miss it; no await point between here and registration.
        existing = self._inflight.get(key)
        if existing is not None:
            recorder.count("service.coalesced", 1)
            payload = await asyncio.shield(existing)
            # The whole wait was on someone else's in-flight job.
            wall = time.monotonic() - started
            self._accounting.record(who, STATUS_COALESCED, wall,
                                    {"queue": wall}, recorder)
            return payload, STATUS_COALESCED

        if self._closed:
            raise BrokerClosed("broker is draining")
        # Tenant in-flight cap, then the global EWMA gate; the slot is
        # released by the future's done callback once registered.
        try:
            self._quotas.begin(who)
        except QuotaExceeded as error:
            recorder.count("service.shed", 1)
            self._accounting.record_shed(who, error.scope, recorder)
            raise
        registered = False
        try:
            try:
                self._check_admission(recorder)
            except Overloaded:
                self._accounting.record_shed(who, "backpressure", recorder)
                raise
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future

            def _release(fut, key=key, who=who):
                self._inflight.pop(key, None)
                self._quotas.end(who)

            future.add_done_callback(_release)
            registered = True
        finally:
            if not registered:
                self._quotas.end(who)
        entry = _Pending(key, name, config, future, tenant=who,
                         enqueued_at=time.monotonic())
        self._queue.push(self._quotas.class_for(who), entry)
        recorder.gauge("service.queue_depth", len(self._queue))
        self._wake.set()
        payload = await asyncio.shield(future)
        recorder.count("service.computed", 1)
        wall = time.monotonic() - started
        self._accounting.record(who, STATUS_COMPUTED, wall,
                                dict(entry.phases,
                                     queue=entry.queue_wait),
                                recorder)
        return payload, STATUS_COMPUTED

    async def _resolve_warm(self, key: str) -> dict | None:
        """Memo then disk store; never touches the queue or pool."""
        payload = self._memo.get(key)
        if payload is not None:
            self._memo.move_to_end(key)
            return payload
        if self._store is None:
            return None
        payload = await asyncio.to_thread(self._store.get, key)
        if payload is not None:
            self._memo_put(key, payload)
        return payload

    def _memo_put(self, key: str, payload: dict) -> None:
        self._memo[key] = payload
        self._memo.move_to_end(key)
        while len(self._memo) > self.config.memo_entries:
            self._memo.popitem(last=False)

    def _check_admission(self, recorder) -> None:
        """Shed when the queue is full or the estimated wait too long."""
        depth = len(self._queue)
        estimate = ((depth + 1) * self._job_seconds
                    / max(1, self.config.workers))
        if depth >= self.config.max_queue:
            recorder.count("service.shed", 1)
            raise Overloaded(
                estimate,
                f"queue full ({depth} >= {self.config.max_queue})",
            )
        if estimate > self.config.max_wait:
            recorder.count("service.shed", 1)
            raise Overloaded(
                estimate,
                f"estimated wait {estimate:.1f}s exceeds "
                f"{self.config.max_wait:.1f}s",
            )

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if not self._queue:
                if self._closed:
                    return
                continue
            if self.config.batch_window > 0 and not self._closed:
                # Let a burst of submissions join this batch; the
                # runner turns same-workload members into one
                # simulation, so a wider batch is a cheaper batch.
                await asyncio.sleep(self.config.batch_window)
            # Weighted-fair pop: up to the policy's batch_max entries
            # in deficit-round-robin class order (everything queued
            # when no QoS policy bounds the batch).
            entries = self._queue.pop(self._batch_max)
            get_recorder().gauge("service.queue_depth", len(self._queue))
            if not entries:
                continue
            await self._slots.acquire()
            task = asyncio.create_task(self._execute_batch(entries))
            self._batches.add(task)
            task.add_done_callback(self._batches.discard)
            if self._queue:
                self._wake.set()

    async def _execute_batch(self, entries: list[_Pending]) -> None:
        recorder = get_recorder()
        recorder.count("service.batches", 1)
        recorder.count("service.batch_jobs", len(entries))
        loop = asyncio.get_running_loop()
        start = loop.time()
        dispatched = time.monotonic()
        for entry in entries:
            entry.queue_wait = max(0.0, dispatched - entry.enqueued_at)
        pairs = [(entry.name, entry.config) for entry in entries]
        try:
            outcomes, phases = await loop.run_in_executor(
                self._executor, self._timed_batch, pairs
            )
        except Exception as error:  # noqa: BLE001 — resolve, don't leak
            _log.exception("service batch failed outright")
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_exception(JobError({
                        "workload": entry.name,
                        "error": f"{type(error).__name__}: {error}",
                        "kind": "error",
                    }))
            return
        finally:
            self._slots.release()
            per_job = (loop.time() - start) / max(1, len(entries))
            self._job_seconds = 0.7 * self._job_seconds + 0.3 * per_job
        for entry, outcome in zip(entries, outcomes):
            # Every member waits for the whole batch, so each is
            # billed the batch's full phase split (docs/qos.md).
            entry.phases = phases
            if entry.future.done():
                continue
            if isinstance(outcome, Exception):
                entry.future.set_exception(outcome)
            else:
                self._memo_put(entry.key, outcome)
                entry.future.set_result(outcome)

    def _timed_batch(self, pairs) -> tuple[list, dict]:
        """Executor-side wrapper: run the batch under a ``qos.batch``
        span and split its wall time into attribution phases.

        The span is opened on the executor thread, so the recorder's
        thread-local stack nests the batch's ``simulate``/``analyze``/
        ``store.*`` spans under it even while other batches run
        concurrently; with observation off the null span yields no
        children and the whole wall lands in the ``pool`` residual.
        """
        recorder = get_recorder()
        t0 = time.perf_counter()
        with recorder.span("qos.batch") as span:
            outcomes = self._batch_runner(pairs)
        wall = time.perf_counter() - t0
        return outcomes, phases_from_span(span, wall)

    def _run_batch_in_thread(self, pairs) -> list:
        """Executor-side batch execution (no event-loop state here).

        A fresh :class:`ExperimentRunner` per batch: the runner keeps
        run-scoped state and documents itself as not thread-safe, but
        the stores it shares with every other batch are multi-writer
        safe (atomic replace).  Per-pair configs pin ``workloads`` to
        the one requested name so ``run_many`` sees exactly the
        batch's jobs and can group same-execution members.
        """
        policy = self.config.effective_policy()
        runner = ExperimentRunner(
            store=self._store,
            trace_store=self._trace_store,
            policy=policy,
        )
        configs = [
            dataclasses.replace(config, workloads=(name,))
            for name, config in pairs
        ]
        runs = runner.run_many(configs, jobs=policy.jobs)
        outcomes: list = []
        for (name, __), run in zip(pairs, runs):
            result = run.results.get(name)
            if result is not None:
                outcomes.append(result_to_dict(result))
                continue
            failure = run.failures.get(name)
            detail = {"workload": name, "error": "job produced no result",
                      "kind": "error"}
            if failure is not None:
                detail = {
                    "workload": name,
                    "error": failure.error,
                    "kind": failure.kind,
                    "attempts": failure.attempts,
                    "timed_out": failure.timed_out,
                }
            outcomes.append(JobError(detail))
        return outcomes
