"""The request broker: coalescing, batching, backpressure, drain.

The broker sits between the HTTP layer and the experiment runner and
enforces the service's three invariants (docs/service.md):

* **warm requests never touch the pool** — a job whose result is in
  the broker memo or the disk store is answered directly, the only
  thread hop being the store read;
* **identical in-flight requests run once** — cold submissions are
  keyed by :func:`repro.runner.job_key` and coalesced onto a single
  future (single-flight), so a stampede of equal requests costs one
  computation;
* **the event loop never blocks** — cold jobs queue, a dispatcher
  gathers everything that arrives within ``batch_window`` into one
  batch, and each batch runs on an executor thread through a fresh
  :class:`~repro.runner.ExperimentRunner` (the runner is not
  thread-safe; the *stores* are shared and safe).  Batching matters:
  the runner's sweep path groups batch jobs by execution identity, so
  N configs of one workload cost one simulation
  (:func:`repro.core.analyze_many` fan-out).

Admission is bounded: when the queue is full or the EWMA-estimated
wait exceeds ``max_wait``, :meth:`AnalysisBroker.submit` raises
:exc:`Overloaded` carrying a ``retry_after`` hint, which the server
turns into HTTP 429.  :meth:`AnalysisBroker.drain` stops admission,
finishes every admitted job (each batch journals through the runner)
and only then returns — the graceful-shutdown half of the contract.

Concurrent batches sharing one store root race for the run journal's
lock; the loser degrades to running without checkpointing (a logged
warning, not an error) — see docs/robustness.md.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.export import result_to_dict
from repro.obs import get_recorder
from repro.runner import (
    ExecutionPolicy,
    ExperimentConfig,
    ExperimentRunner,
    Job,
    ResultStore,
    TraceStore,
    job_key,
)

__all__ = [
    "AnalysisBroker",
    "BrokerClosed",
    "BrokerConfig",
    "JobError",
    "Overloaded",
    "STATUS_COALESCED",
    "STATUS_COMPUTED",
    "STATUS_WARM",
]

_log = logging.getLogger(__name__)

#: How a submission was served (the ``status`` half of ``submit``'s
#: return value; also echoed to clients in the response body).
STATUS_WARM = "warm"            #: memo/store hit, no pool involved
STATUS_COALESCED = "coalesced"  #: joined an identical in-flight job
STATUS_COMPUTED = "computed"    #: queued, batched and executed


class Overloaded(Exception):
    """Admission refused: the queue is full or the wait too long.

    ``retry_after`` is the server's backoff hint in seconds (the
    ``Retry-After`` header of the resulting HTTP 429).
    """

    def __init__(self, retry_after: float, reason: str):
        super().__init__(reason)
        self.retry_after = max(1, round(retry_after))


class BrokerClosed(RuntimeError):
    """Submission after drain began (HTTP 503 at the server)."""


class JobError(RuntimeError):
    """An admitted job ran and failed; carries the runner's failure.

    ``detail`` is JSON-safe (workload, error text, kind, attempts,
    timed_out) and goes into the HTTP 500 body verbatim.
    """

    def __init__(self, detail: dict):
        super().__init__(detail.get("error", "job failed"))
        self.detail = detail


@dataclass(frozen=True)
class BrokerConfig:
    """Tuning knobs of one :class:`AnalysisBroker`.

    Attributes:
        workers: concurrent batches (executor threads); each batch may
            itself fan out over ``jobs`` runner processes.
        jobs: worker-process count each batch's runner uses.
        max_queue: admission bound — queued (not yet dispatched) jobs
            beyond this are shed with :exc:`Overloaded`.
        max_wait: admission bound — estimated seconds until a new job
            would finish, beyond which it is shed.
        batch_window: seconds the dispatcher waits after the first
            queued job for stragglers to join the batch.
        memo_entries: broker-level LRU of decoded result payloads (the
            warmest tier, above the disk store).
        timeout: per-job wall-clock limit handed to the runner.
        retries: extra attempts for failed jobs (parallel runs).
        policy: the server-side :class:`ExecutionPolicy` each batch
            runner executes under.  This is operator configuration
            (``repro serve --policy ...``); clients cannot set or
            override it — :mod:`repro.service.protocol` rejects policy
            keys in request bodies at the trust boundary.  When None,
            a policy is synthesized from the legacy ``jobs``/
            ``timeout``/``retries`` knobs; when given, it wins over
            them entirely.
    """

    workers: int = 2
    jobs: int = 1
    max_queue: int = 64
    max_wait: float = 30.0
    batch_window: float = 0.02
    memo_entries: int = 1024
    timeout: float | None = None
    retries: int = 1
    policy: "ExecutionPolicy | None" = None

    def effective_policy(self) -> "ExecutionPolicy":
        """The policy batch runners execute under (see ``policy``)."""
        if self.policy is not None:
            return self.policy
        return ExecutionPolicy(jobs=max(1, self.jobs),
                               timeout=self.timeout,
                               retries=self.retries)


@dataclass
class _Pending:
    """One admitted cold job waiting for its batch."""

    key: str
    name: str
    config: ExperimentConfig
    future: asyncio.Future


class AnalysisBroker:
    """Single-flight, batching, backpressured front of the runner.

    Args:
        store: shared :class:`~repro.runner.ResultStore` (or None for
            memo-only operation — every cold job recomputes).
        trace_store: shared :class:`~repro.runner.TraceStore` for the
            execution tier (or None to simulate on every miss).
        config: a :class:`BrokerConfig`.
        batch_runner: test seam — a callable ``(pairs) -> outcomes``
            run on the executor, where ``pairs`` is a list of
            ``(name, config)`` and each outcome is a payload dict or
            an Exception.  Default: :meth:`_run_batch_in_thread`.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        trace_store: TraceStore | None = None,
        config: BrokerConfig | None = None,
        batch_runner=None,
    ):
        self._store = store
        self._trace_store = trace_store
        self.config = config or BrokerConfig()
        self._batch_runner = batch_runner or self._run_batch_in_thread
        self._memo: OrderedDict[str, dict] = OrderedDict()
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: deque[_Pending] = deque()
        self._batches: set[asyncio.Task] = set()
        self._wake = asyncio.Event()
        self._slots = asyncio.Semaphore(max(1, self.config.workers))
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-batch",
        )
        self._dispatcher: asyncio.Task | None = None
        self._closed = False
        #: EWMA of per-job batch latency, seeding the admission
        #: estimate before the first batch lands.
        self._job_seconds = 0.5

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher (must run inside the event loop)."""
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="repro-broker-dispatch"
            )

    @property
    def draining(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """Point-in-time load view (the ``/readyz`` body)."""
        return {
            "queue_depth": len(self._queue),
            "inflight": len(self._inflight),
            "batches": len(self._batches),
            "memo_entries": len(self._memo),
            "draining": self._closed,
            "est_job_seconds": round(self._job_seconds, 4),
            "policy": self.config.effective_policy().describe(),
        }

    async def drain(self) -> None:
        """Stop admission, finish every admitted job, then return.

        Idempotent.  Queued jobs still execute — their clients were
        admitted and are awaiting futures; "drain" means no *new*
        work, not dropped work.
        """
        self._closed = True
        self._wake.set()
        while self._inflight or self._queue or self._batches:
            waits = list(self._inflight.values()) + list(self._batches)
            if waits:
                await asyncio.gather(*waits, return_exceptions=True)
            # Let done-callbacks (inflight cleanup, batch discard) run.
            await asyncio.sleep(0)
            self._wake.set()
        if self._dispatcher is not None:
            self._wake.set()
            await self._dispatcher
            self._dispatcher = None
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------

    async def submit(self, name: str,
                     config: ExperimentConfig | None = None,
                     ) -> tuple[dict, str]:
        """Resolve one job: ``(payload, status)``.

        ``payload`` is the JSON-safe result dict
        (:func:`repro.core.export.result_to_dict` shape); ``status``
        is one of :data:`STATUS_WARM` / :data:`STATUS_COALESCED` /
        :data:`STATUS_COMPUTED`.  Raises :exc:`Overloaded`,
        :exc:`BrokerClosed` or :exc:`JobError`.
        """
        recorder = get_recorder()
        recorder.count("service.requests", 1)
        if self._closed:
            raise BrokerClosed("broker is draining")
        config = config or ExperimentConfig()
        key = await asyncio.to_thread(job_key, Job(name, config))

        payload = await self._resolve_warm(key)
        if payload is not None:
            recorder.count("service.warm", 1)
            return payload, STATUS_WARM

        # Coalesce onto an identical in-flight job.  Checked *after*
        # the warm path's awaits so two racing cold submissions cannot
        # both miss it; no await point between here and registration.
        existing = self._inflight.get(key)
        if existing is not None:
            recorder.count("service.coalesced", 1)
            payload = await asyncio.shield(existing)
            return payload, STATUS_COALESCED

        if self._closed:
            raise BrokerClosed("broker is draining")
        self._check_admission(recorder)

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        future.add_done_callback(
            lambda fut, key=key: self._inflight.pop(key, None)
        )
        self._queue.append(_Pending(key, name, config, future))
        recorder.gauge("service.queue_depth", len(self._queue))
        self._wake.set()
        payload = await asyncio.shield(future)
        recorder.count("service.computed", 1)
        return payload, STATUS_COMPUTED

    async def _resolve_warm(self, key: str) -> dict | None:
        """Memo then disk store; never touches the queue or pool."""
        payload = self._memo.get(key)
        if payload is not None:
            self._memo.move_to_end(key)
            return payload
        if self._store is None:
            return None
        payload = await asyncio.to_thread(self._store.get, key)
        if payload is not None:
            self._memo_put(key, payload)
        return payload

    def _memo_put(self, key: str, payload: dict) -> None:
        self._memo[key] = payload
        self._memo.move_to_end(key)
        while len(self._memo) > self.config.memo_entries:
            self._memo.popitem(last=False)

    def _check_admission(self, recorder) -> None:
        """Shed when the queue is full or the estimated wait too long."""
        depth = len(self._queue)
        estimate = ((depth + 1) * self._job_seconds
                    / max(1, self.config.workers))
        if depth >= self.config.max_queue:
            recorder.count("service.shed", 1)
            raise Overloaded(
                estimate,
                f"queue full ({depth} >= {self.config.max_queue})",
            )
        if estimate > self.config.max_wait:
            recorder.count("service.shed", 1)
            raise Overloaded(
                estimate,
                f"estimated wait {estimate:.1f}s exceeds "
                f"{self.config.max_wait:.1f}s",
            )

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if not self._queue:
                if self._closed:
                    return
                continue
            if self.config.batch_window > 0 and not self._closed:
                # Let a burst of submissions join this batch; the
                # runner turns same-workload members into one
                # simulation, so a wider batch is a cheaper batch.
                await asyncio.sleep(self.config.batch_window)
            entries = list(self._queue)
            self._queue.clear()
            get_recorder().gauge("service.queue_depth", 0)
            await self._slots.acquire()
            task = asyncio.create_task(self._execute_batch(entries))
            self._batches.add(task)
            task.add_done_callback(self._batches.discard)
            if self._queue:
                self._wake.set()

    async def _execute_batch(self, entries: list[_Pending]) -> None:
        recorder = get_recorder()
        recorder.count("service.batches", 1)
        recorder.count("service.batch_jobs", len(entries))
        loop = asyncio.get_running_loop()
        start = loop.time()
        pairs = [(entry.name, entry.config) for entry in entries]
        try:
            outcomes = await loop.run_in_executor(
                self._executor, self._batch_runner, pairs
            )
        except Exception as error:  # noqa: BLE001 — resolve, don't leak
            _log.exception("service batch failed outright")
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_exception(JobError({
                        "workload": entry.name,
                        "error": f"{type(error).__name__}: {error}",
                        "kind": "error",
                    }))
            return
        finally:
            self._slots.release()
            per_job = (loop.time() - start) / max(1, len(entries))
            self._job_seconds = 0.7 * self._job_seconds + 0.3 * per_job
        for entry, outcome in zip(entries, outcomes):
            if entry.future.done():
                continue
            if isinstance(outcome, Exception):
                entry.future.set_exception(outcome)
            else:
                self._memo_put(entry.key, outcome)
                entry.future.set_result(outcome)

    def _run_batch_in_thread(self, pairs) -> list:
        """Executor-side batch execution (no event-loop state here).

        A fresh :class:`ExperimentRunner` per batch: the runner keeps
        run-scoped state and documents itself as not thread-safe, but
        the stores it shares with every other batch are multi-writer
        safe (atomic replace).  Per-pair configs pin ``workloads`` to
        the one requested name so ``run_many`` sees exactly the
        batch's jobs and can group same-execution members.
        """
        policy = self.config.effective_policy()
        runner = ExperimentRunner(
            store=self._store,
            trace_store=self._trace_store,
            policy=policy,
        )
        configs = [
            dataclasses.replace(config, workloads=(name,))
            for name, config in pairs
        ]
        runs = runner.run_many(configs, jobs=policy.jobs)
        outcomes: list = []
        for (name, __), run in zip(pairs, runs):
            result = run.results.get(name)
            if result is not None:
                outcomes.append(result_to_dict(result))
                continue
            failure = run.failures.get(name)
            detail = {"workload": name, "error": "job produced no result",
                      "kind": "error"}
            if failure is not None:
                detail = {
                    "workload": name,
                    "error": failure.error,
                    "kind": failure.kind,
                    "attempts": failure.attempts,
                    "timed_out": failure.timed_out,
                }
            outcomes.append(JobError(detail))
        return outcomes
