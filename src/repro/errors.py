"""Exception hierarchy shared across the repro packages."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AsmError(ReproError):
    """An assembly source could not be assembled.

    Attributes:
        line: 1-based source line number, when known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)


class CompileError(ReproError):
    """A mini-C source could not be compiled.

    Attributes:
        line: 1-based source line number, when known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)


class SimError(ReproError):
    """The simulated machine hit a fault (bad PC, unaligned access,
    division by zero, instruction limit, ...)."""


class RunnerError(ReproError):
    """An experiment suite run finished with failed jobs.

    Attributes:
        failures: workload name -> :class:`repro.runner.job.JobFailure`.
    """

    def __init__(self, message: str, failures=None):
        self.failures = dict(failures or {})
        super().__init__(message)
