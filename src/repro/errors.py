"""Exception hierarchy shared across the repro packages."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AsmError(ReproError):
    """An assembly source could not be assembled.

    Attributes:
        line: 1-based source line number, when known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)


class MinicError(ReproError):
    """Base of every diagnostic the mini-C toolchain raises.

    The generator fuzz harness (tests/gen/test_fuzz.py) holds the
    toolchain to this contract: feeding it arbitrary source — garbled,
    truncated, machine-generated — may raise MinicError subclasses and
    nothing else (no bare ``KeyError``/``IndexError`` escaping an
    internal table lookup).
    """


class CompileError(MinicError):
    """A mini-C source could not be compiled.

    Attributes:
        line: 1-based source line number, when known.
        col: 1-based source column, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 col: int | None = None):
        self.line = line
        self.col = col
        if line is not None and col is not None:
            prefix = f"line {line}, col {col}: "
        elif line is not None:
            prefix = f"line {line}: "
        else:
            prefix = ""
        super().__init__(prefix + message)


class InternalCompilerError(CompileError):
    """An unexpected exception escaped a compiler pass.

    The driver (:mod:`repro.minic.compiler`) converts stray
    ``KeyError``/``IndexError``/... into this so callers — fuzzers
    included — always see a :class:`MinicError`; the original
    exception is chained as ``__cause__`` for debugging."""


class SimError(ReproError):
    """The simulated machine hit a fault (bad PC, unaligned access,
    division by zero, instruction limit, ...)."""


class RunnerError(ReproError):
    """An experiment suite run finished with failed jobs.

    Base of the structured runner-failure taxonomy: callers that need
    to react to *how* something failed catch the subclass (or inspect
    :attr:`repro.runner.job.JobFailure.kind`) instead of string-matching
    error text.

    Attributes:
        failures: workload name -> :class:`repro.runner.job.JobFailure`.
    """

    def __init__(self, message: str, failures=None):
        self.failures = dict(failures or {})
        super().__init__(message)


class TimeoutExceeded(RunnerError):
    """A job exhausted its attempts by hitting the per-job timeout."""


class WorkerCrash(RunnerError):
    """A worker process died without reporting (segfault, ``os._exit``,
    OOM-kill) on every attempt."""


class PoolSpawnError(RunnerError):
    """A worker process could not be spawned (fork/exec failure,
    resource exhaustion, or an injected ``pool.spawn`` fault)."""


class StoreCorruption(RunnerError):
    """A cache-store entry failed validation (checksum mismatch,
    truncated envelope, garbled trace framing).

    The stores themselves *recover* from corruption — they drop the
    entry, count it and treat it as a miss — so this is raised only
    where corruption cannot be transparently recovered (e.g. the chaos
    harness verifying invariants)."""


class DiskFull(RunnerError):
    """A job failed because the disk filled up (``ENOSPC``).

    The stores and the journal *degrade* on ENOSPC — eviction retry,
    then running uncached/unjournaled — so this surfaces only when a
    job could not complete at all without the space.  Structured
    (``kind="enospc"``) so callers can distinguish "buy a bigger disk"
    from a code bug without parsing a traceback."""


class JournalConflict(RunnerError):
    """The sweep journal is owned by another live process, or its
    contents contradict the store it describes."""


class RunnerInterrupted(RunnerError):
    """A run was interrupted (SIGINT/SIGTERM): in-flight jobs were
    drained and checkpointed to the journal, the rest never ran.

    Attributes:
        journal_path: journal to pass back via ``resume=`` (or the
            CLI's ``--resume``) to pick the sweep up where it stopped;
            None when the run had no journal.
    """

    def __init__(self, message: str, failures=None, journal_path=None):
        self.journal_path = journal_path
        super().__init__(message, failures=failures)


#: ``JobFailure.kind`` / ``TaskError.kind`` -> exception class, the
#: structured replacement for matching substrings of error text.
FAILURE_KINDS: dict = {
    "timeout": TimeoutExceeded,
    "crash": WorkerCrash,
    "spawn": PoolSpawnError,
    "enospc": DiskFull,
    "error": RunnerError,
}


def error_for_kind(kind: str) -> type:
    """The :class:`RunnerError` subclass for a failure ``kind``."""
    return FAILURE_KINDS.get(kind, RunnerError)
