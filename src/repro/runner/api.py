"""Experiment orchestration: jobs -> pool -> store -> results.

:class:`ExperimentRunner` is the one place experiment execution
happens; the report layer, the benchmark harness and the CLI all
delegate here, so they share a single warm store.  Resolution order
for every job:

1. **in-process memo** — same object back, zero cost (preserves the
   old ``_CACHE`` identity semantics);
2. **disk store** — deserialised via
   :func:`repro.core.export.result_from_dict`; renders byte-identical
   exhibits;
3. **compute** — trace + analyse, then write through to both layers.

Parallel runs ship nothing through pipes: each worker writes its
result into the store (content-addressed by job key, atomic replace)
and the parent reads it back.  The store *is* the transport, which is
also why a ``--no-cache`` parallel run still uses one — a throwaway
store in a temp directory.

Environment knobs (read at :func:`default_runner` construction):

* ``REPRO_CACHE_DIR`` — store location (default ``.repro-cache/``);
* ``REPRO_NO_CACHE`` — set to disable the disk store entirely;
* ``REPRO_JOBS`` — default worker count for suite runs.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field

from repro.core import analyze_machine
from repro.core.export import result_from_dict, result_to_dict
from repro.errors import RunnerError
from repro.runner.cache import DEFAULT_MAX_BYTES, ResultStore
from repro.runner.job import ExperimentConfig, Job, JobFailure, job_key
from repro.runner.metrics import (
    STATUS_CACHE_HIT,
    STATUS_COMPUTED,
    STATUS_FAILED,
    STATUS_MEMO_HIT,
    JobMetric,
    RunMetrics,
)
from repro.runner.pool import Task, TaskError, TaskPool
from repro.workloads import SUITE, get_workload

#: Default store location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass
class ExperimentRun:
    """Outcome of one suite run.

    ``results`` holds every successful workload in request order;
    ``failures`` the rest.  ``metrics`` always covers both.
    """

    results: dict = field(default_factory=dict)
    failures: dict = field(default_factory=dict)
    metrics: RunMetrics = field(default_factory=RunMetrics)

    def require(self) -> dict:
        """The results, raising :class:`RunnerError` on any failure."""
        if self.failures:
            detail = "; ".join(
                f"{name}: {failure.error.strip().splitlines()[-1]}"
                for name, failure in self.failures.items()
            )
            raise RunnerError(
                f"{len(self.failures)} job(s) failed: {detail}",
                failures=self.failures,
            )
        return self.results


def _analyze(name: str, config: ExperimentConfig):
    workload = get_workload(name)
    machine = workload.machine(scale=config.scale)
    job = Job(name, config)
    return analyze_machine(machine, name, job.analysis_config())


def _execute_job(name: str, config: ExperimentConfig, key: str,
                 store_root: str, max_bytes: int) -> str:
    """Pool worker: compute one job and write it through the store.

    Returns the key so the parent knows where to read the result.
    Runs in a separate process; must stay picklable/module-level.
    """
    store = ResultStore(store_root, max_bytes=max_bytes)
    if store.get(key) is None:
        result = _analyze(name, config)
        store.put(key, result_to_dict(result))
    return key


class ExperimentRunner:
    """Owns the memo, the store and the pool for experiment suites.

    Args:
        store: a :class:`ResultStore`, or None to run without a disk
            cache (in-process memo only).
        jobs: default worker count for :meth:`run`.
        timeout: per-job wall-clock limit in seconds (parallel runs).
        retries: extra attempts for a failed job (parallel runs).
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int = 1,
        timeout: float | None = None,
        retries: int = 1,
    ):
        self.store = store
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.retries = retries
        self._memo: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Single-job path (the report layer's run_workload).
    # ------------------------------------------------------------------

    def run_one(self, name: str, config: ExperimentConfig):
        """Analyse one workload in-process; exceptions propagate.

        Repeat calls with an equal config return the identical object
        (memo), so exhibit code can rely on result identity.
        """
        key = job_key(Job(name, config))
        result = self._memo.get(key)
        if result is not None:
            return result
        result = self._load(key)
        if result is None:
            result = _analyze(name, config)
            if self.store is not None:
                self.store.put(key, result_to_dict(result))
        self._memo[key] = result
        return result

    # ------------------------------------------------------------------
    # Suite path.
    # ------------------------------------------------------------------

    def run(self, config: ExperimentConfig | None = None,
            jobs: int | None = None) -> ExperimentRun:
        """Run every configured workload; never raises for job errors.

        A job that fails to hash, times out, crashes or raises is
        recorded as a :class:`JobFailure` in ``run.failures``; the
        remaining jobs complete normally.
        """
        config = config or ExperimentConfig()
        workers = max(1, jobs if jobs is not None else self.jobs)
        names = config.workloads or tuple(w.name for w in SUITE)
        run = ExperimentRun()
        run.metrics.requested_workers = workers
        start = time.monotonic()

        # Hash every job; a workload whose compile/input generation
        # blows up fails here without sinking the suite.  Unknown names
        # still raise — that is a caller bug, not a job fault.
        keyed: list[tuple[str, str]] = []
        for name in names:
            get_workload(name)
            try:
                keyed.append((name, job_key(Job(name, config))))
            except Exception as error:
                self._record_failure(run, name, "", JobFailure(
                    workload=name, error=f"{type(error).__name__}: {error}",
                ))

        # Serve memo/store hits; collect the rest for execution.
        misses: list[tuple[str, str]] = []
        for name, key in keyed:
            hit = self._memo.get(key)
            status = STATUS_MEMO_HIT
            if hit is None:
                hit = self._load(key)
                status = STATUS_CACHE_HIT
            if hit is None:
                misses.append((name, key))
                continue
            self._memo[key] = hit
            run.results[name] = hit
            run.metrics.add(JobMetric(workload=name, key=key, status=status))

        if misses:
            if workers == 1 or len(misses) == 1:
                self._run_serial(run, config, misses)
            else:
                self._run_parallel(run, config, misses, workers)

        # Present results in request order regardless of completion order.
        run.results = {
            name: run.results[name] for name in names if name in run.results
        }
        run.metrics.jobs.sort(key=lambda m: names.index(m.workload))
        run.metrics.total_wall = time.monotonic() - start
        return run

    # ------------------------------------------------------------------
    # Execution strategies.
    # ------------------------------------------------------------------

    def _run_serial(self, run: ExperimentRun, config, misses) -> None:
        run.metrics.peak_workers = max(run.metrics.peak_workers, 1)
        for name, key in misses:
            job_start = time.monotonic()
            try:
                result = _analyze(name, config)
            except Exception as error:
                self._record_failure(run, name, key, JobFailure(
                    workload=name,
                    error=f"{type(error).__name__}: {error}",
                    wall_time=time.monotonic() - job_start,
                ))
                continue
            if self.store is not None:
                self.store.put(key, result_to_dict(result))
            self._memo[key] = result
            run.results[name] = result
            run.metrics.add(JobMetric(
                workload=name, key=key, status=STATUS_COMPUTED,
                wall_time=time.monotonic() - job_start,
                instructions=result.nodes, attempts=1,
            ))

    def _run_parallel(self, run: ExperimentRun, config, misses,
                      workers: int) -> None:
        # A disk store is the result channel; without one, use a
        # throwaway store that only lives for this run.
        scratch = None
        store = self.store
        if store is None:
            scratch = tempfile.TemporaryDirectory(prefix="repro-runner-")
            store = ResultStore(scratch.name)
        try:
            pool = TaskPool(max_workers=workers, timeout=self.timeout,
                            retries=self.retries)
            tasks = [
                Task(key=key, fn=_execute_job,
                     args=(name, config, key, str(store.root),
                           store.max_bytes))
                for name, key in misses
            ]
            pool_run = pool.run(tasks)
            run.metrics.peak_workers = max(
                run.metrics.peak_workers, pool_run.peak_workers
            )
            for name, key in misses:
                outcome = pool_run.outcomes.get(key)
                if isinstance(outcome, TaskError):
                    self._record_failure(run, name, key, JobFailure(
                        workload=name, error=outcome.error,
                        attempts=outcome.attempts,
                        wall_time=outcome.wall_time,
                        timed_out=outcome.timed_out,
                    ))
                    continue
                payload = store.get(key)
                if payload is None:
                    self._record_failure(run, name, key, JobFailure(
                        workload=name,
                        error="worker reported success but no stored "
                              "result was found",
                        attempts=outcome.attempts if outcome else 1,
                    ))
                    continue
                result = result_from_dict(payload)
                self._memo[key] = result
                run.results[name] = result
                run.metrics.add(JobMetric(
                    workload=name, key=key, status=STATUS_COMPUTED,
                    wall_time=outcome.wall_time, instructions=result.nodes,
                    attempts=outcome.attempts,
                ))
        finally:
            if scratch is not None:
                scratch.cleanup()

    # ------------------------------------------------------------------
    # Helpers.
    # ------------------------------------------------------------------

    def _load(self, key: str):
        if self.store is None:
            return None
        payload = self.store.get(key)
        if payload is None:
            return None
        return result_from_dict(payload)

    def _record_failure(self, run: ExperimentRun, name: str, key: str,
                        failure: JobFailure) -> None:
        run.failures[name] = failure
        run.metrics.add(JobMetric(
            workload=name, key=key, status=STATUS_FAILED,
            wall_time=failure.wall_time, attempts=failure.attempts,
            error=failure.error.strip().splitlines()[-1]
            if failure.error else "",
        ))

    def clear_memo(self) -> None:
        """Drop the in-process memo (the disk store is untouched)."""
        self._memo.clear()


# ----------------------------------------------------------------------
# The shared default runner.
# ----------------------------------------------------------------------

_DEFAULT_RUNNER: ExperimentRunner | None = None


def default_store() -> ResultStore | None:
    """The store the default runner uses, honouring the environment."""
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    return ResultStore(root, max_bytes=DEFAULT_MAX_BYTES)


def default_runner() -> ExperimentRunner:
    """The process-wide runner every consumer shares."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = ExperimentRunner(
            store=default_store(),
            jobs=int(os.environ.get("REPRO_JOBS", "1")),
        )
    return _DEFAULT_RUNNER


def reset_default_runner() -> None:
    """Forget the shared runner (tests re-read the environment)."""
    global _DEFAULT_RUNNER
    _DEFAULT_RUNNER = None
