"""Experiment orchestration: jobs -> pool -> store -> results.

:class:`ExperimentRunner` is the one place experiment execution
happens; the report layer, the benchmark harness and the CLI all
delegate here, so they share a single warm store.  Resolution order
for every job:

1. **in-process memo** — same object back, zero cost (preserves the
   old ``_CACHE`` identity semantics);
2. **disk store** — deserialised via
   :func:`repro.core.export.result_from_dict`; renders byte-identical
   exhibits;
3. **trace replay** — a stored trace of the same *execution*
   (:func:`repro.runner.job.trace_key`) is decoded and re-analysed
   under the job's config, skipping simulation;
4. **compute** — simulate, store the captured trace for the next
   config, analyse, then write through to every layer.

The sweep entry point :meth:`ExperimentRunner.run_many` goes further:
jobs that miss both disk tiers are grouped by execution identity and
each group is simulated (or replayed) exactly once, with
:func:`repro.core.analyze_many` fanning the single pass out to one
analyzer per config.

Parallel runs ship nothing through pipes: each worker writes its
result into the store (content-addressed by job key, atomic replace)
and the parent reads it back.  The store *is* the transport, which is
also why a ``--no-cache`` parallel run still uses one — a throwaway
store in a temp directory.

Environment knobs (read at :func:`default_runner` construction):

* ``REPRO_CACHE_DIR`` — store location (default ``.repro-cache/``);
* ``REPRO_NO_CACHE`` — set to disable the disk store entirely;
* ``REPRO_JOBS`` — default worker count for suite runs.
"""

from __future__ import annotations

import logging
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from itertools import islice

from repro.core import analyze_machine, analyze_many, analyze_trace
from repro.core.export import result_from_dict, result_to_dict
from repro.core.kernel import (
    AnalysisEngine,
    TraceColumns,
    coerce_engine,
    get_default_engine,
    resolve_engine,
)
from repro.errors import (
    JournalConflict,
    RunnerError,
    RunnerInterrupted,
    error_for_kind,
)
from repro.obs import (
    ObsConfig,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
    write_jsonl,
)
from repro.runner.cache import DEFAULT_MAX_BYTES, ResultStore
from repro.runner.faults import FaultPlan, set_fault_plan
from repro.runner.journal import (
    JOURNAL_NAME,
    STATUS_DONE,
    STATUS_FAILED as JOURNAL_FAILED,
    RunJournal,
)
from repro.runner.job import (
    ExperimentConfig,
    Job,
    JobFailure,
    job_key,
    trace_key,
)
from repro.runner.metrics import (
    STATUS_CACHE_HIT,
    STATUS_COMPUTED,
    STATUS_FAILED,
    STATUS_MEMO_HIT,
    STATUS_REPLAYED,
    JobMetric,
    RunMetrics,
)
from repro.runner.policy import (
    ExecutionPolicy,
    assert_excluded_from_identity,
    resolve_policy,
)
from repro.runner.tracestore import DEFAULT_TRACE_MAX_BYTES, TraceStore
from repro.runner.pool import Task, TaskError, TaskPool
from repro.workloads import SUITE, get_workload

_log = logging.getLogger(__name__)

#: Default store location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def _store_put_safe(store: ResultStore, key: str, payload: dict) -> bool:
    """Write through the store, degrading gracefully on I/O failure.

    A result that cannot be cached is still a result: the caller keeps
    the in-memory object (serial paths) or recomputes inline (parallel
    read-back), so a sick disk slows the run instead of sinking it.
    """
    try:
        store.put(key, payload)
        return True
    except OSError as error:
        get_recorder().count("store.result.write_errors", 1)
        _log.warning("result store write failed (%s); continuing "
                     "without the cached copy", error)
        return False


@dataclass
class ExperimentRun:
    """Outcome of one suite run.

    ``results`` holds every successful workload in request order;
    ``failures`` the rest.  ``metrics`` always covers both.
    """

    results: dict = field(default_factory=dict)
    failures: dict = field(default_factory=dict)
    metrics: RunMetrics = field(default_factory=RunMetrics)
    journal_path: str | None = None

    def require(self) -> dict:
        """The results, raising on interruption or any failure.

        An interrupted (checkpointed) run raises
        :class:`~repro.errors.RunnerInterrupted`.  Failures raise the
        :class:`~repro.errors.RunnerError` subclass matching the
        failures' ``kind`` when they all agree (e.g. every job timed
        out → :class:`~repro.errors.TimeoutExceeded`), the plain base
        class otherwise.
        """
        if self.metrics.interrupted:
            raise RunnerInterrupted(
                f"run interrupted: {len(self.results)} job(s) "
                f"checkpointed, the rest never ran; re-run with "
                f"resume=True (CLI: --resume) to pick up from the "
                f"journal",
                failures=self.failures,
                journal_path=self.journal_path,
            )
        if self.failures:
            detail = "; ".join(
                f"{name}: "
                f"{(failure.error.strip().splitlines() or ['unknown'])[-1]}"
                for name, failure in self.failures.items()
            )
            kinds = {failure.kind for failure in self.failures.values()}
            error_class = (error_for_kind(next(iter(kinds)))
                           if len(kinds) == 1 else RunnerError)
            raise error_class(
                f"{len(self.failures)} job(s) failed: {detail}",
                failures=self.failures,
            )
        return self.results


def _analyze(name: str, config: ExperimentConfig, engine=None):
    workload = get_workload(name)
    machine = workload.machine(scale=config.scale)
    job = Job(name, config)
    return analyze_machine(machine, name, job.analysis_config(),
                           engine=engine)


def _capture(name: str, config: ExperimentConfig, budget: int | None):
    """Simulate and record: ``(n_static, records, complete)``.

    ``budget`` bounds how much of the execution is captured (None =
    run to halt); ``complete`` reports whether the machine halted
    within it.
    """
    workload = get_workload(name)
    machine = workload.machine(scale=config.scale)
    with get_recorder().span("simulate"):
        stream = machine.trace()
        if budget is not None:
            stream = islice(stream, budget)
        records = list(stream)
        del stream  # close the generator: flush its sim.* counters
    return len(machine.program.instructions), records, machine.halted


def _maybe_write_segindex(trace_store: TraceStore, key: str, columns,
                          policy: ExecutionPolicy | None) -> None:
    """Persist a segment-index sidecar for a stored columnar trace.

    Only when the policy opts into sharding (``segments > 1``), the
    trace is long enough for at least two ``segment_records`` spans,
    and no sidecar exists yet (the build costs about one analysis
    pass, so it runs once per stored trace).  Failure is never fatal:
    an unwritable sidecar just means serial analysis.
    """
    if policy is None or policy.segments <= 1:
        return
    if trace_store.has_segindex(key):
        return
    from repro.core.shard import build_index, plan_bounds

    n = columns.n_records
    spans = n // policy.segment_records
    if spans < 2:
        return
    try:
        with get_recorder().span("shard.index.build"):
            index = build_index(columns, plan_bounds(n, spans))
        trace_store.put_segindex(key, index)
        get_recorder().count("shard.index.built", 1)
    except Exception as error:  # derived data: degrade, don't fail
        _log.warning("segment index build failed (%s); trace stays "
                     "serial", error)


def _try_segmented(name: str, analysis_config, config: ExperimentConfig,
                   trace_store: TraceStore, policy: ExecutionPolicy):
    """Segment-parallel replay of a stored, indexed trace, or None.

    None means "take the serial path" — trace missing or too short for
    its budget, no (or unusable) sidecar, or a segment task failing
    every retry.  Every fallback is counted so operators can see why
    sharding did not engage.
    """
    from repro.core.shard import ShardError, analyze_trace_file_segmented

    key = trace_key(name, config.scale)
    header = trace_store.header(key)
    if header is None or not trace_store._serves(
            header, config.max_instructions):
        return None
    index = trace_store.get_segindex(key)
    if index is None:
        return None
    pool = TaskPool(max_workers=policy.jobs, timeout=policy.timeout,
                    retries=policy.retries)
    try:
        result = analyze_trace_file_segmented(
            trace_store.path_for(key), analysis_config, index, pool,
            name=name, segments=policy.segments,
        )
    except ShardError as error:
        get_recorder().count("analyze.shard.fallback", 1)
        _log.info("segmented analysis unavailable (%s); running "
                  "serial", error)
        return None
    get_recorder().count("analyze.shard.runs", 1)
    trace_store._hit()
    trace_store._touch(trace_store.path_for(key))
    return result


def _resolve_trace(name: str, config: ExperimentConfig,
                   trace_store: TraceStore | None, budget: int | None,
                   columns: bool = False,
                   policy: ExecutionPolicy | None = None):
    """Trace tier: ``(n_static, records, status)`` — replay or capture.

    A stored trace that covers ``budget`` is replayed
    (:data:`STATUS_REPLAYED`); otherwise the workload is simulated,
    the capture written through the store for the next config, and
    :data:`STATUS_COMPUTED` reported.  ``columns=True`` replays the
    stored trace as :class:`~repro.core.kernel.TraceColumns` (the
    columnar engine's format) instead of a ``DynInst`` list, so a warm
    replay skips per-record object construction entirely; a cold
    capture persists the records first, then hands back (and memoizes
    on the store) their columnar layout.
    """
    key = None
    if trace_store is not None:
        key = trace_key(name, config.scale)
        stored = trace_store.get(key, budget, columns=columns)
        if stored is not None:
            header, records = stored
            if columns:
                # Backfill the sidecar on first sharded-policy replay
                # so the *next* replay can go segment-parallel.
                _maybe_write_segindex(trace_store, key, records, policy)
            return header["n_static"], records, STATUS_REPLAYED
    n_static, records, complete = _capture(name, config, budget)
    stored_ok = False
    if trace_store is not None:
        try:
            trace_store.put(key, records, n_static, complete=complete,
                            workload=name)
            stored_ok = True
        except OSError as error:
            # A trace that cannot be stored only costs the *next*
            # config a re-simulation; never fail the current job.
            get_recorder().count("store.trace.write_errors", 1)
            _log.warning("trace store write failed (%s); continuing "
                         "without the stored trace", error)
    if columns:
        recorder = get_recorder()
        with recorder.span("trace.decode"):
            records = TraceColumns.from_records(records, n_static)
        recorder.count("trace.decode.records", records.n_records)
        recorder.count("trace.decode.columnar", 1)
        if stored_ok:
            trace_store.memoize_columns(
                key,
                {"n_static": n_static, "n_records": records.n_records,
                 "complete": complete},
                records,
            )
            _maybe_write_segindex(trace_store, key, records, policy)
    return n_static, records, STATUS_COMPUTED


def _analyze_two_tier(name: str, config: ExperimentConfig,
                      trace_store: TraceStore, engine=None,
                      policy: ExecutionPolicy | None = None,
                      allow_shard: bool = True):
    """Compute one job through the trace tier: ``(result, status)``.

    Byte-identical to :func:`_analyze`: the analyzer sees the same
    record stream whether it comes from a live machine or a stored
    trace (``analyze_trace`` re-truncates to the config's own budget).
    The engine is resolved up front so a columnar analysis can ask the
    trace store for columns directly.

    With a sharded policy (``segments > 1``) and a stored, indexed
    trace, the columnar analysis runs segment-parallel across a
    :class:`TaskPool` — byte-identical to serial by the parity suite's
    guarantee.  ``allow_shard=False`` disables the attempt (pool
    workers never nest pools) while still writing capture-time
    sidecars.
    """
    job = Job(name, config)
    analysis_config = job.analysis_config()
    resolved = resolve_engine(engine, (analysis_config,))
    columnar = resolved is AnalysisEngine.COLUMNAR
    if (allow_shard and columnar and policy is not None
            and policy.segments > 1):
        result = _try_segmented(name, analysis_config, config,
                                trace_store, policy)
        if result is not None:
            return result, STATUS_REPLAYED
    n_static, records, status = _resolve_trace(
        name, config, trace_store, config.max_instructions,
        columns=columnar, policy=policy,
    )
    result = analyze_trace(
        records, n_static, name=name, config=analysis_config,
        engine=resolved,
    )
    return result, status


def _execute_job(name: str, config: ExperimentConfig, key: str,
                 store_root: str, max_bytes: int,
                 trace_root: str | None = None,
                 trace_max_bytes: int = DEFAULT_TRACE_MAX_BYTES,
                 observe: bool = False, engine: str | None = None,
                 policy: ExecutionPolicy | None = None) -> tuple:
    """Pool worker: compute one job and write it through the store.

    Returns ``(key, profile)`` — the key so the parent knows where to
    read the result, and (when ``observe``) the worker's own recorder
    snapshot for the parent to merge, else None.  Runs in a separate
    process; must stay picklable/module-level — which is why
    ``engine`` travels as its string value.  ``policy`` rides along
    for capture-time sidecar writes; workers never shard themselves
    (``allow_shard=False`` — no nested pools).
    """
    with recording(Recorder() if observe else None) as rec:
        store = ResultStore(store_root, max_bytes=max_bytes)
        if store.get(key) is None:
            if trace_root is not None:
                trace_store = TraceStore(
                    trace_root, max_bytes=trace_max_bytes
                )
                result, __ = _analyze_two_tier(name, config, trace_store,
                                               engine=engine,
                                               policy=policy,
                                               allow_shard=False)
            else:
                result = _analyze(name, config, engine=engine)
            _store_put_safe(store, key, result_to_dict(result))
    return key, (rec.snapshot() if observe else None)


def _execute_sweep(name: str, configs, keys, store_root: str,
                   max_bytes: int, trace_root: str | None,
                   trace_max_bytes: int, observe: bool = False,
                   engine: str | None = None,
                   policy: ExecutionPolicy | None = None) -> tuple:
    """Pool worker: every sweep job of one workload in a single pass.

    Resolves the workload's trace once (replay or capture) with a
    budget covering the largest config, then fans it out to one
    analyzer per still-missing config via :func:`analyze_many`.
    Returns ``(keys, profile)`` (profile as in :func:`_execute_job`).
    """
    with recording(Recorder() if observe else None) as rec:
        store = ResultStore(store_root, max_bytes=max_bytes)
        missing = [
            (config, key) for config, key in zip(configs, keys)
            if store.get(key) is None
        ]
        if missing:
            budgets = [config.max_instructions for config, __ in missing]
            budget = (None if any(b is None for b in budgets)
                      else max(budgets))
            trace_store = (
                TraceStore(trace_root, max_bytes=trace_max_bytes)
                if trace_root is not None else None
            )
            analysis_configs = [Job(name, config).analysis_config()
                                for config, __ in missing]
            resolved = resolve_engine(engine, analysis_configs)
            n_static, records, __ = _resolve_trace(
                name, missing[0][0], trace_store, budget,
                columns=resolved is AnalysisEngine.COLUMNAR,
                policy=policy,
            )
            results = analyze_many(
                records, n_static, analysis_configs, name=name,
                engine=resolved,
            )
            for (__, key), result in zip(missing, results):
                _store_put_safe(store, key, result_to_dict(result))
    return tuple(keys), (rec.snapshot() if observe else None)


class _SegmentedJob:
    """Parent-side merge state for one job fanned out as segment tasks.

    ``absorb`` feeds settled segment outcomes (any order — payloads
    buffer until their turn) into the sequential
    :class:`~repro.core.shard.SegmentMerge`; ``result`` is set once
    the last segment merges, ``failed`` once any segment exhausts its
    retries or the merge itself raises.
    """

    __slots__ = ("name", "key", "tasks", "merge", "total", "pending",
                 "next", "failed", "wall", "attempts", "result")

    def __init__(self, name: str, key: str, tasks, merge):
        self.name = name
        self.key = key
        self.tasks = tasks
        self.merge = merge
        self.total = len(tasks)
        self.pending: dict[int, object] = {}
        self.next = 0
        self.failed: str | None = None
        self.wall = 0.0
        self.attempts = 1
        self.result = None

    def absorb(self, idx: int, outcome) -> None:
        if self.failed is not None:
            return
        if isinstance(outcome, TaskError):
            tail = (outcome.error.strip().splitlines()[-1]
                    if outcome.error else "")
            self.failed = (f"segment {idx} failed after "
                           f"{outcome.attempts} attempt(s) "
                           f"({outcome.kind}): {tail}")
            return
        self.wall += outcome.wall_time
        self.attempts = max(self.attempts, outcome.attempts)
        self.pending[idx] = outcome.value
        try:
            while self.next in self.pending:
                self.merge.add(self.pending.pop(self.next))
                self.next += 1
            if self.next == self.total:
                self.result = self.merge.finalize()
        except Exception as error:
            self.failed = f"segment merge failed: {error}"


def _note(run: ExperimentRun, metric: JobMetric) -> None:
    """Record a job outcome in the run metrics *and* the recorder.

    Every resolution lands here, so ``runner.resolve.<status>``
    counters always reconcile with the :class:`RunMetrics` job list.
    """
    get_recorder().count(f"runner.resolve.{metric.status}", 1)
    run.metrics.add(metric)


class ExperimentRunner:
    """Owns the memo, the store and the pool for experiment suites.

    Args:
        store: a :class:`ResultStore`, or None to run without a disk
            cache (in-process memo only).
        jobs: default worker count for :meth:`run`.
        timeout: per-job wall-clock limit in seconds (parallel runs).
        retries: extra attempts for a failed job (parallel runs).
        trace_store: a :class:`TraceStore`, or None to simulate on
            every result-tier miss (no trace capture or replay).
        observe: ``True`` or an :class:`repro.obs.ObsConfig` to record
            a profile (spans + counters) per run and attach it to the
            run's metrics; ``False`` (default) records nothing.
        faults: a :class:`repro.runner.faults.FaultPlan` installed for
            the duration of each run — the chaos-testing channel; None
            (default) injects nothing.
        policy: an :class:`~repro.runner.policy.ExecutionPolicy`
            consolidating every execution knob (engine, jobs, timeout,
            retries, segments, segment_records).  Policy is execution,
            never identity: job keys exclude all of it, so changing
            how work runs always hits the same caches.
        jobs / timeout / retries / engine: **deprecated** — the same
            knobs as loose kwargs.  Each one used emits a
            ``DeprecationWarning`` and is folded into the policy
            (overriding it); pass ``policy=`` instead.  See
            docs/api.md for the migration table.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int | None = None,
        timeout: float | None = None,
        retries: int | None = None,
        trace_store: TraceStore | None = None,
        observe: bool | ObsConfig = False,
        faults: FaultPlan | None = None,
        engine: AnalysisEngine | str | None = None,
        policy: ExecutionPolicy | None = None,
    ):
        engine_value = None
        if engine is not None:
            engine_value = coerce_engine(engine).value
        self.policy = resolve_policy(
            policy, jobs=jobs, timeout=timeout, retries=retries,
            engine=engine_value, owner="ExperimentRunner",
        )
        assert_excluded_from_identity()
        self.store = store
        self.trace_store = trace_store
        self.obs = self._normalize_obs(observe)
        self.faults = faults
        self._memo: dict[str, object] = {}
        #: run-scoped state (set by run()/run_many(), read by the
        #: serial/parallel strategies; the runner is not thread-safe).
        self._journal: RunJournal | None = None
        self._cancel = None

    @staticmethod
    def _normalize_obs(observe: bool | ObsConfig) -> ObsConfig:
        if isinstance(observe, ObsConfig):
            return observe
        return ObsConfig(enabled=bool(observe))

    # ------------------------------------------------------------------
    # Legacy execution-knob views (the policy is the source of truth).
    # ------------------------------------------------------------------

    @property
    def jobs(self) -> int:
        return self.policy.jobs

    @property
    def timeout(self) -> float | None:
        return self.policy.timeout

    @property
    def retries(self) -> int:
        return self.policy.retries

    @property
    def engine(self) -> AnalysisEngine | None:
        return (None if self.policy.engine is None
                else coerce_engine(self.policy.engine))

    # ------------------------------------------------------------------
    # Observation lifecycle.
    # ------------------------------------------------------------------

    def _begin_observation(self):
        """Start observing this run if configured; returns a token.

        When an *enabled* recorder is already installed (the caller is
        running inside :func:`repro.obs.recording`), it is borrowed —
        its snapshot is then cumulative and the caller keeps ownership.
        Otherwise a fresh :class:`Recorder` is installed for the run
        and the previous (no-op) recorder restored afterwards.
        """
        if not self.obs.enabled:
            return None
        current = get_recorder()
        if current.enabled:
            return (current, None, False)
        rec = Recorder()
        return (rec, set_recorder(rec), True)

    def _finish_observation(self, token) -> dict | None:
        """End observation; returns the profile snapshot (or None)."""
        if token is None:
            return None
        rec, previous, owned = token
        if owned:
            set_recorder(previous)
        profile = rec.snapshot()
        if self.obs.events_path:
            try:
                write_jsonl(profile, self.obs.events_path)
            except OSError:
                pass  # observation must never sink a run
        return profile

    # ------------------------------------------------------------------
    # Fault-injection and journal lifecycle.
    # ------------------------------------------------------------------

    def _begin_faults(self):
        """Install this runner's fault plan for the run; returns a
        restore token (None when the runner injects nothing)."""
        if self.faults is None:
            return None
        return (set_fault_plan(self.faults),)

    def _finish_faults(self, token) -> None:
        if token is not None:
            set_fault_plan(token[0])

    def _open_journal(self, resume: bool) -> RunJournal | None:
        """The run's crash-safety journal (``<cache>/journal.jsonl``).

        Journaling needs a disk store (the journal records that a
        result was durably published *there*).  An unavailable journal
        — locked by a live sibling process, unwritable directory —
        degrades to running without checkpointing rather than failing
        the run.
        """
        if self.store is None:
            return None
        journal = RunJournal(self.store.root / JOURNAL_NAME, resume=resume)
        try:
            return journal.open()
        except JournalConflict as error:
            get_recorder().count("journal.conflicts", 1)
            _log.warning("journal unavailable (%s); running without "
                         "crash-safe checkpointing", error)
            return None
        except OSError as error:
            _log.warning("journal unwritable (%s); running without "
                         "crash-safe checkpointing", error)
            return None

    def _journal_record(self, key: str, workload: str,
                        status: str) -> None:
        if self._journal is not None and key:
            self._journal.record(key, workload, status)

    def _journal_check(self, key: str, name: str, hit) -> None:
        """Reconcile a journaled-done job against the store."""
        if self._journal is None or not self._journal.completed(key):
            return
        if hit is None:
            self._journal.conflict(key, name)
        else:
            get_recorder().count("journal.skips", 1)

    def _cancelled(self) -> bool:
        return self._cancel is not None and self._cancel.is_set()

    def _safe_put(self, key: str, result) -> None:
        if self.store is not None:
            _store_put_safe(self.store, key, result_to_dict(result))

    def _effective_engine(self) -> AnalysisEngine:
        """This runner's engine, falling back to the process default.

        Resolved eagerly when handing work to pool workers: a fresh
        worker process starts with the built-in default, so the
        parent's configured default must travel with the task.
        """
        if self.engine is not None:
            return self.engine
        return get_default_engine()

    def _compute(self, name: str, config: ExperimentConfig,
                 allow_shard: bool = True):
        """Compute one job through whichever tiers exist:
        ``(result, status)``."""
        if self.trace_store is not None:
            return _analyze_two_tier(name, config, self.trace_store,
                                     engine=self.engine,
                                     policy=self.policy,
                                     allow_shard=allow_shard)
        return _analyze(name, config, engine=self.engine), STATUS_COMPUTED

    # ------------------------------------------------------------------
    # Single-job path (the report layer's run_workload).
    # ------------------------------------------------------------------

    def run_one(self, name: str, config: ExperimentConfig):
        """Analyse one workload in-process; exceptions propagate.

        Repeat calls with an equal config return the identical object
        (memo), so exhibit code can rely on result identity.  When the
        runner observes, the call's profile is attached to the result
        (``result.profile``).
        """
        token = self._begin_observation()
        fault_token = self._begin_faults()
        try:
            with get_recorder().span("runner.run_one"):
                result = self._run_one_impl(name, config)
        finally:
            self._finish_faults(fault_token)
            profile = self._finish_observation(token)
        if profile is not None:
            result.profile = profile
        return result

    def _run_one_impl(self, name: str, config: ExperimentConfig):
        key = job_key(Job(name, config))
        result = self._memo.get(key)
        if result is not None:
            get_recorder().count(
                f"runner.resolve.{STATUS_MEMO_HIT}", 1
            )
            return result
        result = self._load(key)
        if result is not None:
            get_recorder().count(
                f"runner.resolve.{STATUS_CACHE_HIT}", 1
            )
        else:
            result, status = self._compute(name, config)
            get_recorder().count(f"runner.resolve.{status}", 1)
            if self.store is not None:
                self.store.put(key, result_to_dict(result))
        self._memo[key] = result
        return result

    # ------------------------------------------------------------------
    # Suite path.
    # ------------------------------------------------------------------

    def run(self, config: ExperimentConfig | None = None,
            jobs: int | None = None, resume: bool = False,
            cancel=None) -> ExperimentRun:
        """Run every configured workload; never raises for job errors.

        A job that fails to hash, times out, crashes or raises is
        recorded as a :class:`JobFailure` in ``run.failures``; the
        remaining jobs complete normally.  When the runner observes,
        the run's profile lands in ``run.metrics.profile``.

        When a disk store is configured the run keeps a write-ahead
        journal next to it; ``resume=True`` replays a previous
        (interrupted) run's journal.  ``cancel`` is an optional
        :class:`threading.Event`: once set, in-flight jobs drain and
        are checkpointed, the rest never start, and the returned run
        has ``metrics.interrupted`` set.
        """
        token = self._begin_observation()
        fault_token = self._begin_faults()
        self._journal = self._open_journal(resume)
        self._cancel = cancel
        try:
            with get_recorder().span("runner.run"):
                run = self._run_impl(config, jobs)
            if self._journal is not None:
                run.journal_path = str(self._journal.path)
        finally:
            if self._journal is not None:
                self._journal.close()
            self._journal = None
            self._cancel = None
            self._finish_faults(fault_token)
            profile = self._finish_observation(token)
        run.metrics.profile = profile
        return run

    def _run_impl(self, config: ExperimentConfig | None,
                  jobs: int | None) -> ExperimentRun:
        config = config or ExperimentConfig()
        workers = max(1, jobs if jobs is not None else self.jobs)
        names = config.workloads or tuple(w.name for w in SUITE)
        run = ExperimentRun()
        run.metrics.requested_workers = workers
        run.metrics.policy = self.policy.describe()
        start = time.monotonic()

        # Hash every job; a workload whose compile/input generation
        # blows up fails here without sinking the suite.  Unknown names
        # still raise — that is a caller bug, not a job fault.
        keyed: list[tuple[str, str]] = []
        for name in names:
            get_workload(name)
            try:
                keyed.append((name, job_key(Job(name, config))))
            except Exception as error:
                self._record_failure(run, name, "", JobFailure(
                    workload=name, error=f"{type(error).__name__}: {error}",
                ))

        # Serve memo/store hits; collect the rest for execution.
        misses: list[tuple[str, str]] = []
        for name, key in keyed:
            hit = self._memo.get(key)
            status = STATUS_MEMO_HIT
            if hit is None:
                hit = self._load(key)
                status = STATUS_CACHE_HIT
                self._journal_check(key, name, hit)
            if hit is None:
                misses.append((name, key))
                continue
            self._memo[key] = hit
            run.results[name] = hit
            _note(run, JobMetric(workload=name, key=key, status=status))

        if misses and not self._cancelled():
            if workers == 1 or len(misses) == 1:
                self._run_serial(run, config, misses)
            else:
                self._run_parallel(run, config, misses, workers)

        if self._cancelled():
            run.metrics.interrupted = True

        # Present results in request order regardless of completion order.
        run.results = {
            name: run.results[name] for name in names if name in run.results
        }
        run.metrics.jobs.sort(key=lambda m: names.index(m.workload))
        run.metrics.total_wall = time.monotonic() - start
        return run

    # ------------------------------------------------------------------
    # Sweep path: many configs over one trace capture per workload.
    # ------------------------------------------------------------------

    def run_many(self, configs, jobs: int | None = None,
                 resume: bool = False, cancel=None,
                 ) -> list[ExperimentRun]:
        """Run a config sweep; each workload is simulated at most once.

        Returns one :class:`ExperimentRun` per config, aligned with
        ``configs``.  Jobs missing from both disk tiers are grouped by
        execution identity (workload + scale), each group resolves its
        trace once — stored replay or a single capture with a budget
        covering the group's largest config — and
        :func:`repro.core.analyze_many` fans the one pass out to every
        config.  Failures follow :meth:`run` semantics: recorded per
        job, never raised.  When the runner observes, the sweep's one
        shared profile is attached to every run's metrics.

        ``resume`` / ``cancel`` follow :meth:`run`: each job's
        terminal state is journaled (fsync'd) before its result is
        published, a set ``cancel`` event drains in-flight work and
        checkpoints, and a resumed sweep re-executes only the jobs not
        journaled as complete.
        """
        token = self._begin_observation()
        fault_token = self._begin_faults()
        self._journal = self._open_journal(resume)
        self._cancel = cancel
        try:
            with get_recorder().span("runner.sweep"):
                runs = self._run_many_impl(configs, jobs)
            if self._journal is not None:
                for run in runs:
                    run.journal_path = str(self._journal.path)
        finally:
            if self._journal is not None:
                self._journal.close()
            self._journal = None
            self._cancel = None
            self._finish_faults(fault_token)
            profile = self._finish_observation(token)
        if profile is not None:
            for run in runs:
                run.metrics.profile = profile
        return runs

    def _run_many_impl(self, configs, jobs: int | None,
                       ) -> list[ExperimentRun]:
        configs = list(configs)
        workers = max(1, jobs if jobs is not None else self.jobs)
        runs = [ExperimentRun() for __ in configs]
        name_lists = []
        start = time.monotonic()

        # Serve memo/store hits; group the rest by execution identity.
        groups: dict[tuple, list] = {}
        for run, config in zip(runs, configs):
            run.metrics.requested_workers = workers
            run.metrics.policy = self.policy.describe()
            names = config.workloads or tuple(w.name for w in SUITE)
            name_lists.append(names)
            for name in names:
                get_workload(name)
                try:
                    key = job_key(Job(name, config))
                except Exception as error:
                    self._record_failure(run, name, "", JobFailure(
                        workload=name,
                        error=f"{type(error).__name__}: {error}",
                    ))
                    continue
                hit = self._memo.get(key)
                status = STATUS_MEMO_HIT
                if hit is None:
                    hit = self._load(key)
                    status = STATUS_CACHE_HIT
                    self._journal_check(key, name, hit)
                if hit is None:
                    groups.setdefault((name, config.scale), []).append(
                        (run, config, key)
                    )
                    continue
                self._memo[key] = hit
                run.results[name] = hit
                _note(run, JobMetric(workload=name, key=key, status=status))

        if groups and not self._cancelled():
            if workers == 1 or len(groups) == 1:
                self._sweep_serial(groups)
            else:
                self._sweep_parallel(groups, workers)

        total = time.monotonic() - start
        interrupted = self._cancelled()
        for run, names in zip(runs, name_lists):
            run.results = {
                name: run.results[name]
                for name in names if name in run.results
            }
            run.metrics.jobs.sort(key=lambda m: names.index(m.workload))
            run.metrics.total_wall = total
            run.metrics.interrupted = interrupted
        return runs

    def _sweep_serial(self, groups) -> None:
        for (name, __scale), entries in groups.items():
            if self._cancelled():
                return
            for run, __, __k in entries:
                run.metrics.peak_workers = max(run.metrics.peak_workers, 1)
            group_start = time.monotonic()
            budgets = [config.max_instructions for __, config, __k in entries]
            budget = (None if any(b is None for b in budgets)
                      else max(budgets))
            try:
                analysis_configs = [Job(name, config).analysis_config()
                                    for __, config, __k in entries]
                resolved = resolve_engine(self.engine, analysis_configs)
                n_static, records, status = _resolve_trace(
                    name, entries[0][1], self.trace_store, budget,
                    columns=resolved is AnalysisEngine.COLUMNAR,
                )
                results = analyze_many(
                    records, n_static, analysis_configs, name=name,
                    engine=resolved,
                )
            except Exception as error:
                wall = time.monotonic() - group_start
                for run, __, key in entries:
                    self._record_failure(run, name, key, JobFailure(
                        workload=name,
                        error=f"{type(error).__name__}: {error}",
                        wall_time=wall,
                    ))
                continue
            # The group's one pass served every entry; split its cost.
            wall = (time.monotonic() - group_start) / len(entries)
            for (run, __, key), result in zip(entries, results):
                self._safe_put(key, result)
                self._journal_record(key, name, STATUS_DONE)
                self._memo[key] = result
                run.results[name] = result
                _note(run, JobMetric(
                    workload=name, key=key, status=status,
                    wall_time=wall, instructions=result.nodes, attempts=1,
                ))

    def _sweep_parallel(self, groups, workers: int) -> None:
        scratch = None
        store = self.store
        if store is None:
            scratch = tempfile.TemporaryDirectory(prefix="repro-runner-")
            store = ResultStore(scratch.name)
        trace_root, trace_max = self._trace_store_args()
        try:
            pool = TaskPool(max_workers=workers, timeout=self.timeout,
                            retries=self.retries)
            observing = get_recorder().enabled
            tasks = [
                Task(key=f"{name}@{scale}", fn=_execute_sweep,
                     args=(name,
                           tuple(config for __, config, __k in entries),
                           tuple(key for __, __c, key in entries),
                           str(store.root), store.max_bytes,
                           trace_root, trace_max, observing,
                           self._effective_engine().value, self.policy))
                for (name, scale), entries in groups.items()
            ]
            pool_run = pool.run(tasks, cancel=self._cancel)
            self._merge_worker_profiles(pool_run.outcomes)
            for (name, scale), entries in groups.items():
                for run, __, __k in entries:
                    run.metrics.peak_workers = max(
                        run.metrics.peak_workers, pool_run.peak_workers
                    )
                outcome = pool_run.outcomes.get(f"{name}@{scale}")
                if outcome is None and pool_run.cancelled:
                    continue  # never launched: not a failure, just unrun
                if isinstance(outcome, TaskError):
                    for run, __, key in entries:
                        failure = JobFailure(
                            workload=name, error=outcome.error,
                            attempts=outcome.attempts,
                            wall_time=outcome.wall_time,
                            timed_out=outcome.timed_out,
                            kind=outcome.kind,
                        )
                        self._journal_record(key, name, JOURNAL_FAILED)
                        self._record_failure(run, name, key, failure)
                    continue
                wall = ((outcome.wall_time if outcome else 0.0)
                        / len(entries))
                attempts = outcome.attempts if outcome else 1
                for run, config, key in entries:
                    payload = store.get(key)
                    if payload is None:
                        # The worker reported success but its stored
                        # result is unreadable (torn write, eviction
                        # race, corruption): recompute in-process
                        # rather than failing a job that already ran.
                        result = self._recover_inline(run, name, config,
                                                      key, attempts)
                        if result is None:
                            continue
                    else:
                        result = result_from_dict(payload)
                    self._journal_record(key, name, STATUS_DONE)
                    self._memo[key] = result
                    run.results[name] = result
                    _note(run, JobMetric(
                        workload=name, key=key, status=STATUS_COMPUTED,
                        wall_time=wall, instructions=result.nodes,
                        attempts=attempts,
                    ))
        finally:
            if scratch is not None:
                scratch.cleanup()

    def _recover_inline(self, run, name: str, config, key: str,
                        attempts: int):
        """Recompute a job in-process after its stored result vanished.

        Returns the result, or None after recording the failure.
        """
        get_recorder().count("runner.recovered", 1)
        _log.warning("runner: %s completed in a worker but its stored "
                     "result is unreadable; recomputing in-process", name)
        try:
            result, __ = self._compute(name, config)
        except Exception as error:
            self._journal_record(key, name, JOURNAL_FAILED)
            self._record_failure(run, name, key, JobFailure(
                workload=name,
                error=f"{type(error).__name__}: {error}",
                attempts=attempts,
            ))
            return None
        self._safe_put(key, result)
        return result

    # ------------------------------------------------------------------
    # Execution strategies.
    # ------------------------------------------------------------------

    def _trace_store_args(self) -> tuple[str | None, int]:
        """(root, max_bytes) of the trace tier, for pool workers."""
        if self.trace_store is None:
            return None, 0
        return str(self.trace_store.root), self.trace_store.max_bytes

    @staticmethod
    def _merge_worker_profiles(outcomes) -> None:
        """Fold observing workers' snapshots into the parent recorder.

        Workers return ``(payload, profile)``; a worker that ran
        unobserved (or failed), or a segment task (whose value is a
        payload dict), contributes nothing.
        """
        recorder = get_recorder()
        if not recorder.enabled:
            return
        for outcome in outcomes.values():
            if isinstance(outcome, TaskError):
                continue
            value = outcome.value
            if (isinstance(value, tuple) and len(value) == 2
                    and value[1] is not None):
                recorder.merge(value[1])

    def _run_serial(self, run: ExperimentRun, config, misses) -> None:
        run.metrics.peak_workers = max(run.metrics.peak_workers, 1)
        for name, key in misses:
            if self._cancelled():
                return
            job_start = time.monotonic()
            try:
                result, status = self._compute(name, config)
            except Exception as error:
                self._journal_record(key, name, JOURNAL_FAILED)
                self._record_failure(run, name, key, JobFailure(
                    workload=name,
                    error=f"{type(error).__name__}: {error}",
                    wall_time=time.monotonic() - job_start,
                ))
                continue
            self._safe_put(key, result)
            self._journal_record(key, name, STATUS_DONE)
            self._memo[key] = result
            run.results[name] = result
            _note(run, JobMetric(
                workload=name, key=key, status=status,
                wall_time=time.monotonic() - job_start,
                instructions=result.nodes, attempts=1,
            ))

    def _prepare_segments(self, name: str, config, key: str):
        """Plan one miss as segment pool tasks, or None for a whole job.

        The segmented plan applies only when the policy shards, the
        engine resolves columnar, and the stored trace covers the
        budget with a usable sidecar index; everything else (including
        a cold capture, which has no trace to split yet) stays a
        whole-job task.
        """
        policy = self.policy
        if policy.segments <= 1 or self.trace_store is None:
            return None
        analysis_config = Job(name, config).analysis_config()
        resolved = resolve_engine(self.engine, (analysis_config,),
                                  record=False)
        if resolved is not AnalysisEngine.COLUMNAR:
            return None
        tkey = trace_key(name, config.scale)
        header = self.trace_store.header(tkey)
        if header is None or not self.trace_store._serves(
                header, config.max_instructions):
            return None
        index = self.trace_store.get_segindex(tkey)
        if index is None:
            return None
        from repro.core.shard import (
            ShardError,
            _segment_task,
            prepare_file_segments,
        )

        try:
            task_args, merge = prepare_file_segments(
                self.trace_store.path_for(tkey), analysis_config,
                index, policy.segments, name=name,
            )
        except (ShardError, OSError):
            get_recorder().count("analyze.shard.fallback", 1)
            return None
        tasks = [
            Task(key=f"{key}#seg{i}", fn=_segment_task, args=args)
            for i, args in enumerate(task_args)
        ]
        self.trace_store._hit()
        self.trace_store._touch(self.trace_store.path_for(tkey))
        return _SegmentedJob(name, key, tasks, merge)

    def _settle_segmented(self, run: ExperimentRun, config,
                          seg: "_SegmentedJob",
                          pool_cancelled: bool) -> None:
        """Publish a segmented job's merged result, or retry it whole.

        A segment task that failed every pool retry (or a merge error)
        falls back to serial recomputation in the parent — the whole
        job retries, and the result is byte-identical by the parity
        suite's guarantee.
        """
        name, key = seg.name, seg.key
        if seg.result is not None:
            get_recorder().count("analyze.shard.runs", 1)
            self._safe_put(key, seg.result)
            self._journal_record(key, name, STATUS_DONE)
            self._memo[key] = seg.result
            run.results[name] = seg.result
            _note(run, JobMetric(
                workload=name, key=key, status=STATUS_REPLAYED,
                wall_time=seg.wall, instructions=seg.result.nodes,
                attempts=seg.attempts,
            ))
            return
        if seg.failed is None and pool_cancelled:
            return  # segments never all ran: not a failure, just unrun
        get_recorder().count("analyze.shard.fallback", 1)
        _log.warning("runner: segmented %s failed (%s); retrying the "
                     "whole job serially", name, seg.failed)
        job_start = time.monotonic()
        try:
            result, status = self._compute(name, config,
                                           allow_shard=False)
        except Exception as error:
            self._journal_record(key, name, JOURNAL_FAILED)
            self._record_failure(run, name, key, JobFailure(
                workload=name,
                error=f"{type(error).__name__}: {error}",
                wall_time=time.monotonic() - job_start,
                attempts=seg.attempts + 1,
            ))
            return
        self._safe_put(key, result)
        self._journal_record(key, name, STATUS_DONE)
        self._memo[key] = result
        run.results[name] = result
        _note(run, JobMetric(
            workload=name, key=key, status=status,
            wall_time=time.monotonic() - job_start,
            instructions=result.nodes, attempts=seg.attempts + 1,
        ))

    def _run_parallel(self, run: ExperimentRun, config, misses,
                      workers: int) -> None:
        # A disk store is the result channel; without one, use a
        # throwaway store that only lives for this run.
        scratch = None
        store = self.store
        if store is None:
            scratch = tempfile.TemporaryDirectory(prefix="repro-runner-")
            store = ResultStore(scratch.name)
        try:
            pool = TaskPool(max_workers=workers, timeout=self.timeout,
                            retries=self.retries)
            trace_root, trace_max = self._trace_store_args()
            observing = get_recorder().enabled
            # Jobs whose stored trace carries a usable segment index
            # fan out as per-segment tasks; the rest run whole.  Both
            # kinds share the one pool, so segments schedule alongside
            # whole jobs and fill its idle slots.
            tasks = []
            whole: list[tuple[str, str]] = []
            seg_jobs: dict[str, _SegmentedJob] = {}
            for name, key in misses:
                seg = self._prepare_segments(name, config, key)
                if seg is not None:
                    seg_jobs[key] = seg
                    tasks.extend(seg.tasks)
                    continue
                whole.append((name, key))
                tasks.append(Task(
                    key=key, fn=_execute_job,
                    args=(name, config, key, str(store.root),
                          store.max_bytes, trace_root, trace_max,
                          observing, self._effective_engine().value,
                          self.policy),
                ))
            outcomes: dict = {}
            stats: dict = {}
            # Stream so each segmented job's sequential merge overlaps
            # the still-running workers.
            for tkey, outcome in pool.run_stream(
                    tasks, cancel=self._cancel, stats=stats):
                outcomes[tkey] = outcome
                jkey, sep, idx = tkey.partition("#seg")
                if sep and jkey in seg_jobs:
                    seg_jobs[jkey].absorb(int(idx), outcome)
            pool_cancelled = stats.get("cancelled", False)
            self._merge_worker_profiles(outcomes)
            run.metrics.peak_workers = max(
                run.metrics.peak_workers, stats.get("peak", 0)
            )
            for seg in seg_jobs.values():
                self._settle_segmented(run, config, seg, pool_cancelled)
            for name, key in whole:
                outcome = outcomes.get(key)
                if outcome is None and pool_cancelled:
                    continue  # never launched: not a failure, just unrun
                if isinstance(outcome, TaskError):
                    failure = JobFailure(
                        workload=name, error=outcome.error,
                        attempts=outcome.attempts,
                        wall_time=outcome.wall_time,
                        timed_out=outcome.timed_out,
                        kind=outcome.kind,
                    )
                    self._journal_record(key, name, JOURNAL_FAILED)
                    self._record_failure(run, name, key, failure)
                    continue
                payload = store.get(key)
                if payload is None:
                    result = self._recover_inline(
                        run, name, config, key,
                        outcome.attempts if outcome else 1,
                    )
                    if result is None:
                        continue
                else:
                    result = result_from_dict(payload)
                self._journal_record(key, name, STATUS_DONE)
                self._memo[key] = result
                run.results[name] = result
                _note(run, JobMetric(
                    workload=name, key=key, status=STATUS_COMPUTED,
                    wall_time=outcome.wall_time if outcome else 0.0,
                    instructions=result.nodes,
                    attempts=outcome.attempts if outcome else 1,
                ))
        finally:
            if scratch is not None:
                scratch.cleanup()

    # ------------------------------------------------------------------
    # Helpers.
    # ------------------------------------------------------------------

    def _load(self, key: str):
        if self.store is None:
            return None
        payload = self.store.get(key)
        if payload is None:
            return None
        return result_from_dict(payload)

    def _record_failure(self, run: ExperimentRun, name: str, key: str,
                        failure: JobFailure) -> None:
        run.failures[name] = failure
        _note(run, JobMetric(
            workload=name, key=key, status=STATUS_FAILED,
            wall_time=failure.wall_time, attempts=failure.attempts,
            error=failure.error.strip().splitlines()[-1]
            if failure.error else "",
        ))

    def clear_memo(self) -> None:
        """Drop the in-process memo (the disk store is untouched)."""
        self._memo.clear()


# ----------------------------------------------------------------------
# The shared default runner.
# ----------------------------------------------------------------------

_DEFAULT_RUNNER: ExperimentRunner | None = None

#: Guards the lazy construction/replacement of the shared runner —
#: concurrent first callers (server threads) must agree on one
#: instance rather than each building (and caching into) their own.
_DEFAULT_RUNNER_LOCK = threading.RLock()


def default_store() -> ResultStore | None:
    """The store the default runner uses, honouring the environment."""
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    return ResultStore(root, max_bytes=DEFAULT_MAX_BYTES)


def default_trace_store() -> TraceStore | None:
    """The trace tier the default runner uses (same root, own cap)."""
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    return TraceStore(root, max_bytes=DEFAULT_TRACE_MAX_BYTES)


def default_runner() -> ExperimentRunner:
    """The process-wide runner every consumer shares.

    Thread-safe: concurrent first callers race to construct, but all
    of them leave with the *same* instance.
    """
    global _DEFAULT_RUNNER
    with _DEFAULT_RUNNER_LOCK:
        if _DEFAULT_RUNNER is None:
            _DEFAULT_RUNNER = ExperimentRunner(
                store=default_store(),
                trace_store=default_trace_store(),
                policy=ExecutionPolicy(
                    jobs=int(os.environ.get("REPRO_JOBS", "1"))),
            )
        return _DEFAULT_RUNNER


def set_default_runner(runner: ExperimentRunner | None) -> None:
    """Install ``runner`` as the process-wide default (None = rebuild
    from the environment on next use).  This is how
    :func:`repro.api.configure` swaps cache/observation settings in
    without environment-variable side channels."""
    global _DEFAULT_RUNNER
    with _DEFAULT_RUNNER_LOCK:
        _DEFAULT_RUNNER = runner


def swap_default_runner(make) -> ExperimentRunner:
    """Atomically replace the default runner.

    ``make(current)`` builds the replacement while the lock is held,
    so concurrent ``repro.api.configure`` calls serialise instead of
    both deriving from the same "current" and losing one update.
    """
    global _DEFAULT_RUNNER
    with _DEFAULT_RUNNER_LOCK:
        runner = make(default_runner())
        _DEFAULT_RUNNER = runner
        return runner


def reset_default_runner() -> None:
    """Forget the shared runner (tests re-read the environment)."""
    set_default_runner(None)
