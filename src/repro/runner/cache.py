"""Persistent content-addressed result store.

Results live under ``<root>/results/<key[:2]>/<key>.json`` where
``key`` is the job's content hash (:func:`repro.runner.job.job_key`).
Each file is an envelope::

    {"schema": 1, "key": "<hex>", "checksum": "<sha256>", "payload": {...}}

``checksum`` is the sha256 of the canonical (sorted-keys, compact)
JSON dump of ``payload``.  :meth:`ResultStore.get` validates both the
schema version and the checksum; any problem is treated as a cache
miss, so corruption can never crash a run — but recovery is no longer
*silent*: a corrupt entry (truncated JSON, wrong schema, checksum
mismatch) is removed with a ``store.<tier>.corruption`` counter and a
one-line warning log, while a transient read error (``OSError``)
leaves the file in place and counts ``store.<tier>.read_errors``, so
operators can tell "cache miss" from "cache rot" from "disk trouble".

Writes are atomic (temp file + ``os.replace``) so concurrent pool
workers and parallel pytest sessions can share one store: the worst
race is two workers computing the same job and one replace winning,
which is harmless because both wrote identical bytes-for-key content.

The store is bounded: after every write, least-recently-used entries
(by file mtime; reads bump it) are evicted until total size is back
under ``max_bytes``.  That LRU machinery lives in
:class:`LRUFileStore`, shared with the trace tier
(:class:`repro.runner.tracestore.TraceStore`).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path

from repro.obs import get_recorder
from repro.runner.faults import (fault_enospc, fault_io, is_enospc,
                                 maybe_fault)

_log = logging.getLogger(__name__)

#: On-disk envelope version; bump on envelope layout changes.
SCHEMA_VERSION = 1

#: Default size cap for the store (bytes).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class LRUFileStore:
    """Size management shared by the content-addressed stores.

    Subclasses own a flat ``<dir>/<key[:2]>/<key><suffix>`` layout and
    inherit the bounded-size behaviour: after every write,
    least-recently-used entries (by file mtime; reads bump it) are
    evicted until total size is back under ``max_bytes``.
    """

    #: obs counter/span namespace segment ("result"/"trace"), set by
    #: subclasses: counters land under ``store.<metric>.*``.
    metric = "store"

    def __init__(self, directory: Path, suffix: str, max_bytes: int):
        self._dir = Path(directory)
        self._suffix = suffix
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0

    def _hit(self) -> None:
        self.hits += 1
        get_recorder().count(f"store.{self.metric}.hits", 1)

    def _miss(self) -> None:
        self.misses += 1
        get_recorder().count(f"store.{self.metric}.misses", 1)

    def _corrupt(self, path: Path, reason) -> None:
        """Drop a corrupt entry — counted and logged, never raised.

        Distinct from a read error: corruption means the bytes were
        readable but wrong, so the entry is unrecoverable and removed.
        """
        get_recorder().count(f"store.{self.metric}.corruption", 1)
        _log.warning("store: dropping corrupt %s entry %s (%s)",
                     self.metric, path.name, reason)
        self._remove(path)

    def _read_error(self, reason) -> None:
        """Note a transient read failure (the entry is left on disk)."""
        get_recorder().count(f"store.{self.metric}.read_errors", 1)
        _log.warning("store: %s read failed (%s); treating as miss",
                     self.metric, reason)

    # ------------------------------------------------------------------
    # Size management.
    # ------------------------------------------------------------------

    def entries(self) -> list[Path]:
        if not self._dir.is_dir():
            return []
        return sorted(self._dir.glob(f"*/*{self._suffix}"))

    def size_bytes(self) -> int:
        return sum(self._stat_size(path) for path in self.entries())

    def evict(self) -> int:
        """Remove least-recently-used entries until under ``max_bytes``.

        The most recently written/read entry always survives, even when
        it alone exceeds the cap.  Returns the number of evictions.
        """
        stats = []
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            stats.append((stat.st_mtime, stat.st_size, path))
        stats.sort()
        total = sum(size for __, size, __ in stats)
        evicted = 0
        while total > self.max_bytes and len(stats) > 1:
            __, size, path = stats.pop(0)
            self._remove(path)
            total -= size
            evicted += 1
        if evicted:
            get_recorder().count(f"store.{self.metric}.evictions", evicted)
        return evicted

    def clear(self) -> int:
        """Remove every stored entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            self._remove(path)
            removed += 1
        return removed

    def evict_for_space(self) -> int:
        """Emergency eviction after ``ENOSPC``: drop the older half of
        the entries (at least one), ignoring ``max_bytes`` — cache
        warmth is worth nothing on a full disk.  Returns evictions.
        """
        stats = []
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            stats.append((stat.st_mtime, path))
        stats.sort()
        victims = stats[: max(1, len(stats) // 2)]
        for __, path in victims:
            self._remove(path)
        if victims:
            get_recorder().count(f"store.{self.metric}.evictions",
                                 len(victims))
        return len(victims)

    # ------------------------------------------------------------------
    # Helpers.
    # ------------------------------------------------------------------

    @staticmethod
    def _stat_size(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    @staticmethod
    def _remove(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


class ResultStore(LRUFileStore):
    """Disk-backed, content-addressed store of analysis payloads."""

    metric = "result"

    def __init__(self, root: str | Path, max_bytes: int = DEFAULT_MAX_BYTES):
        self.root = Path(root)
        self.results_dir = self.root / "results"
        super().__init__(self.results_dir, ".json", max_bytes)

    # ------------------------------------------------------------------
    # Lookup / insert.
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.results_dir / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: str) -> dict | None:
        """The stored payload for ``key``, or None on miss/corruption."""
        with get_recorder().span("store.result.get"):
            path = self.path_for(key)
            try:
                fault_io("store.read")
                text = path.read_text()
            except FileNotFoundError:
                self._miss()
                return None
            except OSError as error:
                # Transient I/O failure: the entry may be fine — leave
                # it on disk and read as a miss.
                self._read_error(error)
                self._miss()
                return None
            try:
                envelope = json.loads(text)
                if envelope["schema"] != SCHEMA_VERSION:
                    raise ValueError(f"schema {envelope['schema']}")
                payload = envelope["payload"]
                if _checksum(_canonical(payload)) != envelope["checksum"]:
                    raise ValueError("checksum mismatch")
            except Exception as error:
                # Truncated/garbled/stale file: drop it, treat as a miss.
                self._corrupt(path, error)
                self._miss()
                return None
            self._hit()
            self._touch(path)
            return payload

    def put(self, key: str, payload: dict) -> Path:
        """Atomically store ``payload`` under ``key``; returns the path.

        Raises :class:`OSError` on write failure — callers that can
        proceed without the cached copy (the runner) catch it and
        degrade; see ``_safe_put`` in :mod:`repro.runner.api`.  A
        disk-full write (``ENOSPC``, injected or real) gets one
        structured retry first: emergency-evict old entries, write
        again, and only then propagate.
        """
        with get_recorder().span("store.result.put"):
            fault_io("store.write")
            path = self.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            canonical = _canonical(payload)
            text = json.dumps({
                "schema": SCHEMA_VERSION,
                "key": key,
                "checksum": _checksum(canonical),
                "payload": payload,
            })
            if maybe_fault("store.truncate"):
                # Injected torn write: publish only half the envelope.
                # The checksum validation in :meth:`get` must catch it.
                text = text[: len(text) // 2]
            try:
                self._publish(path, text, key)
            except OSError as error:
                if not is_enospc(error):
                    raise
                get_recorder().count("store.result.enospc", 1)
                _log.warning(
                    "store: result write hit ENOSPC; evicting and "
                    "retrying once")
                self.evict_for_space()
                self._publish(path, text, key)
            get_recorder().count("store.result.puts", 1)
            self.evict()
            return path

    def _publish(self, path: Path, text: str, key: str) -> None:
        fault_enospc("store.enospc")
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            self._remove(Path(tmp_name))
            raise
