"""Persistent content-addressed trace store — tier 1 of the cache.

Where the :class:`~repro.runner.cache.ResultStore` keys on the full
*analysis* identity (workload content + every analyzer knob), the
trace store keys on the *execution* identity alone
(:func:`repro.runner.job.trace_key`: program bytes + inputs + scale).
One stored trace therefore serves every analysis configuration of its
workload: the runner simulates once, then replays.

Traces live under ``<root>/traces/<key[:2]>/<key>.trace.gz`` in the
binary v2 format of :mod:`repro.cpu.tracefile`.  The file's own header
records how much execution it covers (``n_records``, ``complete``);
:meth:`TraceStore.get` only reports a hit when the stored trace can
serve the requested instruction budget — a truncated capture never
silently shortens a larger analysis, it is simply re-captured with the
bigger budget and overwritten.

The same robustness rules as the result store apply: writes are atomic
(temp file + ``os.replace``), any unreadable or corrupt file is
removed and treated as a miss, and the store is LRU-bounded by its own
``max_bytes`` cap (traces are ~50× larger than result payloads, so the
tiers are budgeted independently).
"""

from __future__ import annotations

import logging
import os
import tempfile
from pathlib import Path

from repro.cpu.tracefile import (
    read_trace,
    read_trace_columns,
    save_trace,
    trace_header,
)
from repro.obs import get_recorder
from repro.runner.cache import LRUFileStore
from repro.runner.faults import (InjectedFault, fault_enospc, fault_io,
                                 is_enospc, maybe_fault)

_log = logging.getLogger(__name__)

#: Default size cap for the trace tier (bytes).  Traces dwarf result
#: payloads, so the tier gets its own, larger budget.
DEFAULT_TRACE_MAX_BYTES = 512 * 1024 * 1024

#: Stored-trace filename suffix.
TRACE_SUFFIX = ".trace.gz"

#: Segment-index sidecar suffix (appended to the trace filename).
SEGIDX_SUFFIX = ".segidx"


class TraceStore(LRUFileStore):
    """Disk-backed, content-addressed store of captured traces."""

    metric = "trace"

    #: In-memory columns memo bound (entry count, LRU).  Decoded
    #: :class:`TraceColumns` are prefix-closed and carry per-bank hit
    #: and result caches, so handing every sweep config the *same*
    #: object lets those caches compound across configs and budgets.
    columns_memo_entries = 16

    def __init__(self, root: str | Path,
                 max_bytes: int = DEFAULT_TRACE_MAX_BYTES):
        self.root = Path(root)
        self.traces_dir = self.root / "traces"
        self._columns_memo: dict = {}
        super().__init__(self.traces_dir, TRACE_SUFFIX, max_bytes)

    # ------------------------------------------------------------------
    # Lookup / insert.
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.traces_dir / key[:2] / f"{key}{TRACE_SUFFIX}"

    def contains(self, key: str) -> bool:
        return self.path_for(key).is_file()

    # ------------------------------------------------------------------
    # Segment-index sidecar.
    # ------------------------------------------------------------------

    def path_for_segidx(self, key: str) -> Path:
        """The segment-index sidecar path next to the stored trace."""
        path = self.path_for(key)
        return path.with_name(path.name + SEGIDX_SUFFIX)

    def put_segindex(self, key: str, index) -> Path | None:
        """Atomically store a :class:`~repro.core.shard.SegmentIndex`.

        The sidecar is pure derived data — a write failure degrades to
        "no index" (serial analysis) rather than raising.
        """
        path = self.path_for_segidx(key)
        if not self.contains(key):
            # Never publish an index with no trace beside it.
            return None
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(index.to_bytes())
            os.replace(tmp_name, path)
        except OSError:
            self._remove(Path(tmp_name))
            return None
        if not self.contains(key):
            # The trace was evicted between the guard above and the
            # replace: take the sidecar back out rather than leave an
            # orphan behind.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        get_recorder().count("store.trace.segidx_puts", 1)
        return path

    def get_segindex(self, key: str):
        """The stored :class:`SegmentIndex` for ``key``, or None.

        A corrupt or stale sidecar (unreadable, wrong magic, or
        ``n_records`` disagreeing with the trace header) is removed and
        reads as a miss — the caller falls back to serial analysis or a
        reindex, never to a wrong merge.
        """
        from repro.core.shard import SegmentIndex

        path = self.path_for_segidx(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            index = SegmentIndex.from_bytes(blob)
        except Exception as error:
            get_recorder().count("store.trace.segidx_corruption", 1)
            _log.warning("store: dropping corrupt segment index %s (%s)",
                         path.name, error)
            self._remove(path)
            return None
        header = self.header(key)
        if header is None or header.get("n_records") != index.n_records:
            # Stale: the trace was re-captured under this sidecar.
            self._remove(path)
            return None
        return index

    def has_segindex(self, key: str) -> bool:
        return self.path_for_segidx(key).is_file()

    def segidx_entries(self) -> list[Path]:
        """Every published segment-index sidecar, orphans included."""
        if not self.traces_dir.is_dir():
            return []
        return sorted(self.traces_dir.glob(f"*/*{SEGIDX_SUFFIX}"))

    def orphan_segidx(self) -> list[Path]:
        """Sidecars whose trace is gone (a crash between a trace's
        unlink and a sidecar publish, pre-fix eviction leftovers).
        Nothing reads a sidecar without first finding its trace, so
        these are pure dead weight — ``cache info`` must not count
        them as segment-index coverage."""
        orphans = []
        for path in self.segidx_entries():
            trace = path.with_name(path.name[: -len(SEGIDX_SUFFIX)])
            if not trace.is_file():
                orphans.append(path)
        return orphans

    def sweep_orphan_segidx(self) -> int:
        """Remove orphaned sidecars; returns the number removed."""
        orphans = self.orphan_segidx()
        for path in orphans:
            try:
                path.unlink()
            except OSError:
                pass
        if orphans:
            get_recorder().count("store.trace.segidx_orphans_swept",
                                 len(orphans))
        return len(orphans)

    @staticmethod
    def _remove(path: Path) -> None:
        # A trace never outlives removal with its sidecar still
        # published: eviction, corruption recovery and clear() all
        # funnel through here.
        try:
            path.unlink()
        except OSError:
            pass
        if path.name.endswith(TRACE_SUFFIX):
            try:
                path.with_name(path.name + SEGIDX_SUFFIX).unlink()
            except OSError:
                pass

    def header(self, key: str) -> dict | None:
        """The stored trace's header, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            return trace_header(path)
        except FileNotFoundError:
            return None
        except Exception:
            self._remove(path)
            return None

    def get(self, key: str, need: int | None = None,
            columns: bool = False):
        """``(header, records)`` when the stored trace serves ``need``.

        ``need`` is the analysis instruction budget; None demands a
        complete trace.  A stored trace that is complete serves any
        budget, an incomplete one only budgets within its length.
        Corruption of any kind removes the file and reads as a miss.

        ``columns=True`` decodes straight into
        :class:`~repro.core.kernel.TraceColumns` for the columnar
        engine, skipping per-record ``DynInst`` construction entirely.
        """
        with get_recorder().span("store.trace.get"):
            path = self.path_for(key)
            if columns:
                memo = self._columns_memo.get(key)
                if memo is not None and self._serves(memo[0], need):
                    try:
                        # The memo is content-addressed so the copy is
                        # always valid, but a read still goes through
                        # fault injection: a store whose disk reads are
                        # failing should degrade, not hide behind RAM.
                        fault_io("trace.read")
                    except InjectedFault as error:
                        self._read_error(error)
                        self._miss()
                        return None
                    self._columns_memo.pop(key)
                    self._memoize(key, memo)
                    self._hit()
                    get_recorder().count("store.trace.columns_memo", 1)
                    self._touch(path)
                    return memo
            try:
                fault_io("trace.read")
                if columns:
                    header, records = read_trace_columns(path)
                else:
                    header, records = read_trace(path)
            except FileNotFoundError:
                self._miss()
                return None
            except InjectedFault as error:
                # Transient I/O failure: leave the file, read as a miss.
                self._read_error(error)
                self._miss()
                return None
            except Exception as error:
                # Truncated/garbled/stale file: drop it, treat as a miss.
                self._corrupt(path, error)
                self._miss()
                return None
            if not self._serves(header, need):
                self._miss()
                return None
            self._hit()
            self._touch(path)
            if columns:
                self._memoize(key, (header, records))
            return header, records

    def _memoize(self, key: str, entry) -> None:
        self._columns_memo[key] = entry
        while len(self._columns_memo) > self.columns_memo_entries:
            self._columns_memo.pop(next(iter(self._columns_memo)))

    def memoize_columns(self, key: str, header: dict, columns) -> None:
        """Seed the columns memo with a freshly built object.

        Called by the runner right after a cold capture is persisted,
        so sibling configs replay the very object whose bank caches the
        first analysis already warmed.
        """
        self._memoize(key, (header, columns))

    def clear(self) -> int:
        self._columns_memo.clear()
        return super().clear()

    @staticmethod
    def _serves(header: dict, need: int | None) -> bool:
        if header.get("complete"):
            return True
        if need is None:
            return False
        return header.get("n_records", 0) >= need

    def put(self, key: str, records, n_static: int,
            complete: bool | None = None,
            workload: str | None = None) -> Path:
        """Atomically store ``records`` under ``key``; returns the path.

        Overwrites an existing trace — the caller only re-captures when
        the stored one could not serve, so the replacement is strictly
        longer.  ``workload`` annotates the header for ``cache info``'s
        fixed-vs-generated occupancy breakdown; it is not part of the
        content address.
        """
        with get_recorder().span("store.trace.put"):
            fault_io("trace.write")
            self._columns_memo.pop(key, None)
            # New content invalidates any segment index built over the
            # old bytes (get_segindex would also catch the n_records
            # mismatch, but only when lengths differ).
            try:
                self.path_for_segidx(key).unlink()
            except OSError:
                pass
            path = self.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self._publish(path, key, records, n_static, complete,
                              workload)
            except OSError as error:
                if not is_enospc(error):
                    raise
                get_recorder().count("store.trace.enospc", 1)
                _log.warning(
                    "store: trace write hit ENOSPC; evicting and "
                    "retrying once")
                self.evict_for_space()
                self._publish(path, key, records, n_static, complete,
                              workload)
            if maybe_fault("trace.corrupt"):
                # Injected bit rot: truncate the published file so the
                # next read must take the corruption-recovery path.
                self._rot(path)
            get_recorder().count("store.trace.puts", 1)
            self.evict()
            return path

    def _publish(self, path: Path, key: str, records, n_static: int,
                 complete: bool | None, workload: str | None) -> None:
        fault_enospc("store.enospc")
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        os.close(fd)
        try:
            save_trace(records, tmp_name, n_static, complete=complete,
                       workload=workload)
            os.replace(tmp_name, path)
        except BaseException:
            self._remove(Path(tmp_name))
            raise

    @staticmethod
    def _rot(path: Path) -> None:
        try:
            size = path.stat().st_size
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        except OSError:
            pass
