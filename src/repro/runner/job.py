"""The runner's job model.

A :class:`Job` is the unit of orchestration: one workload analysed
under one :class:`ExperimentConfig`.  Every job has a deterministic
**content hash** (:func:`job_key`) derived from

* the compiled program bytes (instruction listing, data segment and
  entry point) — so recompiling after a mini-C source or compiler
  change invalidates cached results;
* the mini-C source hash itself (defence in depth: it also changes the
  compiled bytes, but hashing it directly makes the invalidation
  independent of listing formatting);
* the generated input streams at the configured scale;
* every field of the effective :class:`repro.core.AnalysisConfig`;
* :data:`RESULT_SCHEMA`, bumped whenever analysis *semantics* change
  without any input changing (see docs/runner.md).

Two processes — or two sessions days apart — that build the same job
therefore agree on its key, which is what lets the disk store double
as the transport channel between pool workers and the parent.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

from repro.core import AnalysisConfig
from repro.predictors.base import PREDICTOR_KINDS
from repro.workloads import get_workload

#: Bump when the analyzer's semantics change in a way that should
#: invalidate previously cached results (new statistic, changed
#: classification rule, predictor behaviour fix, ...).
RESULT_SCHEMA = 1

#: Bump when the substrate's execution semantics change in a way that
#: should invalidate stored traces (ISA behaviour fix, machine model
#: change, ...).  Analysis-only changes must NOT bump this — that is
#: the whole point of the two-tier split.
TRACE_SCHEMA = 1


@dataclass(frozen=True)
class ExperimentConfig:
    """Scope of one experiment run.

    Attributes:
        scale: workload problem-size multiplier.
        max_instructions: dynamic-instruction budget per workload.
        workloads: workload names to run (None = the full suite).
        predictors: predictor kinds to analyse side by side.
        trees_for: predictors with per-generate tree tracking.
        gen_cap: generator-id cap for tree tracking.
    """

    scale: int = 1
    max_instructions: int = 150_000
    workloads: tuple[str, ...] | None = None
    predictors: tuple[str, ...] = PREDICTOR_KINDS
    trees_for: tuple[str, ...] = ("context",)
    gen_cap: int = 64


@dataclass(frozen=True)
class Job:
    """One (workload, config) pair — the unit the pool schedules."""

    workload: str
    config: ExperimentConfig

    def analysis_config(self) -> AnalysisConfig:
        """The analyzer knobs this job runs with."""
        return AnalysisConfig(
            predictors=self.config.predictors,
            trees_for=self.config.trees_for,
            gen_cap=self.config.gen_cap,
            max_instructions=self.config.max_instructions,
        )


@dataclass(frozen=True)
class JobFailure:
    """Record of a job that could not produce a result.

    A failed job never aborts the suite; it is returned alongside the
    successful results so callers can decide what a partial suite is
    worth.

    Attributes:
        workload: the job's workload name.
        error: human-readable error (exception repr or traceback tail).
        attempts: how many times the job was attempted.
        wall_time: seconds spent on the final attempt.
        timed_out: True when the final attempt hit the per-job timeout.
        kind: failure taxonomy tag — one of the
            :data:`repro.errors.FAILURE_KINDS` keys ("timeout",
            "crash", "spawn", "error"); drives which
            :class:`~repro.errors.RunnerError` subclass
            ``ExperimentRun.require`` raises.
    """

    workload: str
    error: str
    attempts: int = 1
    wall_time: float = 0.0
    timed_out: bool = False
    kind: str = "error"


def program_bytes(program) -> bytes:
    """Canonical bytes of a compiled program, for content hashing."""
    parts = [f"entry={program.entry}", program.listing()]
    for item in program.data:
        parts.append(
            f"{item.addr}:{item.size}:{item.value!r}:{int(item.is_float)}"
        )
    return "\n".join(parts).encode()


def _feed_execution(digest, workload, scale: int) -> None:
    """Hash everything that determines what would actually execute:
    program content, source hash, and the generated inputs at scale."""

    def feed(*parts) -> None:
        for part in parts:
            digest.update(str(part).encode())
            digest.update(b"\x00")

    feed("source", workload.source_hash())
    digest.update(program_bytes(workload.program()))
    words, floats = workload.make_inputs(scale)
    feed("scale", scale, "words", len(words))
    digest.update(",".join(map(str, words)).encode())
    feed("floats", len(floats))
    digest.update(",".join(repr(value) for value in floats).encode())


def job_key(job: Job) -> str:
    """Deterministic content hash of ``job`` (hex sha256).

    Compiles the workload (cached per :class:`~repro.workloads.Workload`
    instance) and generates its inputs, so the key reflects what would
    actually run — not just the names on the label.
    """
    workload = get_workload(job.workload)
    digest = hashlib.sha256()

    def feed(*parts) -> None:
        for part in parts:
            digest.update(str(part).encode())
            digest.update(b"\x00")

    feed("repro-job", RESULT_SCHEMA, workload.name, workload.spec_name,
         workload.kind)
    _feed_execution(digest, workload, job.config.scale)
    analysis = job.analysis_config()
    for config_field in dataclasses.fields(analysis):
        feed(config_field.name, getattr(analysis, config_field.name))
    return digest.hexdigest()


def trace_key(workload_name: str, scale: int = 1) -> str:
    """Execution-identity hash of a workload run (hex sha256).

    Deliberately narrower than :func:`job_key`: only what determines
    the dynamic instruction stream — program bytes, source hash, inputs
    at ``scale`` — plus the trace format version.  Every analyzer knob
    *and the instruction budget* are excluded, so one stored trace
    serves any analysis of the same execution (a shorter budget is a
    prefix of a longer one; length adequacy is checked against the
    stored header, see :class:`repro.runner.tracestore.TraceStore`).
    """
    from repro.cpu.tracefile import FORMAT as TRACE_FORMAT

    workload = get_workload(workload_name)
    digest = hashlib.sha256()

    def feed(*parts) -> None:
        for part in parts:
            digest.update(str(part).encode())
            digest.update(b"\x00")

    feed("repro-trace", TRACE_SCHEMA, TRACE_FORMAT, workload.name,
         workload.spec_name, workload.kind)
    _feed_execution(digest, workload, scale)
    return digest.hexdigest()
