"""Crash-safe sweep journal: a write-ahead JSONL record of job fates.

The journal lives next to the cache tiers (``<cache>/journal.jsonl``)
and records one line per *executed* job as it reaches a terminal
state::

    {"journal": 1, "pid": 1234, "started": ...}        # header
    {"key": "<job hash>", "workload": "com", "status": "done"}
    {"key": "<job hash>", "workload": "go", "status": "failed"}

Each record is flushed **and fsync'd before the result is published**
to the caller, so a run killed at any instant — SIGKILL included —
leaves a journal describing exactly which jobs completed.  A later run
opened with ``resume=True`` replays the journal: jobs recorded as
``done`` are served from the result store (their results were written
before the journal line), everything else re-executes.  A journaled
``done`` whose store entry has vanished (pruned, corrupted) is a
*journal conflict*: counted (``journal.conflicts``), logged, and the
job simply re-executes — the journal never blocks progress.

Single-writer locking: opening the journal takes ``journal.jsonl.lock``
(``O_CREAT | O_EXCL``, pid inside).  A second live process raises
:class:`repro.errors.JournalConflict`; a stale lock whose pid is dead
is broken and taken over.  Garbled lines (torn writes from a previous
crash) are skipped and counted, never fatal.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from repro.errors import JournalConflict
from repro.obs import get_recorder
from repro.runner.faults import fault_enospc, is_enospc

_log = logging.getLogger(__name__)

#: Journal line-format version (header field ``journal``).
JOURNAL_VERSION = 1

#: Default journal filename inside a cache root.
JOURNAL_NAME = "journal.jsonl"

#: Job terminal states recorded in the journal.
STATUS_DONE = "done"
STATUS_FAILED = "failed"


class RunJournal:
    """Append-only, fsync'd journal of job terminal states.

    Use as a context manager; ``resume=True`` replays an existing file
    into :attr:`entries` and appends, ``resume=False`` (default)
    truncates and starts fresh.
    """

    def __init__(self, path: str | Path, resume: bool = False):
        self.path = Path(path)
        self.resume = resume
        self.entries: dict[str, str] = {}
        self.bad_lines = 0
        self._fh = None
        self._locked = False
        self._lock_path = Path(str(self.path) + ".lock")

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def open(self) -> "RunJournal":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._acquire_lock()
        try:
            if self.resume and self.path.exists():
                self.entries = self._replay()
            self._fh = open(self.path, "a" if self.resume else "w")
            header = {"journal": JOURNAL_VERSION, "pid": os.getpid()}
            self._append(header)
        except BaseException:
            self._release_lock()
            raise
        return self

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        self._release_lock()

    def __enter__(self) -> "RunJournal":
        return self.open()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Recording / replay.
    # ------------------------------------------------------------------

    def record(self, key: str, workload: str, status: str) -> None:
        """Durably record ``key``'s terminal ``status``.

        Returns only after the line is flushed and fsync'd — callers
        publish the corresponding result *after* this, so a journaled
        ``done`` always implies the store write already happened.

        A write/fsync that fails (``ENOSPC`` above all) **degrades**
        instead of unwinding the run with an ``OSError`` traceback:
        the journal closes itself, the failure is counted
        (``journal.enospc`` / ``journal.write_errors`` — the
        structured ``"enospc"`` kind of
        :data:`repro.errors.FAILURE_KINDS`) and the run continues
        without crash-safe checkpointing, exactly as if the journal
        had been unavailable from the start.
        """
        if self._fh is None:
            return
        try:
            self._append({"key": key, "workload": workload,
                          "status": status})
        except OSError as error:
            if is_enospc(error):
                get_recorder().count("journal.enospc", 1)
                _log.warning(
                    "journal: disk full (ENOSPC) writing %s; continuing "
                    "without crash-safe checkpointing", self.path,
                )
            else:
                get_recorder().count("journal.write_errors", 1)
                _log.warning(
                    "journal: write failed (%s); continuing without "
                    "crash-safe checkpointing", error,
                )
            self._disable()
            return
        self.entries[key] = status
        get_recorder().count("journal.records", 1)

    def _disable(self) -> None:
        """Stop journaling after a write failure; the lock is kept so
        a sibling cannot start a *second* half-journal beside ours."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def completed(self, key: str) -> bool:
        """True when ``key`` is journaled as successfully finished."""
        return self.entries.get(key) == STATUS_DONE

    def conflict(self, key: str, workload: str) -> None:
        """Note a journal/store disagreement (journaled done, store
        miss): counted and logged, then the job re-executes."""
        get_recorder().count("journal.conflicts", 1)
        _log.warning(
            "journal: %s (%s) recorded done but the store has no result; "
            "re-executing", workload, key[:12],
        )

    def _append(self, payload: dict) -> None:
        if "journal" not in payload:  # never fault the open() header
            fault_enospc("store.enospc")
        self._fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _replay(self) -> dict[str, str]:
        entries: dict[str, str] = {}
        try:
            text = self.path.read_text()
        except OSError:
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if "journal" in payload:  # header line
                    continue
                key, status = payload["key"], payload["status"]
            except (ValueError, KeyError, TypeError):
                # Torn write from a crash mid-append: skip, count.
                self.bad_lines += 1
                get_recorder().count("journal.bad_lines", 1)
                continue
            entries[key] = status
        if entries:
            get_recorder().count("journal.replayed", len(entries))
        return entries

    # ------------------------------------------------------------------
    # Locking.
    # ------------------------------------------------------------------

    def _acquire_lock(self) -> None:
        for attempt in (1, 2):
            try:
                fd = os.open(self._lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                with os.fdopen(fd, "w") as handle:
                    handle.write(str(os.getpid()))
                self._locked = True
                return
            except FileExistsError:
                owner = self._lock_owner()
                if owner is not None and _pid_alive(owner):
                    raise JournalConflict(
                        f"journal {self.path} is locked by live "
                        f"process {owner}"
                    )
                # Stale lock from a dead process: break it and retry.
                _log.warning("journal: breaking stale lock %s (pid %s)",
                             self._lock_path, owner)
                try:
                    os.unlink(self._lock_path)
                except OSError:
                    pass
        raise JournalConflict(
            f"could not acquire journal lock {self._lock_path}"
        )

    def _lock_owner(self) -> int | None:
        try:
            return int(self._lock_path.read_text().strip())
        except (OSError, ValueError):
            return None

    def _release_lock(self) -> None:
        if self._locked:
            try:
                os.unlink(self._lock_path)
            except OSError:
                pass
            self._locked = False


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True
