"""Deprecated entry point — use ``python -m repro run`` / ``repro cache``.

``python -m repro.runner`` forwards to the unified CLI
(:mod:`repro.cli`) with its historical flags intact::

    python -m repro.runner --jobs 4            ->  python -m repro run --jobs 4
    python -m repro.runner --clear-cache       ->  python -m repro cache clear
    python -m repro.runner --cache-info        ->  python -m repro cache info
"""

from __future__ import annotations

import argparse
import os
import warnings

from repro.runner.api import DEFAULT_CACHE_DIR
from repro.runner.cache import DEFAULT_MAX_BYTES
from repro.runner.tracestore import DEFAULT_TRACE_MAX_BYTES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Parallel, disk-cached experiment orchestration "
                    "(deprecated; use python -m repro run).",
    )
    parser.add_argument("--jobs", type=int,
                        default=int(os.environ.get("REPRO_JOBS", "0")) or
                        (os.cpu_count() or 1),
                        help="worker processes (default: CPU count)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names (default: all)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload problem-size multiplier")
    parser.add_argument("--max-instructions", type=int, default=150_000,
                        help="dynamic-instruction budget per workload")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job wall-clock limit in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts for a failed job (default: 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent stores")
    parser.add_argument("--cache-dir", default=None,
                        help=f"store location (default: $REPRO_CACHE_DIR "
                             f"or {DEFAULT_CACHE_DIR}/)")
    parser.add_argument("--cache-cap-mb", type=int,
                        default=DEFAULT_MAX_BYTES // (1024 * 1024),
                        help="result-store size cap in MiB before LRU "
                             "eviction")
    parser.add_argument("--trace-cap-mb", type=int,
                        default=DEFAULT_TRACE_MAX_BYTES // (1024 * 1024),
                        help="trace-store size cap in MiB before LRU "
                             "eviction")
    parser.add_argument("--metrics", default=None,
                        help="metrics JSON path (default: <cache>/"
                             "metrics.json; '-' to skip)")
    parser.add_argument("--clear-cache", action="store_true",
                        help="empty the stores and exit")
    parser.add_argument("--cache-info", action="store_true",
                        help="print store location/size and exit")
    return parser


def main(argv=None) -> int:
    warnings.warn(
        "python -m repro.runner is deprecated; use "
        "python -m repro run (or: python -m repro cache)",
        DeprecationWarning, stacklevel=2,
    )
    from repro import cli

    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.clear_cache or args.cache_info:
            args.action = "clear" if args.clear_cache else "info"
            return cli.cmd_cache(parser, args)
        return cli.cmd_run(parser, args)
    except KeyboardInterrupt:
        # Interrupted outside cmd_run's signal-handling window: still
        # exit with the distinct interrupted code, not a traceback.
        return cli.EXIT_INTERRUPTED


if __name__ == "__main__":
    raise SystemExit(main())
