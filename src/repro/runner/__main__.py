"""Command-line experiment orchestrator.

Examples::

    python -m repro.runner --jobs 4
    python -m repro.runner --jobs 4 --workloads com,gcc,go --scale 2
    python -m repro.runner --no-cache --max-instructions 50000
    python -m repro.runner --clear-cache
    python -m repro.runner --cache-info

Runs the configured workloads through the parallel, disk-cached
executor and prints one status line per job plus a run summary.  A
warm second run completes with every job served from the store and
zero workloads re-traced.  Metrics are written as JSON next to the
store (``--metrics`` overrides the path).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.runner.api import (
    DEFAULT_CACHE_DIR,
    ExperimentRunner,
    default_store,
)
from repro.runner.cache import DEFAULT_MAX_BYTES, ResultStore
from repro.runner.job import ExperimentConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Parallel, disk-cached experiment orchestration.",
    )
    parser.add_argument("--jobs", type=int,
                        default=int(os.environ.get("REPRO_JOBS", "0")) or
                        (os.cpu_count() or 1),
                        help="worker processes (default: CPU count)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names (default: all)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload problem-size multiplier")
    parser.add_argument("--max-instructions", type=int, default=150_000,
                        help="dynamic-instruction budget per workload")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job wall-clock limit in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts for a failed job (default: 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent result store")
    parser.add_argument("--cache-dir", default=None,
                        help=f"store location (default: $REPRO_CACHE_DIR "
                             f"or {DEFAULT_CACHE_DIR}/)")
    parser.add_argument("--cache-cap-mb", type=int,
                        default=DEFAULT_MAX_BYTES // (1024 * 1024),
                        help="store size cap in MiB before LRU eviction")
    parser.add_argument("--metrics", default=None,
                        help="metrics JSON path (default: <cache>/"
                             "metrics.json; '-' to skip)")
    parser.add_argument("--clear-cache", action="store_true",
                        help="empty the store and exit")
    parser.add_argument("--cache-info", action="store_true",
                        help="print store location/size and exit")
    return parser


def _make_store(args) -> ResultStore | None:
    if args.no_cache:
        return None
    if args.cache_dir is not None:
        return ResultStore(
            args.cache_dir, max_bytes=args.cache_cap_mb * 1024 * 1024
        )
    store = default_store()
    if store is not None:
        store.max_bytes = args.cache_cap_mb * 1024 * 1024
    return store


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    store = _make_store(args)

    if args.clear_cache or args.cache_info:
        if store is None:
            print("cache disabled", file=sys.stderr)
            return 1
        if args.clear_cache:
            removed = store.clear()
            print(f"removed {removed} cached result(s) from {store.root}")
            return 0
        entries = store.entries()
        print(f"store: {store.root}")
        print(f"entries: {len(entries)}")
        print(f"size: {store.size_bytes() / 1024:.1f} KiB "
              f"(cap {store.max_bytes / (1024 * 1024):.0f} MiB)")
        return 0

    workloads = None
    if args.workloads is not None:
        workloads = tuple(
            name.strip() for name in args.workloads.split(",") if name.strip()
        )
        if not workloads:
            parser.error("--workloads requires at least one workload name")
    config = ExperimentConfig(
        scale=args.scale,
        max_instructions=args.max_instructions,
        workloads=workloads,
    )
    runner = ExperimentRunner(
        store=store, jobs=args.jobs,
        timeout=args.timeout, retries=args.retries,
    )
    run = runner.run(config)

    print(f"{'workload':<9} {'status':<10} {'wall':>8} {'instr':>9} "
          f"{'instr/s':>11}")
    print("-" * 52)
    for metric in run.metrics.jobs:
        rate = (f"{metric.instructions_per_second:,.0f}"
                if metric.instructions else "-")
        instr = f"{metric.instructions:,}" if metric.instructions else "-"
        print(f"{metric.workload:<9} {metric.status:<10} "
              f"{metric.wall_time:>7.2f}s {instr:>9} {rate:>11}")
        if metric.error:
            print(f"          !! {metric.error}")
    print("-" * 52)
    print(run.metrics.summary())

    if args.metrics != "-":
        if args.metrics is not None:
            metrics_path = args.metrics
        elif store is not None:
            metrics_path = store.root / "metrics.json"
        else:
            metrics_path = None
        if metrics_path is not None:
            path = run.metrics.dump(metrics_path)
            print(f"[metrics written to {path}]", file=sys.stderr)

    return 1 if run.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
