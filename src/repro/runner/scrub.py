"""Store integrity scrubbing: verify every entry, quarantine the rot.

``python -m repro cache scrub`` walks both cache tiers plus the
segment-index sidecars and *fully validates* each entry — not just the
cheap header checks the hot read path does:

* **results**: JSON envelope parses, schema version matches, the
  envelope's ``key`` matches the filename, and the payload checksum
  verifies;
* **traces**: the complete file decodes (gzip framing, record framing,
  header/record-count agreement) — a scrub reads every byte;
* **segidx**: the sidecar decodes, its trace still exists (orphans are
  findings, see :meth:`TraceStore.orphan_segidx`), and its
  ``n_records`` agrees with the trace header (stale = finding).

A bad entry is **quarantined, never deleted**: moved to
``<cache>/quarantine/<tier>/<filename>`` so an operator can inspect
(or forensically diff) what rotted, and each finding is appended to a
JSONL report (``<cache>/quarantine/scrub_report.jsonl`` by default).
Valid entries are left untouched — a scrub is safe to run against a
live store — and a rerun over a scrubbed store reports clean.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import get_recorder
from repro.runner.cache import (SCHEMA_VERSION, ResultStore, _canonical,
                                _checksum)
from repro.runner.tracestore import SEGIDX_SUFFIX, TRACE_SUFFIX, TraceStore

_log = logging.getLogger(__name__)

#: Quarantine directory name inside a cache root.
QUARANTINE_DIR = "quarantine"

#: Default JSONL report filename inside the quarantine directory.
REPORT_NAME = "scrub_report.jsonl"


@dataclass
class ScrubFinding:
    """One bad entry a scrub pass turned up."""

    tier: str        #: "result" | "trace" | "segidx"
    key: str         #: content-address key (filename stem)
    path: str        #: original entry path
    problem: str     #: human-readable diagnosis
    quarantined_to: str | None = None  #: destination, None = left alone

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "key": self.key,
            "path": self.path,
            "problem": self.problem,
            "quarantined_to": self.quarantined_to,
        }


@dataclass
class ScrubReport:
    """Everything one scrub pass checked and found."""

    root: str
    checked: dict = field(default_factory=dict)
    findings: list = field(default_factory=list)
    report_path: str | None = None
    wall_time: float = 0.0

    @property
    def quarantined(self) -> int:
        return sum(1 for f in self.findings if f.quarantined_to)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "checked": dict(self.checked),
            "findings": [f.to_dict() for f in self.findings],
            "quarantined": self.quarantined,
            "clean": self.clean,
            "report_path": self.report_path,
            "wall_time": self.wall_time,
        }


def scrub_store(cache_dir: str | Path, quarantine: bool = True,
                report_path: str | Path | None = None) -> ScrubReport:
    """Verify every entry under ``cache_dir``; quarantine failures.

    Returns a :class:`ScrubReport`.  ``quarantine=False`` runs a pure
    audit: findings are reported but every file stays in place (and no
    report file is written unless ``report_path`` is given).
    """
    start = time.monotonic()
    root = Path(cache_dir)
    report = ScrubReport(root=str(root))
    quarantine_root = root / QUARANTINE_DIR

    results = ResultStore(root)
    traces = TraceStore(root)

    report.checked["result"] = 0
    for path in results.entries():
        report.checked["result"] += 1
        problem = _check_result(path)
        if problem:
            _finding(report, "result", path, problem,
                     quarantine_root if quarantine else None)

    report.checked["trace"] = 0
    for path in traces.entries():
        report.checked["trace"] += 1
        problem = _check_trace(path)
        if problem:
            _finding(report, "trace", path, problem,
                     quarantine_root if quarantine else None)

    report.checked["segidx"] = 0
    for path in traces.segidx_entries():
        report.checked["segidx"] += 1
        problem = _check_segidx(path)
        if problem:
            _finding(report, "segidx", path, problem,
                     quarantine_root if quarantine else None)

    report.wall_time = time.monotonic() - start
    recorder = get_recorder()
    recorder.count("store.scrub.runs", 1)
    recorder.count("store.scrub.checked", sum(report.checked.values()))
    if report.findings:
        recorder.count("store.scrub.findings", len(report.findings))

    if quarantine or report_path is not None:
        target = Path(report_path) if report_path is not None \
            else quarantine_root / REPORT_NAME
        _write_report(target, report)
        report.report_path = str(target)
    return report


# ----------------------------------------------------------------------
# Per-tier validators: return a problem string, or None when sound.
# ----------------------------------------------------------------------

def _check_result(path: Path) -> str | None:
    key = path.stem
    try:
        text = path.read_text()
    except OSError as error:
        return f"unreadable: {error}"
    try:
        envelope = json.loads(text)
    except ValueError as error:
        return f"garbled envelope: {error}"
    if not isinstance(envelope, dict):
        return "garbled envelope: not an object"
    if envelope.get("schema") != SCHEMA_VERSION:
        return f"schema {envelope.get('schema')!r} != {SCHEMA_VERSION}"
    if envelope.get("key") != key:
        return f"key mismatch: envelope says {envelope.get('key')!r}"
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        return "missing payload"
    if _checksum(_canonical(payload)) != envelope.get("checksum"):
        return "checksum mismatch"
    return None


def _check_trace(path: Path) -> str | None:
    from repro.cpu.tracefile import read_trace

    try:
        header, records = read_trace(path)
    except OSError as error:
        return f"unreadable: {error}"
    except Exception as error:
        return f"corrupt trace: {error}"
    declared = header.get("n_records")
    if declared is not None and declared != len(records):
        return (f"record count mismatch: header says {declared}, "
                f"decoded {len(records)}")
    return None


def _check_segidx(path: Path) -> str | None:
    from repro.core.shard import SegmentIndex
    from repro.cpu.tracefile import trace_header

    trace_path = path.with_name(path.name[: -len(SEGIDX_SUFFIX)])
    if not trace_path.is_file():
        return "orphaned sidecar: trace is gone"
    try:
        index = SegmentIndex.from_bytes(path.read_bytes())
    except OSError as error:
        return f"unreadable: {error}"
    except Exception as error:
        return f"corrupt segment index: {error}"
    try:
        header = trace_header(trace_path)
    except Exception:
        # The trace itself is rotten; the trace pass owns that finding
        # and this sidecar will be orphaned on the next scrub.
        return None
    if header.get("n_records") != index.n_records:
        return (f"stale sidecar: index covers {index.n_records} records,"
                f" trace has {header.get('n_records')}")
    return None


# ----------------------------------------------------------------------
# Quarantine / report plumbing.
# ----------------------------------------------------------------------

def _finding(report: ScrubReport, tier: str, path: Path, problem: str,
             quarantine_root: Path | None) -> None:
    key = path.name.split(".", 1)[0]
    finding = ScrubFinding(tier=tier, key=key, path=str(path),
                           problem=problem)
    if quarantine_root is not None:
        destination = _quarantine(path, tier, quarantine_root)
        finding.quarantined_to = (str(destination)
                                  if destination is not None else None)
        get_recorder().count(f"store.scrub.quarantined.{tier}", 1)
    _log.warning("scrub: %s %s — %s%s", tier, path.name, problem,
                 " (quarantined)" if finding.quarantined_to else "")
    report.findings.append(finding)


def _quarantine(path: Path, tier: str,
                quarantine_root: Path) -> Path | None:
    """Move ``path`` under ``quarantine/<tier>/``; never raises."""
    destination = quarantine_root / tier / path.name
    try:
        destination.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, destination)
    except OSError as error:
        _log.warning("scrub: could not quarantine %s (%s); left in "
                     "place", path, error)
        return None
    return destination


def _write_report(target: Path, report: ScrubReport) -> None:
    """Append one summary line plus one line per finding (JSONL)."""
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "a") as handle:
            summary = {
                "scrub": 1,
                "timestamp": time.time(),
                "root": report.root,
                "checked": dict(report.checked),
                "findings": len(report.findings),
                "quarantined": report.quarantined,
                "clean": report.clean,
            }
            handle.write(json.dumps(summary, separators=(",", ":"))
                         + "\n")
            for finding in report.findings:
                handle.write(json.dumps(finding.to_dict(),
                                        separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as error:
        _log.warning("scrub: could not write report %s (%s)", target,
                     error)
