"""Run instrumentation.

Every suite run — serial or parallel, via the API, the CLI or the
benchmark harness — produces a :class:`RunMetrics`: one
:class:`JobMetric` per job (status, wall time, dynamic-instruction
throughput, attempts) plus run-level cache and concurrency counters.
The CLI dumps it as JSON next to the result store (see docs/runner.md
for the schema) so sweeps can be profiled after the fact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: JobMetric.status values.
STATUS_MEMO_HIT = "memo-hit"      #: served from the in-process memo
STATUS_CACHE_HIT = "cache-hit"    #: deserialised from the disk store
STATUS_COMPUTED = "computed"      #: traced and analysed this run
STATUS_REPLAYED = "replayed"      #: analysed from a stored trace
STATUS_FAILED = "failed"          #: all attempts failed


@dataclass
class JobMetric:
    """Per-job measurements.

    Attributes:
        workload: workload name.
        key: job content hash ("" when hashing itself failed).
        status: one of the ``STATUS_*`` constants.
        wall_time: seconds spent producing the outcome.
        instructions: dynamic instructions analysed (0 on hit/failure —
            a hit re-traces nothing, which is the point).
        attempts: process attempts (0 for in-process outcomes).
        error: failure description, empty on success.
    """

    workload: str
    key: str
    status: str
    wall_time: float = 0.0
    instructions: int = 0
    attempts: int = 0
    error: str = ""

    @property
    def instructions_per_second(self) -> float:
        if self.wall_time <= 0.0:
            return 0.0
        return self.instructions / self.wall_time

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "key": self.key,
            "status": self.status,
            "wall_time": round(self.wall_time, 6),
            "instructions": self.instructions,
            "instructions_per_second": round(
                self.instructions_per_second, 1
            ),
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass
class RunMetrics:
    """Whole-run measurements.

    ``profile`` is the structured observability section — a recorder
    snapshot (``{"counters", "gauges", "spans"}``, see
    :mod:`repro.obs`) attached when the producing runner ran with
    observation enabled, None otherwise.
    """

    jobs: list[JobMetric] = field(default_factory=list)
    requested_workers: int = 1
    peak_workers: int = 0
    total_wall: float = 0.0
    profile: dict | None = None
    #: ``ExecutionPolicy.describe()`` of the producing runner, when known.
    policy: dict | None = None
    #: True when the run was cancelled (SIGINT/SIGTERM) and checkpointed
    #: mid-way: completed jobs are journaled, the rest never ran.
    interrupted: bool = False

    def add(self, metric: JobMetric) -> None:
        self.jobs.append(metric)

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------

    def count(self, status: str) -> int:
        return sum(1 for job in self.jobs if job.status == status)

    @property
    def cache_hits(self) -> int:
        return self.count(STATUS_CACHE_HIT) + self.count(STATUS_MEMO_HIT)

    @property
    def cache_misses(self) -> int:
        return (self.count(STATUS_COMPUTED) + self.count(STATUS_REPLAYED)
                + self.count(STATUS_FAILED))

    @property
    def replays(self) -> int:
        """Jobs analysed by replaying a stored trace (trace-tier hit,
        result-tier miss)."""
        return self.count(STATUS_REPLAYED)

    @property
    def failures(self) -> int:
        return self.count(STATUS_FAILED)

    @property
    def total_instructions(self) -> int:
        return sum(job.instructions for job in self.jobs)

    @property
    def throughput(self) -> float:
        """Aggregate dynamic instructions per wall-clock second."""
        if self.total_wall <= 0.0:
            return 0.0
        return self.total_instructions / self.total_wall

    # ------------------------------------------------------------------
    # Output.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "jobs": [job.to_dict() for job in self.jobs],
            "requested_workers": self.requested_workers,
            "peak_workers": self.peak_workers,
            "total_wall": round(self.total_wall, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "replays": self.replays,
            "failures": self.failures,
            "total_instructions": self.total_instructions,
            "instructions_per_second": round(self.throughput, 1),
            "interrupted": self.interrupted,
        }
        if self.policy is not None:
            payload["policy"] = self.policy
        if self.profile is not None:
            payload["profile"] = self.profile
        return payload

    def dump(self, path: str | Path) -> Path:
        """Write the metrics as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def summary(self) -> str:
        """One-line human summary for CLI/bench output."""
        text = (
            f"{len(self.jobs)} jobs in {self.total_wall:.2f}s "
            f"({self.throughput:,.0f} instr/s): "
            f"{self.cache_hits} hit, {self.count(STATUS_COMPUTED)} computed, "
            f"{self.replays} replayed, "
            f"{self.failures} failed; peak {self.peak_workers} worker(s)"
        )
        if self.interrupted:
            text += " [interrupted: checkpointed, resume with --resume]"
        return text
