"""Experiment orchestration: parallel, disk-cached, fault-tolerant.

The runner is the layer between the analysis core and every consumer
of suite results (the report exhibits, the benchmark harness, the
CLIs).  It owns

* the **job model** (:mod:`repro.runner.job`) — a deterministic
  content hash per (workload, config) pair, derived from the compiled
  program bytes, the generated inputs and the analysis configuration;
* the **result store** (:mod:`repro.runner.cache`) — persistent,
  content-addressed, checksummed, LRU-bounded;
* the **trace store** (:mod:`repro.runner.tracestore`) — the execution
  tier underneath it: one captured trace per (workload, scale),
  replayed for every analysis configuration;
* the **pool** (:mod:`repro.runner.pool`) — per-job processes with
  timeout, retry with exponential backoff, crash isolation and
  serial fallback when process spawning itself keeps failing;
* the **journal** (:mod:`repro.runner.journal`) — a write-ahead,
  fsync'd record of job fates that makes interrupted sweeps resumable;
* the **fault plan** (:mod:`repro.runner.faults`) — deterministic
  seeded fault injection for chaos-testing all of the above
  (``python -m repro chaos``);
* the **metrics** (:mod:`repro.runner.metrics`) — per-job wall time
  and throughput, cache hit/miss counts, peak concurrency;
* the **API** (:mod:`repro.runner.api`) tying them together, and a CLI
  (``python -m repro.runner``).

See docs/runner.md for the architecture and on-disk formats.
"""

from repro.runner.api import (
    DEFAULT_CACHE_DIR,
    ExperimentRun,
    ExperimentRunner,
    default_runner,
    default_store,
    default_trace_store,
    reset_default_runner,
    set_default_runner,
    swap_default_runner,
)
from repro.runner.cache import ResultStore
from repro.runner.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    default_chaos_plan,
    default_fleet_chaos_plan,
    fault_enospc,
    get_fault_plan,
    injecting,
    is_enospc,
    set_fault_plan,
)
from repro.runner.journal import RunJournal
from repro.runner.job import (
    RESULT_SCHEMA,
    TRACE_SCHEMA,
    ExperimentConfig,
    Job,
    JobFailure,
    job_key,
    trace_key,
)
from repro.runner.policy import (
    DEFAULT_SEGMENT_RECORDS,
    ExecutionPolicy,
    PolicyError,
    resolve_policy,
)
from repro.runner.tracestore import TraceStore
from repro.runner.metrics import JobMetric, RunMetrics
from repro.runner.pool import (
    PoolRun,
    Task,
    TaskError,
    TaskPool,
    TaskResult,
    backoff_delay,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_SEGMENT_RECORDS",
    "ExecutionPolicy",
    "ExperimentConfig",
    "ExperimentRun",
    "ExperimentRunner",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "Job",
    "JobFailure",
    "JobMetric",
    "PolicyError",
    "PoolRun",
    "RESULT_SCHEMA",
    "ResultStore",
    "RunJournal",
    "RunMetrics",
    "TRACE_SCHEMA",
    "TraceStore",
    "Task",
    "TaskError",
    "TaskPool",
    "TaskResult",
    "backoff_delay",
    "default_chaos_plan",
    "default_fleet_chaos_plan",
    "default_runner",
    "default_store",
    "default_trace_store",
    "fault_enospc",
    "get_fault_plan",
    "injecting",
    "is_enospc",
    "job_key",
    "reset_default_runner",
    "resolve_policy",
    "set_default_runner",
    "set_fault_plan",
    "swap_default_runner",
    "trace_key",
]
