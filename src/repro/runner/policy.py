"""ExecutionPolicy — the one object that says *how* work executes.

Before this module, execution knobs were scattered: ``engine=`` on
``api.configure`` and ``ExperimentRunner``, ``jobs=``/``timeout=``/
``retries=`` as loose constructor kwargs, ``--jobs``/``--engine`` CLI
flags, and the segment-parallel knobs of :mod:`repro.core.shard` would
have added two more.  :class:`ExecutionPolicy` consolidates them into
one frozen dataclass that travels as a unit through
``api.configure(policy=)``, ``ExperimentRunner(policy=)``, the service
broker, and a ``--policy key=val,...`` CLI flag.

Policy is *execution*, never *identity*: none of these fields may
enter ``job_key``/``trace_key``, so changing how work runs always hits
the same caches.  :func:`assert_excluded_from_identity` is the
enforced contract (called from tests and at runner construction).

The old kwargs keep working as deprecation-warning shims — see
docs/api.md for the migration table.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

from repro.core.kernel import coerce_engine
from repro.errors import ReproError


class PolicyError(ReproError):
    """An ExecutionPolicy value or ``--policy`` string is invalid."""


#: Default boundary spacing for segment-parallel analysis.  Chosen so
#: paper-scale traces (1e6+ records) split into enough segments to
#: keep a small pool busy while each segment still amortizes worker
#: startup and state-fold cost.
DEFAULT_SEGMENT_RECORDS = 250_000


@dataclass(frozen=True)
class ExecutionPolicy:
    """How experiments execute: engine, pool shape, segmentation.

    ``engine``
        Analysis engine name (``auto``/``columnar``/``reference``) or
        None for the process-wide default.
    ``jobs``
        Worker-pool width for cold jobs (and segment tasks).
    ``timeout`` / ``retries``
        Per-task deadline (seconds, None = none) and extra attempts
        per failing task (0 = fail fast), as in
        :class:`repro.runner.pool.TaskPool`.
    ``segments``
        Target segment count for single-trace segment-parallel
        analysis; 1 disables sharding (the default).
    ``segment_records``
        Checkpoint spacing written into the v2 segment index at
        capture/reindex time; also the floor below which a trace is
        never sharded (a segment smaller than this costs more to
        fold than it saves).
    """

    engine: str | None = None
    jobs: int = 1
    timeout: float | None = None
    retries: int = 1
    segments: int = 1
    segment_records: int = DEFAULT_SEGMENT_RECORDS

    def __post_init__(self) -> None:
        if self.engine is not None:
            # Normalize to the plain string value so describe() and
            # pickling stay engine-enum free.
            object.__setattr__(
                self, "engine", coerce_engine(self.engine).value)
        if self.jobs < 1:
            raise PolicyError(f"policy jobs must be >= 1, got {self.jobs}")
        if self.timeout is not None and self.timeout <= 0:
            raise PolicyError(
                f"policy timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise PolicyError(
                f"policy retries must be >= 0, got {self.retries}")
        if self.segments < 1:
            raise PolicyError(
                f"policy segments must be >= 1, got {self.segments}")
        if self.segment_records < 1:
            raise PolicyError(
                f"policy segment_records must be >= 1, "
                f"got {self.segment_records}")

    # ------------------------------------------------------------------

    def merged(self, **overrides) -> "ExecutionPolicy":
        """A copy with ``overrides`` applied (unknown keys rejected)."""
        names = {field.name for field in dataclasses.fields(self)}
        unknown = set(overrides) - names
        if unknown:
            raise PolicyError(
                f"unknown policy field {sorted(unknown)[0]!r} "
                f"(known: {', '.join(sorted(names))})")
        return dataclasses.replace(self, **overrides)

    def describe(self) -> dict:
        """JSON-ready view for ``/readyz`` and ``repro stats``."""
        return {
            "engine": self.engine or "auto",
            "jobs": self.jobs,
            "timeout": self.timeout,
            "retries": self.retries,
            "segments": self.segments,
            "segment_records": self.segment_records,
        }

    @classmethod
    def parse(cls, text: str,
              base: "ExecutionPolicy | None" = None) -> "ExecutionPolicy":
        """Parse a ``--policy`` string: ``key=val,key=val,...``.

        Values are coerced per field type; ``timeout=none`` clears the
        deadline.  Unknown keys and malformed values raise
        :class:`PolicyError` with the accepted spelling.
        """
        policy = base if base is not None else cls()
        text = text.strip()
        if not text:
            return policy
        overrides: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise PolicyError(
                    f"policy entry {part!r} is not key=value")
            key, __, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key == "engine":
                overrides[key] = raw
            elif key in ("jobs", "retries", "segments", "segment_records"):
                try:
                    overrides[key] = int(raw)
                except ValueError:
                    raise PolicyError(
                        f"policy {key} expects an integer, got {raw!r}"
                    ) from None
            elif key == "timeout":
                if raw.lower() in ("none", ""):
                    overrides[key] = None
                else:
                    try:
                        overrides[key] = float(raw)
                    except ValueError:
                        raise PolicyError(
                            f"policy timeout expects a number or "
                            f"'none', got {raw!r}") from None
            else:
                raise PolicyError(
                    f"unknown policy field {key!r} (known: engine, "
                    f"jobs, timeout, retries, segments, "
                    f"segment_records)")
        return policy.merged(**overrides)


#: Field names, for the identity-exclusion contract below.
POLICY_FIELDS = tuple(
    field.name for field in dataclasses.fields(ExecutionPolicy))


def assert_excluded_from_identity() -> None:
    """Policy fields must never be hashed into job/trace identity.

    ``job_key``/``trace_key`` feed every :class:`AnalysisConfig` and
    :class:`ExperimentConfig` field into the hash; if a policy field
    name ever appears there, execution knobs would start splitting the
    caches.  Cheap to check, so the runner checks it at construction.
    """
    from repro.core.analysis import AnalysisConfig
    from repro.runner.job import ExperimentConfig

    hashed = {f.name for f in dataclasses.fields(AnalysisConfig)}
    hashed |= {f.name for f in dataclasses.fields(ExperimentConfig)}
    overlap = set(POLICY_FIELDS) & hashed
    if overlap:  # pragma: no cover - guarded by test_policy
        raise AssertionError(
            f"ExecutionPolicy fields leak into job identity: "
            f"{sorted(overlap)}")


def resolve_policy(policy, *, jobs=None, timeout=None, retries=None,
                   engine=None, segments=None, segment_records=None,
                   owner: str = "ExperimentRunner") -> ExecutionPolicy:
    """Fold legacy kwargs into a policy, warning on each one used.

    Explicitly-passed legacy kwargs override the corresponding policy
    fields (a caller spelling out ``jobs=8`` means it); unspecified
    ones inherit from ``policy``.  This is the single shim behind
    every deprecated signature (runner, facade, broker).
    """
    legacy = {
        "jobs": jobs, "timeout": timeout, "retries": retries,
        "engine": engine, "segments": segments,
        "segment_records": segment_records,
    }
    used = {key: value for key, value in legacy.items()
            if value is not None}
    if used:
        warnings.warn(
            f"{owner}({', '.join(sorted(used))}=...) is deprecated; "
            f"pass policy=ExecutionPolicy(...) instead "
            f"(see docs/api.md)",
            DeprecationWarning, stacklevel=3)
    if policy is None:
        policy = ExecutionPolicy()
    elif not isinstance(policy, ExecutionPolicy):
        raise PolicyError(
            f"policy must be an ExecutionPolicy, got {type(policy).__name__}")
    if used:
        policy = policy.merged(**used)
    return policy
