"""Fault-tolerant parallel task execution.

The pool fans tasks out over one :class:`multiprocessing.Process` per
running task (capped at ``max_workers`` concurrent), rather than a
``multiprocessing.Pool`` — a dedicated process is the only way to
enforce a *per-task timeout with teeth*: a hung or runaway worker is
terminated without poisoning its siblings.

Failure handling, per task:

* the function raising → the traceback travels back over the task's
  queue and is recorded;
* the process dying without reporting (segfault, ``os._exit``,
  OOM-kill) → detected by exit code, recorded;
* the deadline passing → the process is terminated (then killed) and
  the timeout recorded.

Each failure mode consumes one attempt; a task gets ``1 + retries``
attempts before it is recorded as a :class:`TaskError`.  Failures
never abort the run — the remaining tasks keep flowing.

The ``fork`` start method is preferred when the platform offers it:
workers inherit the parent's (already-imported, already-monkeypatched)
state, which keeps startup cheap and makes test fault-injection
straightforward.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from dataclasses import dataclass
from typing import Callable

from repro.obs import get_recorder


@dataclass(frozen=True)
class Task:
    """One schedulable unit: ``fn(*args)`` run in a worker process."""

    key: str
    fn: Callable
    args: tuple = ()


@dataclass
class TaskResult:
    """A task's successful outcome.

    ``wall_time`` covers the successful attempt only; ``attempts``
    counts every try including failed ones.
    """

    key: str
    value: object
    wall_time: float
    attempts: int


@dataclass
class TaskError:
    """A task that failed every attempt."""

    key: str
    error: str
    wall_time: float
    attempts: int
    timed_out: bool = False


@dataclass
class PoolRun:
    """Everything one :meth:`TaskPool.run` call produced."""

    outcomes: dict[str, TaskResult | TaskError]
    peak_workers: int
    wall_time: float

    def results(self) -> dict[str, TaskResult]:
        return {key: out for key, out in self.outcomes.items()
                if isinstance(out, TaskResult)}

    def errors(self) -> dict[str, TaskError]:
        return {key: out for key, out in self.outcomes.items()
                if isinstance(out, TaskError)}


def _worker_entry(result_queue, fn, args) -> None:
    try:
        value = fn(*args)
    except BaseException:
        result_queue.put(("error", traceback.format_exc()))
    else:
        result_queue.put(("ok", value))


class _Running:
    __slots__ = ("task", "process", "queue", "started", "deadline", "attempt")

    def __init__(self, task, process, result_queue, started, deadline,
                 attempt):
        self.task = task
        self.process = process
        self.queue = result_queue
        self.started = started
        self.deadline = deadline
        self.attempt = attempt


class TaskPool:
    """Bounded-concurrency process supervisor.

    Args:
        max_workers: concurrent worker cap (default: CPU count).
        timeout: per-attempt wall-clock limit in seconds (None = no
            limit).
        retries: extra attempts after a failed one.
        poll_interval: supervisor scan period in seconds.
        start_method: multiprocessing start method; default prefers
            ``fork`` where available.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        timeout: float | None = None,
        retries: int = 1,
        poll_interval: float = 0.02,
        start_method: str | None = None,
    ):
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.poll_interval = poll_interval

    def run(self, tasks) -> PoolRun:
        """Execute ``tasks``; returns outcomes keyed by task key."""
        run_start = time.monotonic()
        pending: list[tuple[Task, int]] = [(task, 1) for task in tasks]
        pending.reverse()  # pop() from the end preserves input order
        running: list[_Running] = []
        outcomes: dict[str, TaskResult | TaskError] = {}
        peak = 0

        while pending or running:
            while pending and len(running) < self.max_workers:
                task, attempt = pending.pop()
                running.append(self._launch(task, attempt))
            peak = max(peak, len(running))

            still_running = []
            for entry in running:
                finished = self._scan(entry, outcomes, pending)
                if not finished:
                    still_running.append(entry)
            running = still_running
            if running:
                time.sleep(self.poll_interval)

        return PoolRun(
            outcomes=outcomes,
            peak_workers=peak,
            wall_time=time.monotonic() - run_start,
        )

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _launch(self, task: Task, attempt: int) -> _Running:
        get_recorder().count("pool.launches", 1)
        result_queue = self._ctx.Queue(maxsize=1)
        process = self._ctx.Process(
            target=_worker_entry,
            args=(result_queue, task.fn, task.args),
            daemon=True,
        )
        process.start()
        now = time.monotonic()
        deadline = now + self.timeout if self.timeout is not None else None
        return _Running(task, process, result_queue, now, deadline, attempt)

    def _scan(self, entry: _Running, outcomes, pending) -> bool:
        """Check one running task; returns True when it left the pool."""
        try:
            status, value = entry.queue.get_nowait()
        except queue_module.Empty:
            pass
        else:
            self._join(entry)
            self._settle(entry, status, value, outcomes, pending)
            return True

        if not entry.process.is_alive():
            # Died without (yet) delivering: drain once more, then treat
            # an empty queue as a hard crash.
            try:
                status, value = entry.queue.get(timeout=0.25)
            except queue_module.Empty:
                status, value = "error", (
                    f"worker died with exit code {entry.process.exitcode}"
                )
            self._join(entry)
            self._settle(entry, status, value, outcomes, pending)
            return True

        if entry.deadline is not None and time.monotonic() > entry.deadline:
            entry.process.terminate()
            entry.process.join(timeout=1.0)
            if entry.process.is_alive():
                entry.process.kill()
                entry.process.join(timeout=1.0)
            entry.queue.close()
            error = f"timed out after {self.timeout:.1f}s"
            self._settle(entry, "timeout", error, outcomes, pending)
            return True
        return False

    def _settle(self, entry, status, value, outcomes, pending) -> None:
        wall = time.monotonic() - entry.started
        recorder = get_recorder()
        if status == "ok":
            outcomes[entry.task.key] = TaskResult(
                key=entry.task.key, value=value, wall_time=wall,
                attempts=entry.attempt,
            )
            return
        if status == "timeout":
            recorder.count("pool.timeouts", 1)
        if entry.attempt <= self.retries:
            recorder.count("pool.retries", 1)
            pending.append((entry.task, entry.attempt + 1))
            return
        recorder.count("pool.failures", 1)
        outcomes[entry.task.key] = TaskError(
            key=entry.task.key, error=str(value), wall_time=wall,
            attempts=entry.attempt, timed_out=(status == "timeout"),
        )

    @staticmethod
    def _join(entry: _Running) -> None:
        entry.process.join(timeout=5.0)
        if entry.process.is_alive():
            entry.process.kill()
            entry.process.join(timeout=1.0)
        entry.queue.close()
