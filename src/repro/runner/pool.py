"""Fault-tolerant parallel task execution.

The pool fans tasks out over one :class:`multiprocessing.Process` per
running task (capped at ``max_workers`` concurrent), rather than a
``multiprocessing.Pool`` — a dedicated process is the only way to
enforce a *per-task timeout with teeth*: a hung or runaway worker is
terminated without poisoning its siblings.

Failure handling, per task:

* the function raising → the traceback travels back over the task's
  queue and is recorded (``kind="error"``);
* the process dying without reporting (segfault, ``os._exit``,
  OOM-kill) → detected by exit code, recorded (``kind="crash"``);
* the deadline passing → the process is terminated (then killed) and
  the timeout recorded (``kind="timeout"``);
* the process failing to *spawn* at all → recorded (``kind="spawn"``).

Each failure mode consumes one attempt; a task gets ``1 + retries``
attempts before it is recorded as a :class:`TaskError`.  Retries are
spaced by **exponential backoff with full jitter** (``backoff_base *
2^(attempt-1)`` capped at ``backoff_cap``, plus a uniform jitter of up
to the same again) so a struggling machine is not hammered.  Failures
never abort the run — the remaining tasks keep flowing.

**Graceful degradation**: ``degrade_after`` consecutive *pool-level*
failures (spawn failures or crash-deaths — not task exceptions or
timeouts) flip the pool into serial fallback: the remaining tasks run
inline in the parent process, trading isolation and timeouts for
certain progress.  The switch is counted (``pool.serial_fallback``)
and reported on the returned :class:`PoolRun`.

**Cancellation**: ``run(tasks, cancel=event)`` checks the event every
scan; once set, no new task starts, in-flight workers drain to
completion, and un-launched tasks are simply absent from the outcomes
(``PoolRun.cancelled`` is True).  This is the SIGINT/SIGTERM
checkpoint path of the runner.

Fault injection (:mod:`repro.runner.faults`) hooks in at three points,
all decided in the *parent* so counters and determinism survive a
dying child: ``pool.spawn`` (spawn failure), and the worker directives
``worker.crash`` / ``worker.hang`` / ``worker.slow`` shipped into the
child to execute before its task.  The installed plan itself also
rides along so store/trace sites keep firing inside workers.

The ``fork`` start method is preferred when the platform offers it:
workers inherit the parent's (already-imported, already-monkeypatched)
state, which keeps startup cheap and makes test fault-injection
straightforward.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue as queue_module
import random
import time
import traceback
from dataclasses import dataclass
from typing import Callable

from repro.errors import PoolSpawnError
from repro.obs import get_recorder
from repro.runner.faults import get_fault_plan, is_enospc, set_fault_plan

_log = logging.getLogger(__name__)

def backoff_delay(attempt: int, base: float, cap: float,
                  rng: random.Random) -> float:
    """Exponential backoff with full jitter, shared retry policy.

    The delay before attempt ``attempt + 1``: ``base * 2^(attempt-1)``
    capped at ``cap``, plus a uniform jitter of up to the same again.
    Used by the pool between task attempts and by the service client
    between HTTP retries (see docs/service.md).
    """
    deterministic = min(cap, base * (2 ** (attempt - 1)))
    return deterministic + rng.uniform(0.0, deterministic)


#: TaskError.kind values (see also repro.errors.FAILURE_KINDS).
KIND_ERROR = "error"      #: the task function raised
KIND_CRASH = "crash"      #: the worker process died without reporting
KIND_TIMEOUT = "timeout"  #: the per-attempt deadline passed
KIND_SPAWN = "spawn"      #: the worker process could not be started
KIND_ENOSPC = "enospc"    #: the task function raised a disk-full OSError


@dataclass(frozen=True)
class Task:
    """One schedulable unit: ``fn(*args)`` run in a worker process."""

    key: str
    fn: Callable
    args: tuple = ()


@dataclass
class TaskResult:
    """A task's successful outcome.

    ``wall_time`` covers the successful attempt only; ``attempts``
    counts every try including failed ones.
    """

    key: str
    value: object
    wall_time: float
    attempts: int


@dataclass
class TaskError:
    """A task that failed every attempt.

    ``kind`` is the structured failure class (one of the ``KIND_*``
    constants) — match on it, not on the error text.
    """

    key: str
    error: str
    wall_time: float
    attempts: int
    timed_out: bool = False
    kind: str = KIND_ERROR


@dataclass
class PoolRun:
    """Everything one :meth:`TaskPool.run` call produced."""

    outcomes: dict[str, TaskResult | TaskError]
    peak_workers: int
    wall_time: float
    degraded: bool = False
    cancelled: bool = False

    def results(self) -> dict[str, TaskResult]:
        return {key: out for key, out in self.outcomes.items()
                if isinstance(out, TaskResult)}

    def errors(self) -> dict[str, TaskError]:
        return {key: out for key, out in self.outcomes.items()
                if isinstance(out, TaskError)}


def _worker_entry(result_queue, fn, args, directive=None,
                  plan=None) -> None:
    if plan is not None:
        set_fault_plan(plan)
    if directive is not None:
        kind, value = directive
        if kind == "crash":
            os._exit(int(value))
        elif kind == "hang":
            time.sleep(float(value))
        elif kind == "slow":
            time.sleep(float(value))
    try:
        value = fn(*args)
    except BaseException as exc:
        kind = KIND_ENOSPC if is_enospc(exc) else KIND_ERROR
        result_queue.put((kind, traceback.format_exc()))
    else:
        result_queue.put(("ok", value))


class _Running:
    __slots__ = ("task", "process", "queue", "started", "deadline", "attempt")

    def __init__(self, task, process, result_queue, started, deadline,
                 attempt):
        self.task = task
        self.process = process
        self.queue = result_queue
        self.started = started
        self.deadline = deadline
        self.attempt = attempt


class _Pending:
    __slots__ = ("task", "attempt", "ready_at")

    def __init__(self, task, attempt, ready_at=0.0):
        self.task = task
        self.attempt = attempt
        self.ready_at = ready_at


class TaskPool:
    """Bounded-concurrency process supervisor.

    Args:
        max_workers: concurrent worker cap (default: CPU count).
        timeout: per-attempt wall-clock limit in seconds (None = no
            limit; unenforceable in serial-fallback mode).
        retries: extra attempts after a failed one.
        poll_interval: supervisor scan period in seconds.
        start_method: multiprocessing start method; default prefers
            ``fork`` where available.
        backoff_base: first-retry backoff in seconds; attempt ``n``
            waits ``base * 2^(n-1)`` (capped) plus full jitter.
        backoff_cap: upper bound on the deterministic part of the
            backoff.
        degrade_after: consecutive pool-level failures (spawn/crash)
            that trip serial fallback.
        clock / sleep / rng: injectable time source, sleeper and
            jitter RNG (tests drive the backoff with a fake clock).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        timeout: float | None = None,
        retries: int = 1,
        poll_interval: float = 0.02,
        start_method: str | None = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        degrade_after: int = 3,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
        rng: random.Random | None = None,
    ):
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.poll_interval = poll_interval
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.degrade_after = max(1, degrade_after)
        self._clock = clock or time.monotonic
        self._sleep = sleep or time.sleep
        self._rng = rng or random.Random()
        self._degraded = False
        self._consecutive_pool_failures = 0

    def run(self, tasks, cancel=None) -> PoolRun:
        """Execute ``tasks``; returns outcomes keyed by task key.

        ``cancel``: an optional :class:`threading.Event`-like object;
        once set, pending tasks are abandoned and in-flight workers
        drained (their outcomes still land).
        """
        outcomes: dict[str, TaskResult | TaskError] = {}
        stats: dict = {}
        for __ in self._run_iter(tasks, cancel, outcomes, stats):
            pass
        return PoolRun(
            outcomes=outcomes,
            peak_workers=stats["peak"],
            wall_time=stats["wall"],
            degraded=stats["degraded"],
            cancelled=stats["cancelled"],
        )

    def run_stream(self, tasks, cancel=None, stats=None):
        """Incremental :meth:`run`: yields ``(key, outcome)`` as each
        task settles (after retries), in settle order.

        The consumer can merge results while later tasks still
        execute — :mod:`repro.core.shard` pipelines its sequential
        merge against in-flight segment workers this way.  Closing the
        generator early (break, or an exception in the consumer) reaps
        any in-flight workers.  Pass a dict as ``stats`` to receive
        the run's ``peak``/``wall``/``degraded``/``cancelled`` figures
        once the stream is exhausted.
        """
        outcomes: dict[str, TaskResult | TaskError] = {}
        yield from self._run_iter(tasks, cancel, outcomes,
                                  stats if stats is not None else {})

    def _run_iter(self, tasks, cancel, outcomes, stats):
        run_start = self._clock()
        self._degraded = False
        self._consecutive_pool_failures = 0
        plan = get_fault_plan()
        pending: list[_Pending] = [_Pending(task, 1) for task in tasks]
        pending.reverse()  # pop() from the end preserves input order
        running: list[_Running] = []
        peak = 0
        cancelled = False
        emitted = 0

        try:
            while pending or running:
                if (cancel is not None and not cancelled
                        and cancel.is_set()):
                    cancelled = True
                    pending.clear()

                if self._degraded:
                    while pending:
                        entry = pending.pop()
                        self._run_inline(entry.task, entry.attempt,
                                         outcomes, pending)
                        if (cancel is not None and not cancelled
                                and cancel.is_set()):
                            cancelled = True
                            pending.clear()
                else:
                    self._launch_ready(pending, running, outcomes, plan)
                peak = max(peak, len(running))

                still_running = []
                for entry in running:
                    finished = self._scan(entry, outcomes, pending)
                    if not finished:
                        still_running.append(entry)
                running = still_running
                if len(outcomes) > emitted:
                    settled = list(outcomes.items())
                    for key, outcome in settled[emitted:]:
                        yield key, outcome
                    emitted = len(settled)
                if running or (pending and not self._degraded):
                    self._sleep(self.poll_interval)
        finally:
            # Abandoned mid-stream (consumer break/raise): don't leave
            # workers running against a merge that will never happen.
            for entry in running:
                self._reap(entry.process, graceful=False)
                self._drain_queue(entry.queue)

        stats["peak"] = peak
        stats["wall"] = self._clock() - run_start
        stats["degraded"] = self._degraded
        stats["cancelled"] = cancelled

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _launch_ready(self, pending, running, outcomes, plan) -> None:
        """Start every ready pending task while capacity remains."""
        now = self._clock()
        index = len(pending) - 1
        while index >= 0 and len(running) < self.max_workers:
            entry = pending[index]
            if entry.ready_at <= now:
                del pending[index]
                started = self._try_launch(entry.task, entry.attempt,
                                           plan, outcomes, pending)
                if started is not None:
                    running.append(started)
                if self._degraded:
                    return
            index -= 1

    def _try_launch(self, task, attempt, plan, outcomes,
                    pending) -> _Running | None:
        try:
            if plan is not None and plan.should_fire("pool.spawn"):
                raise PoolSpawnError("injected fault at pool.spawn")
            return self._launch(task, attempt, plan)
        except (PoolSpawnError, OSError) as error:
            get_recorder().count("pool.spawn_failures", 1)
            self._note_pool_failure()
            self._settle(task, attempt, self._clock(), KIND_SPAWN,
                         f"could not spawn worker: {error}", outcomes,
                         pending)
            return None

    def _launch(self, task: Task, attempt: int, plan) -> _Running:
        get_recorder().count("pool.launches", 1)
        directive = None
        if plan is not None:
            if plan.should_fire("worker.crash"):
                directive = ("crash", 32)
            elif (self.timeout is not None
                    and plan.should_fire("worker.hang")):
                directive = ("hang", max(30.0, self.timeout * 20.0))
            elif plan.should_fire("worker.slow"):
                spec = plan.spec("worker.slow")
                directive = ("slow", spec.delay if spec else 0.05)
        result_queue = self._ctx.Queue(maxsize=1)
        process = self._ctx.Process(
            target=_worker_entry,
            args=(result_queue, task.fn, task.args, directive, plan),
            daemon=True,
        )
        process.start()
        now = self._clock()
        deadline = now + self.timeout if self.timeout is not None else None
        return _Running(task, process, result_queue, now, deadline, attempt)

    def _scan(self, entry: _Running, outcomes, pending) -> bool:
        """Check one running task; returns True when it left the pool."""
        try:
            status, value = entry.queue.get_nowait()
        except queue_module.Empty:
            pass
        else:
            self._join(entry)
            self._consecutive_pool_failures = 0
            self._settle(entry.task, entry.attempt, entry.started,
                         status, value, outcomes, pending)
            return True

        if not entry.process.is_alive():
            # Died without (yet) delivering: drain once more, then treat
            # an empty queue as a hard crash.
            try:
                status, value = entry.queue.get(timeout=0.25)
            except queue_module.Empty:
                status, value = KIND_CRASH, (
                    f"worker died with exit code {entry.process.exitcode}"
                )
                self._note_pool_failure()
            else:
                self._consecutive_pool_failures = 0
            self._join(entry)
            self._settle(entry.task, entry.attempt, entry.started,
                         status, value, outcomes, pending)
            return True

        if entry.deadline is not None and self._clock() > entry.deadline:
            self._reap(entry.process, graceful=False)
            self._drain_queue(entry.queue)
            error = f"timed out after {self.timeout:.1f}s"
            self._settle(entry.task, entry.attempt, entry.started,
                         KIND_TIMEOUT, error, outcomes, pending)
            return True
        return False

    def _note_pool_failure(self) -> None:
        """Count a spawn/crash failure; degrade when they repeat."""
        self._consecutive_pool_failures += 1
        if (self._consecutive_pool_failures >= self.degrade_after
                and not self._degraded):
            self._degraded = True
            get_recorder().count("pool.serial_fallback", 1)
            _log.warning(
                "pool: %d consecutive spawn/crash failures; degrading "
                "to serial in-process execution",
                self._consecutive_pool_failures,
            )

    def _run_inline(self, task: Task, attempt: int, outcomes,
                    pending) -> None:
        """Serial-fallback execution: run the task in this process.

        No crash isolation and no timeout enforcement — certain
        progress is the trade.  Worker fault directives do not apply
        (they would take the parent down with them).
        """
        get_recorder().count("pool.inline_runs", 1)
        started = self._clock()
        try:
            value = task.fn(*task.args)
        except Exception as exc:
            kind = KIND_ENOSPC if is_enospc(exc) else KIND_ERROR
            self._settle(task, attempt, started, kind,
                         traceback.format_exc(), outcomes, pending)
        else:
            self._settle(task, attempt, started, "ok", value, outcomes,
                         pending)

    def _backoff(self, attempt: int) -> float:
        """Retry delay before attempt ``attempt + 1`` (full jitter)."""
        return backoff_delay(attempt, self.backoff_base,
                             self.backoff_cap, self._rng)

    def _settle(self, task, attempt, started, status, value, outcomes,
                pending) -> None:
        wall = self._clock() - started
        recorder = get_recorder()
        if status == "ok":
            outcomes[task.key] = TaskResult(
                key=task.key, value=value, wall_time=wall,
                attempts=attempt,
            )
            return
        if status == KIND_TIMEOUT:
            recorder.count("pool.timeouts", 1)
        if attempt <= self.retries:
            delay = self._backoff(attempt)
            recorder.count("pool.retries", 1)
            recorder.count("pool.backoff_seconds", delay)
            pending.append(_Pending(task, attempt + 1,
                                    self._clock() + delay))
            return
        recorder.count("pool.failures", 1)
        outcomes[task.key] = TaskError(
            key=task.key, error=str(value), wall_time=wall,
            attempts=attempt, timed_out=(status == KIND_TIMEOUT),
            kind=status if status in (KIND_CRASH, KIND_TIMEOUT,
                                      KIND_SPAWN, KIND_ENOSPC)
            else KIND_ERROR,
        )

    def _join(self, entry: _Running) -> None:
        self._reap(entry.process)
        self._drain_queue(entry.queue)

    @staticmethod
    def _reap(process, graceful: bool = True) -> None:
        """Make sure ``process`` is gone: join, then escalate
        terminate → kill in a bounded loop so a stuck worker can never
        linger as a zombie.  ``graceful=False`` (the timeout path)
        skips the initial wait — the worker is known to be hung."""
        if graceful:
            process.join(timeout=1.0)
        for stop in (process.terminate, process.kill, process.kill):
            if not process.is_alive():
                return
            try:
                stop()
            except OSError:
                pass
            process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - last resort
            get_recorder().count("pool.zombies", 1)
            _log.warning("pool: worker pid %s survived kill escalation",
                         process.pid)

    @staticmethod
    def _drain_queue(result_queue) -> None:
        """Release the queue and its feeder thread unconditionally.

        ``cancel_join_thread`` matters: without it a queue whose feeder
        thread still holds buffered data keeps the (dead) worker's
        resources pinned and can hang interpreter shutdown.
        """
        try:
            result_queue.close()
            result_queue.cancel_join_thread()
        except OSError:  # pragma: no cover - queue already torn down
            pass
