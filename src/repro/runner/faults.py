"""Deterministic, seeded fault injection — the chaos layer.

A :class:`FaultPlan` maps named *injection sites* across the stack to
:class:`FaultSpec` firing rules.  Instrumented call sites ask the
process-wide plan (installed via :func:`set_fault_plan`,
:func:`injecting` or ``repro.api.configure(faults=...)``) whether to
misbehave *right now*; with no plan installed every probe is a single
``None`` check, so production paths pay nothing.

Sites wired through the stack:

========================  ====================================================
site                      effect when it fires
========================  ====================================================
``store.read``            result-store read raises an I/O error (miss, no
                          deletion)
``store.write``           result-store write raises an I/O error
``store.truncate``        result-store write publishes a *truncated* envelope
                          (caught later by checksum validation)
``trace.read``            trace-store read raises an I/O error
``trace.write``           trace-store write raises an I/O error
``trace.corrupt``         a just-written trace file is truncated on disk
``worker.crash``          the next worker process ``os._exit``\\ s before
                          computing
``worker.hang``           the next worker sleeps far past any timeout
``worker.slow``           the next worker sleeps ``delay`` seconds first
``pool.spawn``            the pool fails to spawn a worker process
``service.accept``        the analysis server drops a fresh connection
``service.handler``       the analysis server 500s an otherwise-fine request
``store.enospc``          a store/journal write raises ``ENOSPC`` (disk
                          full); the stores respond with eviction + one
                          retry, the journal degrades to unjournaled
``worker.kill``           the fleet chaos driver ``kill -9``\\ s a live serve
                          worker mid-load (evaluated in the driver, see
                          :mod:`repro.service.fleet`)
``worker.wedge``          a serve worker stops answering requests —
                          ``/healthz`` included — without dying, so only
                          the supervisor's probe timeout can catch it
========================  ====================================================

Firing is **deterministic**: each site draws from its own
``random.Random`` seeded from ``(plan seed, site name)``, and a spec
may instead (or additionally) name explicit 1-based evaluation
ordinals (``schedule``) on which it fires.  ``max_fires`` caps the
total so a plan cannot livelock a retrying runner.  Every injection
increments a ``faults.injected.<site>`` obs counter and the plan's own
:attr:`FaultPlan.fired` tally.

Worker-process coupling: the pool snapshots the installed plan when a
run starts, decides *worker-level* faults (crash/hang/slow, spawn
failure) in the parent — so their counters and determinism survive the
child dying — and ships the plan into each worker so store/trace sites
keep firing there too.
"""

from __future__ import annotations

import errno
import hashlib
import random
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs import get_recorder


class InjectedFault(OSError):
    """The artificial I/O error raised by firing injection sites.

    Subclasses :class:`OSError` on purpose: injected faults must flow
    through exactly the error-handling paths a real disk or process
    fault would take — that is the point of injecting them.
    """


def is_enospc(error: BaseException) -> bool:
    """True when ``error`` is a disk-full :class:`OSError`.

    Injected ``store.enospc`` faults carry the real ``errno`` so the
    recovery paths cannot tell them from an actual full disk.
    """
    return isinstance(error, OSError) and error.errno == errno.ENOSPC


def fault_enospc(site: str = "store.enospc") -> None:
    """Raise a disk-full :class:`InjectedFault` when ``site`` fires."""
    plan = _PLAN
    if plan is not None and plan.should_fire(site):
        raise InjectedFault(errno.ENOSPC,
                            f"injected ENOSPC at {site}")


@dataclass(frozen=True)
class FaultSpec:
    """Firing rule for one injection site.

    Attributes:
        rate: probability of firing per evaluation (0.0 disables the
            probabilistic channel; the site's seeded RNG is only drawn
            when positive, keeping schedules fully deterministic).
        schedule: explicit 1-based evaluation ordinals that always
            fire (subject to ``max_fires``).
        max_fires: total firing cap for the site (None = unbounded).
        delay: seconds of injected latency (``worker.slow``).
    """

    rate: float = 0.0
    schedule: tuple[int, ...] = ()
    max_fires: int | None = None
    delay: float = 0.05

    def to_dict(self) -> dict:
        return {
            "rate": self.rate,
            "schedule": list(self.schedule),
            "max_fires": self.max_fires,
            "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        return cls(
            rate=float(payload.get("rate", 0.0)),
            schedule=tuple(payload.get("schedule", ())),
            max_fires=payload.get("max_fires"),
            delay=float(payload.get("delay", 0.05)),
        )


@dataclass
class FaultPlan:
    """A seeded set of per-site firing rules.

    Attributes:
        seed: base seed; each site derives its own RNG from
            ``(seed, site)`` so adding a site never perturbs another's
            sequence.
        specs: site name -> :class:`FaultSpec`.
        fired: site name -> times fired (in *this* process).
    """

    seed: int = 0
    specs: dict = field(default_factory=dict)
    fired: dict = field(default_factory=dict)
    _evals: dict = field(default_factory=dict, repr=False)
    _rngs: dict = field(default_factory=dict, repr=False)

    def spec(self, site: str) -> FaultSpec | None:
        return self.specs.get(site)

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{site}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._rngs[site] = rng
        return rng

    def should_fire(self, site: str) -> bool:
        """Evaluate ``site`` once; True when a fault must be injected."""
        spec = self.specs.get(site)
        if spec is None:
            return False
        ordinal = self._evals.get(site, 0) + 1
        self._evals[site] = ordinal
        fired = self.fired.get(site, 0)
        if spec.max_fires is not None and fired >= spec.max_fires:
            return False
        fire = ordinal in spec.schedule
        if not fire and spec.rate > 0.0:
            fire = self._rng(site).random() < spec.rate
        if fire:
            self.fired[site] = fired + 1
            get_recorder().count(f"faults.injected.{site}", 1)
        return fire

    def distinct_fired(self) -> int:
        """How many distinct sites have fired (in this process)."""
        return sum(1 for count in self.fired.values() if count)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "specs": {site: spec.to_dict()
                      for site, spec in self.specs.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            specs={site: FaultSpec.from_dict(spec)
                   for site, spec in payload.get("specs", {}).items()},
        )


def default_chaos_plan(seed: int = 0, timeout: float | None = None,
                       ) -> FaultPlan:
    """The stock plan ``python -m repro chaos`` runs under.

    Schedule-driven (not probabilistic) so a fixed seed *guarantees*
    several distinct fault kinds fire on even a two-workload smoke
    sweep: early store reads fail, the first result write is truncated,
    the first trace file rots on disk, one worker crashes, one worker
    is slow, and one pool spawn fails.  ``worker.hang`` joins only when
    the caller enforces a ``timeout`` — without one a hung worker could
    stall the suite forever, which is a caller bug, not chaos.
    """
    specs = {
        "store.read": FaultSpec(schedule=(1, 3), max_fires=2),
        "store.truncate": FaultSpec(schedule=(1,), max_fires=1),
        "store.write": FaultSpec(schedule=(3,), max_fires=1),
        "trace.read": FaultSpec(schedule=(1,), max_fires=1),
        "trace.corrupt": FaultSpec(schedule=(1,), max_fires=1),
        "worker.crash": FaultSpec(schedule=(1,), max_fires=1),
        "worker.slow": FaultSpec(schedule=(3,), max_fires=1, delay=0.05),
        "pool.spawn": FaultSpec(schedule=(2,), max_fires=1),
    }
    if timeout is not None:
        specs["worker.hang"] = FaultSpec(schedule=(4,), max_fires=1)
    return FaultPlan(seed=seed, specs=specs)


def default_fleet_chaos_plan(seed: int = 0) -> FaultPlan:
    """The stock plan ``python -m repro chaos --fleet`` runs under.

    Schedule-driven so a fixed seed guarantees the headline fault —
    ``kill -9`` of a live worker mid-load — actually fires, plus a
    wedged worker (alive but unresponsive, caught only by the probe
    timeout) and one injected disk-full write.  ``worker.kill`` and
    ``worker.wedge`` ordinals are request ticks of the chaos driver's
    load loop; ``store.enospc`` fires inside whichever worker's store
    evaluates it first.
    """
    return FaultPlan(seed=seed, specs={
        "worker.kill": FaultSpec(schedule=(3,), max_fires=1),
        "worker.wedge": FaultSpec(schedule=(9,), max_fires=1),
        "store.enospc": FaultSpec(schedule=(1,), max_fires=1),
    })


# ----------------------------------------------------------------------
# The process-wide installed plan.
# ----------------------------------------------------------------------

_PLAN: FaultPlan | None = None


def get_fault_plan() -> FaultPlan | None:
    """The currently installed plan (None = no injection)."""
    return _PLAN


def set_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide; returns the previous plan."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


@contextmanager
def injecting(plan: FaultPlan | None):
    """``with injecting(plan): ...`` — install ``plan`` for the block."""
    previous = set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)


def maybe_fault(site: str) -> bool:
    """Evaluate ``site`` against the installed plan; True = misbehave.

    The no-plan fast path is one global read and one ``is None`` test.
    """
    plan = _PLAN
    if plan is None:
        return False
    return plan.should_fire(site)


def fault_io(site: str) -> None:
    """Raise :class:`InjectedFault` when ``site`` fires."""
    plan = _PLAN
    if plan is not None and plan.should_fire(site):
        raise InjectedFault(f"injected fault at {site}")
