"""Simulated memory with word-granularity producer tracking.

Values live in two sparse maps: 32-bit words keyed by aligned address
and 64-bit floats keyed by their (8-byte aligned) address.  Sub-word
accesses read-modify the containing word.  Producer tracking — which
dynamic store last wrote a location — is kept at word granularity for
integer data and at cell granularity for floats; a byte store marks the
whole containing word (documented approximation, see DESIGN.md).

Uninitialised reads return zero and have no producer, which the model
interprets as a ``D`` (input-data) node.
"""

from __future__ import annotations

from repro.errors import SimError
from repro.isa.layout import WORD_MASK


class Memory:
    """Sparse byte-addressed memory."""

    def __init__(self):
        self._words: dict[int, int] = {}
        self._floats: dict[int, float] = {}
        #: word/float address -> (producer uid, producer pc); absent => D.
        self._producers: dict[int, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Integer access.
    # ------------------------------------------------------------------

    def read_word(self, addr: int) -> int:
        if addr & 3:
            raise SimError(f"unaligned word read at {addr:#x}")
        return self._words.get(addr, 0)

    def write_word(self, addr: int, value: int) -> None:
        if addr & 3:
            raise SimError(f"unaligned word write at {addr:#x}")
        self._words[addr] = value & WORD_MASK

    def read_byte(self, addr: int) -> int:
        word = self._words.get(addr & ~3, 0)
        return (word >> ((addr & 3) * 8)) & 0xFF

    def write_byte(self, addr: int, value: int) -> None:
        base = addr & ~3
        shift = (addr & 3) * 8
        word = self._words.get(base, 0)
        self._words[base] = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)

    def read_half(self, addr: int) -> int:
        if addr & 1:
            raise SimError(f"unaligned halfword read at {addr:#x}")
        word = self._words.get(addr & ~3, 0)
        return (word >> ((addr & 2) * 8)) & 0xFFFF

    def write_half(self, addr: int, value: int) -> None:
        if addr & 1:
            raise SimError(f"unaligned halfword write at {addr:#x}")
        base = addr & ~3
        shift = (addr & 2) * 8
        word = self._words.get(base, 0)
        self._words[base] = (word & ~(0xFFFF << shift)) | (
            (value & 0xFFFF) << shift
        )

    # ------------------------------------------------------------------
    # Floating-point access (8-byte cells holding Python floats).
    # ------------------------------------------------------------------

    def read_float(self, addr: int) -> float:
        if addr & 7:
            raise SimError(f"unaligned float read at {addr:#x}")
        return self._floats.get(addr, 0.0)

    def write_float(self, addr: int, value: float) -> None:
        if addr & 7:
            raise SimError(f"unaligned float write at {addr:#x}")
        self._floats[addr] = float(value)

    # ------------------------------------------------------------------
    # Producer tracking (used only by the tracing machine).
    # ------------------------------------------------------------------

    def producer(self, addr: int) -> tuple[int, int] | None:
        """Return (uid, pc) of the last store to the cell, or None (D)."""
        return self._producers.get(addr & ~3)

    def float_producer(self, addr: int) -> tuple[int, int] | None:
        return self._producers.get(addr)

    def set_producer(self, addr: int, uid: int, pc: int) -> None:
        self._producers[addr & ~3] = (uid, pc)

    def set_float_producer(self, addr: int, uid: int, pc: int) -> None:
        self._producers[addr] = (uid, pc)

    def footprint(self) -> int:
        """Number of initialised cells (words + floats)."""
        return len(self._words) + len(self._floats)
