"""Functional simulator for the MIPS-like ISA.

:class:`Machine` executes an assembled :class:`repro.asm.Program` and
emits a *dynamic trace*: one :class:`DynInst` record per executed
instruction, carrying the values consumed and produced together with
the dynamic producer of every source operand.  This trace is exactly
the information the paper's dynamic prediction graph is built from.
"""

from repro.cpu.machine import Machine, MachineResult, run_program
from repro.cpu.memory import Memory
from repro.cpu.trace import DynInst, Source

__all__ = [
    "DynInst",
    "Machine",
    "MachineResult",
    "Memory",
    "Source",
    "run_program",
]
