"""Pure operand-level semantics for ALU-category opcodes.

Each function takes the two operand values ``(a, b)`` — where ``b`` is
the second register value or the immediate, whichever the instruction
uses — and returns the produced value.  Integer results are 32-bit
unsigned-wrapped; floating-point results are Python floats.
"""

from __future__ import annotations

import math

from repro.errors import SimError
from repro.isa.layout import WORD_MASK, to_signed


def _wrap(value: int) -> int:
    return value & WORD_MASK


def _div(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        raise SimError("integer division by zero")
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return _wrap(quotient)


def _rem(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        raise SimError("integer remainder by zero")
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return _wrap(remainder)


def _divu(a: int, b: int) -> int:
    if b == 0:
        raise SimError("integer division by zero")
    return a // b


def _remu(a: int, b: int) -> int:
    if b == 0:
        raise SimError("integer remainder by zero")
    return a % b


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise SimError("floating-point division by zero")
    return a / b


def _fsqrt(a: float, _b) -> float:
    if a < 0.0:
        raise SimError("square root of a negative value")
    return math.sqrt(a)


def _ftoi(a: float, _b) -> int:
    if not math.isfinite(a) or abs(a) >= 2**63:
        raise SimError(f"float-to-int conversion out of range: {a!r}")
    return _wrap(math.trunc(a))


#: op -> f(a, b) -> value.  ``a`` is src1's value (0 when the op has no
#: register source, e.g. lui), ``b`` is src2's value or the immediate.
ALU_FUNCS = {
    "add": lambda a, b: _wrap(a + b),
    "addu": lambda a, b: _wrap(a + b),
    "sub": lambda a, b: _wrap(a - b),
    "subu": lambda a, b: _wrap(a - b),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: _wrap(~(a | b)),
    "slt": lambda a, b: int(to_signed(a) < to_signed(b)),
    "sltu": lambda a, b: int(a < b),
    "sllv": lambda a, b: _wrap(a << (b & 31)),
    "srlv": lambda a, b: a >> (b & 31),
    "srav": lambda a, b: _wrap(to_signed(a) >> (b & 31)),
    "mul": lambda a, b: _wrap(to_signed(a) * to_signed(b)),
    "div": _div,
    "divu": _divu,
    "rem": _rem,
    "remu": _remu,
    "addi": lambda a, b: _wrap(a + b),
    "addiu": lambda a, b: _wrap(a + b),
    "andi": lambda a, b: a & b,
    "ori": lambda a, b: a | b,
    "xori": lambda a, b: a ^ b,
    "slti": lambda a, b: int(to_signed(a) < b),
    "sltiu": lambda a, b: int(a < _wrap(b)),
    "sll": lambda a, b: _wrap(a << b),
    "srl": lambda a, b: a >> b,
    "sra": lambda a, b: _wrap(to_signed(a) >> b),
    "lui": lambda a, b: _wrap(b << 16),
    # Floating point.
    "add.d": lambda a, b: a + b,
    "sub.d": lambda a, b: a - b,
    "mul.d": lambda a, b: a * b,
    "div.d": _fdiv,
    "neg.d": lambda a, _b: -a,
    "mov.d": lambda a, _b: a,
    "abs.d": lambda a, _b: abs(a),
    "sqrt.d": _fsqrt,
    "fslt": lambda a, b: int(a < b),
    "fsle": lambda a, b: int(a <= b),
    "fseq": lambda a, b: int(a == b),
    "itof": lambda a, _b: float(to_signed(a)),
    "ftoi": _ftoi,
}

#: op -> f(a, b) -> bool taken, for conditional branches.
BRANCH_FUNCS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blez": lambda a, _b: to_signed(a) <= 0,
    "bgtz": lambda a, _b: to_signed(a) > 0,
    "bltz": lambda a, _b: to_signed(a) < 0,
    "bgez": lambda a, _b: to_signed(a) >= 0,
}
