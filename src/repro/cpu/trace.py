"""Dynamic-trace records emitted by the simulator.

A :class:`DynInst` is a node of the dynamic prediction graph; its
:class:`Source` entries are the in-arcs.  Reads of the hard-wired zero
register and instruction immediates are *not* sources — following the
paper, they are part of the instruction and show up only through the
``has_imm`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.isa.opcodes import Category


class Source(NamedTuple):
    """One consumed operand (an in-arc of the DPG node).

    Attributes:
        value: the value consumed.
        producer: uid of the producing dynamic instruction, or None when
            the value is program input / static data (a ``D`` node).
        producer_pc: static PC of the producer, or None for ``D``.
        is_mem: True when this is the memory-data input of a load.
        loc: where the value was read from — the byte address for
            memory inputs, the register number for register inputs.
            Identifies the ``D`` node when ``producer`` is None.
    """

    value: int | float
    producer: int | None
    producer_pc: int | None
    is_mem: bool = False
    loc: int = 0

    def d_key(self) -> int:
        """Stable identity of the ``D`` node feeding this arc.

        Memory data items are identified by address; initial register
        values by ``2**33 + register number`` (addresses are < 2**32,
        so the spaces cannot collide).  Only meaningful when
        ``producer`` is None.
        """
        return self.loc if self.is_mem else 0x2_0000_0000 + self.loc


@dataclass(slots=True)
class DynInst:
    """One executed instruction (a node of the DPG).

    Attributes:
        uid: position in the dynamic instruction stream (0-based).
        pc: static instruction index.
        op: opcode mnemonic.
        category: dynamic category (ALU / LOAD / STORE / BRANCH / ...).
        has_imm: True when the instruction carries an immediate (or
            reads the zero register, which the model treats the same way).
        srcs: consumed operands, in operand order; a load's memory-data
            input comes last.
        out: the produced value — the result register value for ALU ops
            and loads, the stored value for stores, the target index for
            register-indirect jumps; None when nothing is produced.
        passthrough: index into ``srcs`` whose predictability the output
            inherits (loads, stores, register-indirect jumps), or None.
        taken: branch direction for conditional branches, else None.
        target: taken-target instruction index for branches and jumps.
    """

    uid: int
    pc: int
    op: str
    category: Category
    has_imm: bool
    srcs: tuple[Source, ...]
    out: int | float | None
    passthrough: int | None = None
    taken: bool | None = None
    target: int | None = None

    @property
    def is_branch(self) -> bool:
        """True for conditional branches."""
        return self.category is Category.BRANCH

    def has_output(self) -> bool:
        """True when the node produces a value the model can predict."""
        return self.out is not None and self.category is not Category.BRANCH
