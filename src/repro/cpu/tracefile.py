"""Dynamic-trace serialisation.

Traces are the interface between the substrate and the model, so they
are worth persisting: capture a workload's trace once, then re-analyse
it under different predictor configurations without re-simulating.
The format is JSON-lines — one compact array per dynamic instruction —
with a one-line header carrying the static instruction count the
analyzer needs.  Files ending in ``.gz`` are transparently gzipped.

Floats survive the round trip exactly (JSON distinguishes ``5`` from
``5.0``), which matters because predictors compare values exactly.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.cpu.trace import DynInst, Source
from repro.errors import ReproError
from repro.isa.opcodes import Category

#: Format identifier written in the header line.
FORMAT = "repro-trace-v1"


def _open(path, mode):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_trace(trace, path, n_static: int) -> int:
    """Write ``trace`` (an iterable of :class:`DynInst`) to ``path``.

    Returns the number of records written.
    """
    count = 0
    with _open(path, "w") as handle:
        handle.write(json.dumps({"format": FORMAT,
                                 "n_static": n_static}) + "\n")
        for dyn in trace:
            record = [
                dyn.uid,
                dyn.pc,
                dyn.op,
                int(dyn.category),
                1 if dyn.has_imm else 0,
                [list(src) for src in dyn.srcs],
                dyn.out,
                dyn.passthrough,
                dyn.taken,
                dyn.target,
            ]
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def trace_header(path) -> dict:
    """Read and validate the header of a trace file."""
    with _open(path, "r") as handle:
        header = json.loads(handle.readline())
    if header.get("format") != FORMAT:
        raise ReproError(f"not a {FORMAT} file: {path}")
    return header


def load_trace(path):
    """Yield the :class:`DynInst` records stored in ``path``."""
    with _open(path, "r") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != FORMAT:
            raise ReproError(f"not a {FORMAT} file: {path}")
        for line in handle:
            (uid, pc, op, category, has_imm, srcs, out, passthrough,
             taken, target) = json.loads(line)
            yield DynInst(
                uid=uid,
                pc=pc,
                op=op,
                category=Category(category),
                has_imm=bool(has_imm),
                srcs=tuple(Source(*src) for src in srcs),
                out=out,
                passthrough=passthrough,
                taken=taken,
                target=target,
            )


def analyze_trace_file(path, name=None, config=None, profile_counts=None):
    """Analyse a saved trace end to end."""
    from repro.core.analysis import analyze_trace

    header = trace_header(path)
    return analyze_trace(
        load_trace(path),
        header["n_static"],
        name=name or Path(path).stem,
        config=config,
        profile_counts=profile_counts,
    )
