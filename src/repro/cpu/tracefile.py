"""Dynamic-trace serialisation.

Traces are the interface between the substrate and the model, so they
are worth persisting: capture a workload's trace once, then re-analyse
it under different predictor configurations without re-simulating.
This is the bottom tier of the runner's two-tier cache (see
docs/runner.md); replay speed is what makes a warm trace store pay, so
the format is a compact binary one:

* the file is gzip-framed end to end (regardless of suffix);
* a fixed magic plus a JSON header carry the static facts the analyzer
  needs — instruction count, per-PC execution counts of the captured
  trace, a table of distinct (opcode, category, has_imm) triples — so
  records never repeat strings or enum values;
* each record is struct-packed with a *fixed* layout — a 23-byte head
  (uid, pc, flags, opcode table index, passthrough, output bits,
  target) plus 25 bytes per source — so decoding costs exactly two
  ``Struct.unpack_from`` calls per record; floats travel bit-exactly
  as the 64-bit pattern of their IEEE double, reinterpreted only when
  the float flag is set.

Integers travel as signed 64-bit fields and floats as IEEE doubles,
so values survive the round trip exactly *including their type* —
predictors compare values exactly and ``5 != 5.0`` for a last-value
hit streak.  The legacy JSON-lines v1 format is still read
transparently; writing always produces v2.
"""

from __future__ import annotations

import gzip
import json
import os
import struct
from pathlib import Path

from repro.cpu.trace import DynInst, Source
from repro.errors import ReproError
from repro.obs import get_recorder
from repro.isa.opcodes import Category

#: Format identifier of the binary format written by :func:`save_trace`.
FORMAT = "repro-trace-v2"

#: Format identifier of the legacy JSON-lines format (read-only).
FORMAT_V1 = "repro-trace-v1"

#: Leading magic of a v2 payload (inside the gzip frame).
MAGIC = b"RPRT2BIN"

# Record head: uid, pc, flags, opcode-table index, passthrough (-1 =
# None), output bits (q; IEEE double pattern when the float flag is
# set), target (0 when absent).
_REC_HEAD = struct.Struct("<IIBBbqI")
# Per-source group: flags, value bits, producer, producer_pc, loc
# (producer fields are 0 when the produced flag is clear).
_SRC_FMT = "BqIIQ"
_SRC_GROUPS = [struct.Struct("<" + _SRC_FMT * n) for n in range(8)]
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

# Record-head flag bits.
_HAS_OUT = 0x01
_OUT_FLOAT = 0x02
_HAS_TAKEN = 0x04
_TAKEN = 0x08
_HAS_TARGET = 0x10
# bits 5-7: number of sources (0-7)
_NSRC_SHIFT = 5

# Per-source flag bits.
_SRC_MEM = 0x01
_SRC_PRODUCED = 0x02
_SRC_FLOAT = 0x04


def _open_read(path):
    """Binary read handle, transparently un-gzipping either format."""
    handle = open(path, "rb")
    magic = handle.read(2)
    handle.seek(0)
    if magic == b"\x1f\x8b":
        return gzip.open(handle, "rb")
    return handle


def save_trace(trace, path, n_static: int, complete: bool | None = None,
               workload: str | None = None) -> int:
    """Write ``trace`` (an iterable of :class:`DynInst`) to ``path``.

    ``complete`` records whether the iterable covered the workload's
    whole execution (None = unknown); the trace store uses it to decide
    replay eligibility.  ``workload`` annotates the header with the
    originating workload name (purely informational — it is not part
    of the content address; ``cache info`` uses it to break occupancy
    out fixed-vs-generated).  Returns the number of records written.
    """
    recorder = get_recorder()
    with recorder.span("trace.encode"):
        return _save_trace(trace, path, n_static, complete, workload,
                           recorder)


def _save_trace(trace, path, n_static: int, complete, workload,
                recorder) -> int:
    counts = [0] * max(n_static, 1)
    # Distinct (op, category value, has_imm) triples; records index it.
    op_table: dict[tuple[str, int, int], int] = {}
    pack_head = _REC_HEAD.pack
    pack_f64 = _F64.pack
    unpack_i64 = _I64.unpack
    body = bytearray()
    count = 0
    for dyn in trace:
        pc = dyn.pc
        srcs = dyn.srcs
        n_srcs = len(srcs)
        if n_srcs > 7:
            raise ReproError(
                f"cannot encode {n_srcs} sources (record flag budget is 7)"
            )
        if pc < len(counts):
            counts[pc] += 1
        entry = (dyn.op, int(dyn.category), 1 if dyn.has_imm else 0)
        op_index = op_table.setdefault(entry, len(op_table))
        if op_index > 0xFF:
            raise ReproError("opcode table overflow (more than 256 "
                             "distinct opcode/category combinations)")
        flags = n_srcs << _NSRC_SHIFT
        out = dyn.out
        if out is None:
            out_bits = 0
        elif isinstance(out, float):
            flags |= _HAS_OUT | _OUT_FLOAT
            (out_bits,) = unpack_i64(pack_f64(out))
        else:
            flags |= _HAS_OUT
            out_bits = out
        if dyn.taken is not None:
            flags |= _HAS_TAKEN
            if dyn.taken:
                flags |= _TAKEN
        target = dyn.target
        if target is None:
            target = 0
        else:
            flags |= _HAS_TARGET
        passthrough = -1 if dyn.passthrough is None else dyn.passthrough
        body += pack_head(dyn.uid, pc, flags, op_index, passthrough,
                          out_bits, target)
        if n_srcs:
            fields = []
            for src in srcs:
                src_flags = 0
                if src.is_mem:
                    src_flags |= _SRC_MEM
                value = src.value
                if isinstance(value, float):
                    src_flags |= _SRC_FLOAT
                    (value,) = unpack_i64(pack_f64(value))
                if src.producer is not None:
                    src_flags |= _SRC_PRODUCED
                    fields += (src_flags, value, src.producer,
                               src.producer_pc, src.loc)
                else:
                    fields += (src_flags, value, 0, 0, src.loc)
            body += _SRC_GROUPS[n_srcs].pack(*fields)
        count += 1
    header = json.dumps({
        "format": FORMAT,
        "n_static": n_static,
        "n_records": count,
        "complete": complete,
        "workload": workload,
        "counts": counts,
        "ops": [list(entry) for entry in op_table],
    }).encode()
    with gzip.open(path, "wb", compresslevel=1) as handle:
        handle.write(MAGIC)
        handle.write(_U32.pack(len(header)))
        handle.write(header)
        handle.write(bytes(body))
    recorder.count("trace.encode.records", count)
    recorder.count("trace.encode.bytes", len(body) + len(header))
    try:
        recorder.count("trace.encode.file_bytes", os.stat(path).st_size)
    except (OSError, TypeError):
        pass
    return count


def _read_header(handle, path) -> dict:
    lead = handle.read(len(MAGIC))
    if lead == MAGIC:
        (length,) = _U32.unpack(handle.read(4))
        try:
            header = json.loads(handle.read(length))
        except ValueError as error:
            raise ReproError(f"corrupt {FORMAT} header: {path}") from error
        if header.get("format") != FORMAT:
            raise ReproError(f"not a {FORMAT} file: {path}")
        return header
    # Legacy v1: a JSON header line followed by JSON-lines records.
    line = lead + _read_line(handle)
    try:
        header = json.loads(line)
    except ValueError as error:
        raise ReproError(f"not a repro-trace file: {path}") from error
    if header.get("format") != FORMAT_V1:
        raise ReproError(f"not a repro-trace file: {path}")
    return header


def _read_line(handle) -> bytes:
    chunks = bytearray()
    while True:
        byte = handle.read(1)
        if not byte or byte == b"\n":
            return bytes(chunks)
        chunks += byte


def trace_header(path) -> dict:
    """Read and validate the header of a trace file (either version)."""
    with _open_read(path) as handle:
        return _read_header(handle, path)


def load_trace(path):
    """Yield the :class:`DynInst` records stored in ``path``.

    Reads both the binary v2 format and legacy v1 JSON-lines files.
    Decode errors raise :class:`ReproError` — callers holding a cache
    treat that as a miss.  For the replay hot path prefer
    :func:`read_trace`, which returns the fully-decoded list.
    """
    with _open_read(path) as handle:
        header = _read_header(handle, path)
        if header["format"] == FORMAT_V1:
            yield from _iter_v1(handle)
            return
        records = _decode_v2(handle, header, path)
    yield from records


def read_trace(path) -> tuple[dict, list[DynInst]]:
    """Decode a whole trace file at once: ``(header, records)``.

    The replay fast path: one tight decode loop, no generator overhead.
    """
    with _open_read(path) as handle:
        header = _read_header(handle, path)
        if header["format"] == FORMAT_V1:
            return header, list(_iter_v1(handle))
        return header, _decode_v2(handle, header, path)


def _iter_v1(handle):
    for line in handle:
        (uid, pc, op, category, has_imm, srcs, out, passthrough,
         taken, target) = json.loads(line)
        yield DynInst(
            uid=uid,
            pc=pc,
            op=op,
            category=Category(category),
            has_imm=bool(has_imm),
            srcs=tuple(Source(*src) for src in srcs),
            out=out,
            passthrough=passthrough,
            taken=taken,
            target=target,
        )


def _decode_v2(handle, header, path) -> list[DynInst]:
    recorder = get_recorder()
    with recorder.span("trace.decode"):
        records = _decode_v2_body(handle, header, path)
    recorder.count("trace.decode.records", len(records))
    return records


def _decode_v2_body(handle, header, path) -> list[DynInst]:
    try:
        buf = handle.read()
    except (OSError, EOFError) as error:
        raise ReproError(f"truncated trace file: {path}") from error
    get_recorder().count("trace.decode.bytes", len(buf))
    ops = [
        (entry[0], Category(entry[1]), bool(entry[2]))
        for entry in header["ops"]
    ]
    n_records = header["n_records"]
    rec_head = _REC_HEAD.unpack_from
    src_groups = _SRC_GROUPS
    pack_i64 = _I64.pack
    unpack_f64 = _F64.unpack
    dyn_inst = DynInst
    source = Source
    records = []
    append = records.append
    pos = 0
    try:
        for _ in range(n_records):
            uid, pc, flags, op_index, passthrough, out_bits, target = \
                rec_head(buf, pos)
            pos += 23
            if flags & _HAS_OUT:
                if flags & _OUT_FLOAT:
                    (out,) = unpack_f64(pack_i64(out_bits))
                else:
                    out = out_bits
            else:
                out = None
            n_srcs = flags >> _NSRC_SHIFT
            if n_srcs:
                fields = src_groups[n_srcs].unpack_from(buf, pos)
                pos += 25 * n_srcs
                srcs = []
                for base in range(0, 5 * n_srcs, 5):
                    src_flags = fields[base]
                    value = fields[base + 1]
                    if src_flags & _SRC_FLOAT:
                        (value,) = unpack_f64(pack_i64(value))
                    if src_flags & _SRC_PRODUCED:
                        srcs.append(source(
                            value, fields[base + 2], fields[base + 3],
                            bool(src_flags & _SRC_MEM), fields[base + 4],
                        ))
                    else:
                        srcs.append(source(
                            value, None, None,
                            bool(src_flags & _SRC_MEM), fields[base + 4],
                        ))
                srcs = tuple(srcs)
            else:
                srcs = ()
            op, category, has_imm = ops[op_index]
            append(dyn_inst(
                uid, pc, op, category, has_imm, srcs,
                out,
                None if passthrough < 0 else passthrough,
                bool(flags & _TAKEN) if flags & _HAS_TAKEN else None,
                target if flags & _HAS_TARGET else None,
            ))
    except (struct.error, IndexError, TypeError) as error:
        raise ReproError(f"truncated trace file: {path}") from error
    return records


def read_trace_columns(path):
    """Decode a whole trace file into columns: ``(header, columns)``.

    The columnar engine's replay fast path: the v2 byte stream is
    parsed straight into :class:`~repro.core.kernel.TraceColumns` flat
    arrays without materialising a ``DynInst`` per record.  Legacy v1
    files decode through :func:`read_trace` first and are re-packed.
    Decode errors raise :class:`ReproError`, same as :func:`read_trace`.
    """
    from repro.core.kernel import TraceColumns

    recorder = get_recorder()
    with _open_read(path) as handle:
        header = _read_header(handle, path)
        if header["format"] == FORMAT_V1:
            columns = TraceColumns.from_records(
                _iter_v1(handle), header["n_static"]
            )
            recorder.count("trace.decode.records", columns.n_records)
            recorder.count("trace.decode.columnar", 1)
            return header, columns
        with recorder.span("trace.decode"):
            try:
                buf = handle.read()
            except (OSError, EOFError) as error:
                raise ReproError(
                    f"truncated trace file: {path}"
                ) from error
            recorder.count("trace.decode.bytes", len(buf))
            columns = TraceColumns.from_v2(buf, header, path=path)
    recorder.count("trace.decode.records", columns.n_records)
    recorder.count("trace.decode.columnar", 1)
    return header, columns


def read_trace_raw(path) -> tuple[dict, bytes]:
    """Read a v2 trace's header and **undecoded** body bytes.

    The segment-parallel path (:mod:`repro.core.shard`) un-gzips once
    in the parent and lets each worker decode only its own byte range
    — decode is the dominant serial cost, so it must happen in the
    workers.  v1 files have no fixed-width body; callers fall back to
    the serial columnar path for them (:class:`ReproError` here).
    """
    recorder = get_recorder()
    with _open_read(path) as handle:
        header = _read_header(handle, path)
        if header["format"] == FORMAT_V1:
            raise ReproError(
                f"v1 trace has no byte-addressable body: {path}")
        try:
            body = handle.read()
        except (OSError, EOFError) as error:
            raise ReproError(f"truncated trace file: {path}") from error
    recorder.count("trace.decode.bytes", len(body))
    return header, body


def analyze_trace_file(path, name=None, config=None, profile_counts=None,
                       stored_profile: bool = False):
    """Analyse a saved trace end to end.

    ``stored_profile=True`` feeds the trace's recorded per-PC execution
    counts to the analyzer as profile counts, so write-once generates
    classify exactly without the separate profiling pass a live
    two-pass run needs.  (The default keeps the single-pass
    count-so-far approximation, matching direct simulation.)
    """
    from repro.core.analysis import analyze_trace

    header = trace_header(path)
    if stored_profile and profile_counts is None:
        profile_counts = header.get("counts")
    return analyze_trace(
        load_trace(path),
        header["n_static"],
        name=name or Path(path).stem,
        config=config,
        profile_counts=profile_counts,
    )
