"""The tracing functional simulator.

:class:`Machine` interprets an assembled program and, in tracing mode,
yields one :class:`DynInst` per executed instruction with full
dependence information (which dynamic instruction produced each
consumed value).  Execution is deterministic: running the same program
on the same inputs twice produces identical traces, which the analysis
relies on for its two-pass (profile, then analyse) structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.cpu.alu import ALU_FUNCS, BRANCH_FUNCS
from repro.obs import get_recorder
from repro.cpu.memory import Memory
from repro.cpu.trace import DynInst, Source
from repro.errors import SimError
from repro.isa.layout import (
    DATA_BASE,
    INPUT_BASE,
    INPUT_FLOAT_BASE,
    INPUT_FLOAT_LEN_ADDR,
    INPUT_LEN_ADDR,
    STACK_TOP,
    SYS_EXIT,
    SYS_PRINT_CHAR,
    SYS_PRINT_FLOAT,
    SYS_PRINT_INT,
    WORD_MASK,
    to_signed,
)
from repro.isa.opcodes import Category, opcode_spec
from repro.isa.registers import REG_A0, REG_GP, REG_RA, REG_SP, REG_V0, fp_reg

_NO_PRODUCER = (None, None)


@dataclass(slots=True)
class MachineResult:
    """Summary of a completed (or aborted) run."""

    instructions: int
    exit_code: int
    output: str
    halted: bool


@dataclass(slots=True)
class _Decoded:
    """Per-instruction execution record precomputed for speed."""

    op: str
    category: Category
    dest: int | None
    src1: int | None
    src2: int | None
    imm: int | None
    target: int | None
    has_imm: bool
    func: object  # ALU or branch semantic function, or None


class Machine:
    """Functional simulator over an assembled :class:`Program`.

    Args:
        program: the assembled program.
        input_words: synthetic integer program input, loaded at
            :data:`INPUT_BASE` as ``D`` data.
        input_floats: synthetic floating-point program input, loaded at
            :data:`INPUT_FLOAT_BASE` as ``D`` data.
        max_instructions: hard cap on executed instructions.
        tracing: when True (default), :meth:`trace` yields
            :class:`DynInst` records and producer maps are maintained.
    """

    def __init__(
        self,
        program: Program,
        input_words=None,
        input_floats=None,
        max_instructions: int = 50_000_000,
        tracing: bool = True,
    ):
        self.program = program
        self.max_instructions = max_instructions
        self.tracing = tracing
        self.regs: list[int | float] = [0] * 32 + [0.0] * 32
        self.reg_prod: list[tuple[int | None, int | None]] = (
            [_NO_PRODUCER] * 64
        )
        self.memory = Memory()
        self.pc = program.entry
        self.uid = 0
        self.static_counts = [0] * len(program.instructions)
        self.halted = False
        self.exit_code = 0
        self._out: list[str] = []
        self._sentinel = len(program.instructions)
        self.regs[REG_SP] = STACK_TOP
        self.regs[REG_GP] = DATA_BASE
        self.regs[REG_RA] = self._sentinel
        self._decoded = [self._decode(instr) for instr in program.instructions]
        self._load_data(program)
        self._load_inputs(input_words or [], input_floats or [])

    # ------------------------------------------------------------------
    # Setup.
    # ------------------------------------------------------------------

    @staticmethod
    def _decode(instr) -> _Decoded:
        spec = opcode_spec(instr.op)
        category = spec.category
        if category is Category.ALU:
            func = ALU_FUNCS[instr.op]
        elif category is Category.BRANCH:
            func = BRANCH_FUNCS[instr.op]
        else:
            func = None
        reads_zero = instr.src1 == 0 or instr.src2 == 0
        no_inputs = instr.src1 is None and instr.src2 is None
        has_imm = spec.uses_imm or reads_zero or (
            no_inputs and category in (Category.ALU, Category.CALL)
        )
        return _Decoded(
            op=instr.op,
            category=category,
            dest=instr.dest,
            src1=instr.src1,
            src2=instr.src2,
            imm=instr.imm,
            target=instr.target,
            has_imm=has_imm,
            func=func,
        )

    def _load_data(self, program: Program) -> None:
        for item in program.data:
            if item.is_float:
                self.memory.write_float(item.addr, item.value)
            elif item.size == 4:
                self.memory.write_word(item.addr, int(item.value) & WORD_MASK)
            elif item.size == 2:
                self.memory.write_half(item.addr, int(item.value))
            else:
                self.memory.write_byte(item.addr, int(item.value))

    def _load_inputs(self, input_words, input_floats) -> None:
        self.memory.write_word(INPUT_LEN_ADDR, len(input_words))
        for index, word in enumerate(input_words):
            self.memory.write_word(INPUT_BASE + 4 * index, word & WORD_MASK)
        self.memory.write_word(INPUT_FLOAT_LEN_ADDR, len(input_floats))
        for index, value in enumerate(input_floats):
            self.memory.write_float(INPUT_FLOAT_BASE + 8 * index, value)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def trace(self):
        """Yield one :class:`DynInst` per executed instruction."""
        if not self.tracing:
            raise SimError("machine was created with tracing disabled")
        limit = self.max_instructions
        started = self.uid
        try:
            while not self.halted:
                if self.uid >= limit:
                    raise SimError(
                        f"instruction limit exceeded ({limit} instructions)"
                    )
                record = self.step()
                if record is not None:
                    yield record
        finally:
            # Interpreter-loop accounting: fires once per consumed
            # trace, including truncated (islice'd) ones at close time.
            recorder = get_recorder()
            recorder.count("sim.instructions", self.uid - started)
            recorder.count("sim.traces", 1)

    def run(self) -> MachineResult:
        """Run to completion without yielding trace records."""
        limit = self.max_instructions
        started = self.uid
        while not self.halted:
            if self.uid >= limit:
                raise SimError(
                    f"instruction limit exceeded ({limit} instructions)"
                )
            self.step()
        recorder = get_recorder()
        recorder.count("sim.instructions", self.uid - started)
        recorder.count("sim.runs", 1)
        return self.result()

    def result(self) -> MachineResult:
        """Summarise the run so far."""
        return MachineResult(
            instructions=self.uid,
            exit_code=self.exit_code,
            output="".join(self._out),
            halted=self.halted,
        )

    @property
    def output(self) -> str:
        """Everything the program printed so far."""
        return "".join(self._out)

    def step(self) -> DynInst | None:
        """Execute one instruction; return its trace record if tracing."""
        pc = self.pc
        if pc == self._sentinel:
            self.halted = True
            return None
        if not 0 <= pc < self._sentinel:
            raise SimError(f"program counter out of range: {pc}")
        ins = self._decoded[pc]
        self.static_counts[pc] += 1
        uid = self.uid
        self.uid = uid + 1
        category = ins.category
        regs = self.regs
        tracing = self.tracing
        srcs: list[Source] = []
        out = None
        passthrough = None
        taken = None
        target = ins.target
        next_pc = pc + 1

        if category is Category.ALU:
            src1, src2 = ins.src1, ins.src2
            a = 0
            b = ins.imm if ins.imm is not None else 0
            if src1:
                a = regs[src1]
                if tracing:
                    srcs.append(Source(a, *self.reg_prod[src1], False, src1))
            if src2 is not None and src2:
                b = regs[src2]
                if tracing:
                    srcs.append(Source(b, *self.reg_prod[src2], False, src2))
            out = ins.func(a, b)
            dest = ins.dest
            if dest:
                regs[dest] = out
                if tracing:
                    self.reg_prod[dest] = (uid, pc)
        elif category is Category.LOAD:
            out, passthrough = self._do_load(ins, uid, pc, srcs)
        elif category is Category.STORE:
            out, passthrough = self._do_store(ins, uid, pc, srcs)
        elif category is Category.BRANCH:
            src1, src2 = ins.src1, ins.src2
            a = regs[src1] if src1 else 0
            b = regs[src2] if src2 is not None and src2 else 0
            if tracing:
                if src1:
                    srcs.append(Source(a, *self.reg_prod[src1], False, src1))
                if src2 is not None and src2:
                    srcs.append(Source(b, *self.reg_prod[src2], False, src2))
            taken = ins.func(a, b)
            if taken:
                next_pc = ins.target
        elif category is Category.JUMP:
            next_pc = ins.target
        elif category is Category.CALL:
            out = pc + 1
            regs[REG_RA] = out
            if tracing:
                self.reg_prod[REG_RA] = (uid, pc)
            next_pc = ins.target
        elif category is Category.JUMP_REG:
            src1 = ins.src1
            tgt = regs[src1]
            if tracing:
                srcs.append(Source(tgt, *self.reg_prod[src1], False, src1))
            if not 0 <= tgt <= self._sentinel:
                raise SimError(f"indirect jump to bad target: {tgt}")
            out = tgt
            passthrough = 0
            target = tgt
            if ins.dest is not None:  # jalr
                regs[REG_RA] = pc + 1
                if tracing:
                    self.reg_prod[REG_RA] = (uid, pc)
            next_pc = tgt
        elif category is Category.SYSCALL:
            self._do_syscall(ins, srcs)
        # Category.NOP: nothing to do.

        self.pc = next_pc
        if not tracing:
            return None
        return DynInst(
            uid=uid,
            pc=pc,
            op=ins.op,
            category=category,
            has_imm=ins.has_imm,
            srcs=tuple(srcs),
            out=out,
            passthrough=passthrough,
            taken=taken,
            target=target,
        )

    def _do_load(self, ins, uid, pc, srcs):
        regs = self.regs
        memory = self.memory
        src1 = ins.src1
        base = regs[src1] if src1 else 0
        addr = (base + ins.imm) & WORD_MASK
        tracing = self.tracing
        if tracing and src1:
            srcs.append(Source(base, *self.reg_prod[src1], False, src1))
        op = ins.op
        if op == "lw":
            value = memory.read_word(addr)
        elif op == "lb":
            value = memory.read_byte(addr)
            if value & 0x80:
                value = (value - 0x100) & WORD_MASK
        elif op == "lbu":
            value = memory.read_byte(addr)
        elif op == "lh":
            value = memory.read_half(addr)
            if value & 0x8000:
                value = (value - 0x1_0000) & WORD_MASK
        elif op == "lhu":
            value = memory.read_half(addr)
        else:  # l.d
            value = memory.read_float(addr)
        if tracing:
            if op == "l.d":
                producer = memory.float_producer(addr)
            else:
                producer = memory.producer(addr)
            srcs.append(
                Source(value, *(producer or _NO_PRODUCER), True, addr)
            )
        dest = ins.dest
        if dest:
            regs[dest] = value
            if tracing:
                self.reg_prod[dest] = (uid, pc)
        return value, len(srcs) - 1 if tracing else None

    def _do_store(self, ins, uid, pc, srcs):
        regs = self.regs
        memory = self.memory
        src1, src2 = ins.src1, ins.src2
        base = regs[src1] if src1 else 0
        addr = (base + ins.imm) & WORD_MASK
        tracing = self.tracing
        if tracing and src1:
            srcs.append(Source(base, *self.reg_prod[src1], False, src1))
        data = regs[src2] if src2 else (0.0 if ins.op == "s.d" else 0)
        passthrough = None
        if tracing and src2:
            passthrough = len(srcs)
            srcs.append(Source(data, *self.reg_prod[src2], False, src2))
        op = ins.op
        if op == "sw":
            memory.write_word(addr, data)
            out = data & WORD_MASK
        elif op == "sb":
            memory.write_byte(addr, data)
            out = data & 0xFF
        elif op == "sh":
            memory.write_half(addr, data)
            out = data & 0xFFFF
        else:  # s.d
            memory.write_float(addr, data)
            out = data
        if tracing:
            if op == "s.d":
                memory.set_float_producer(addr, uid, pc)
            else:
                memory.set_producer(addr, uid, pc)
        return out, passthrough

    def _do_syscall(self, ins, srcs) -> None:
        if ins.op == "halt":
            self.halted = True
            return
        regs = self.regs
        tracing = self.tracing
        code = regs[REG_V0]
        if tracing:
            srcs.append(Source(code, *self.reg_prod[REG_V0], False, REG_V0))
        if code == SYS_PRINT_INT:
            if tracing:
                srcs.append(Source(regs[REG_A0], *self.reg_prod[REG_A0], False, REG_A0))
            self._out.append(str(to_signed(regs[REG_A0])))
        elif code == SYS_PRINT_CHAR:
            if tracing:
                srcs.append(Source(regs[REG_A0], *self.reg_prod[REG_A0], False, REG_A0))
            self._out.append(chr(regs[REG_A0] & 0xFF))
        elif code == SYS_PRINT_FLOAT:
            f12 = fp_reg(12)
            if tracing:
                srcs.append(Source(regs[f12], *self.reg_prod[f12], False, f12))
            self._out.append(f"{regs[f12]:g}")
        elif code == SYS_EXIT:
            if tracing:
                srcs.append(Source(regs[REG_A0], *self.reg_prod[REG_A0], False, REG_A0))
            self.exit_code = to_signed(regs[REG_A0])
            self.halted = True
        else:
            raise SimError(f"unknown syscall code: {code}")


def run_program(
    program: Program,
    input_words=None,
    input_floats=None,
    max_instructions: int = 50_000_000,
) -> MachineResult:
    """Assemble-and-go convenience: run ``program`` without tracing."""
    machine = Machine(
        program,
        input_words=input_words,
        input_floats=input_floats,
        max_instructions=max_instructions,
        tracing=False,
    )
    return machine.run()
