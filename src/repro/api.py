"""The stable public API of the reproduction.

Exhibits, benchmarks, notebooks and examples should import from here
(or from the top-level :mod:`repro` package) rather than deep-importing
internals; everything below is covered by the deprecation policy in
docs/api.md, everything else is free to move between releases.

Three execution entry points, all backed by the shared two-tier-cached
:class:`~repro.runner.ExperimentRunner` (see docs/runner.md):

* :func:`run_workload` — one workload, one config;
* :func:`run_suite` — every configured workload under one config;
* :func:`run_sweep` — many configs, each workload simulated at most
  once and fanned out to one analyzer per config.

plus :func:`analyze` for ad-hoc material (mini-C source, a compiled
program, a live machine) that does not go through the workload suite
or its caches.
"""

from __future__ import annotations

from repro.asm import Program
from repro.core import (
    AnalysisConfig,
    AnalysisResult,
    Analyzer,
    analyze_machine,
    analyze_many,
    analyze_trace,
)
from repro.cpu import Machine
from repro.minic import compile_program
from repro.runner import (
    ExperimentConfig,
    ExperimentRun,
    ExperimentRunner,
    ResultStore,
    TraceStore,
    default_runner,
)
from repro.workloads import SUITE, Workload, get_workload

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "Analyzer",
    "ExperimentConfig",
    "ExperimentRun",
    "ExperimentRunner",
    "ResultStore",
    "SUITE",
    "TraceStore",
    "Workload",
    "analyze",
    "analyze_machine",
    "analyze_many",
    "analyze_trace",
    "default_runner",
    "get_workload",
    "run_suite",
    "run_sweep",
    "run_workload",
]


def run_workload(name: str,
                 config: ExperimentConfig | None = None) -> AnalysisResult:
    """Analyse one workload under ``config``.

    Delegates to the shared :class:`~repro.runner.ExperimentRunner`:
    repeat calls return the identical in-memory object, and results
    persist in the disk store so later processes replay the stored
    trace — or skip execution entirely (disable with
    ``REPRO_NO_CACHE=1``).
    """
    return default_runner().run_one(name, config or ExperimentConfig())


def run_suite(config: ExperimentConfig | None = None,
              jobs: int | None = None) -> dict[str, AnalysisResult]:
    """Analyse all configured workloads; returns name -> result.

    ``jobs`` > 1 fans workloads out over the runner's process pool
    (default: the ``REPRO_JOBS`` environment variable, else serial).
    Raises :class:`repro.errors.RunnerError` if any workload fails.
    """
    config = config or ExperimentConfig()
    return default_runner().run(config, jobs=jobs).require()


def run_sweep(configs, jobs: int | None = None,
              ) -> list[dict[str, AnalysisResult]]:
    """Analyse a sweep of configs; returns one mapping per config.

    Each workload is simulated (or replayed from the trace store) at
    most once for the whole sweep — the single pass feeds one analyzer
    per config (:func:`repro.core.analyze_many`).  Raises
    :class:`repro.errors.RunnerError` if any job fails.
    """
    return [
        run.require()
        for run in default_runner().run_many(configs, jobs=jobs)
    ]


def analyze(target, name: str = "program",
            config: AnalysisConfig | None = None) -> AnalysisResult:
    """Analyse ad-hoc material outside the workload suite.

    ``target`` may be mini-C source text, a compiled
    :class:`~repro.asm.Program`, or a ready :class:`~repro.cpu.Machine`
    (useful for non-default memory or instruction budgets).  No cache
    is involved — ad-hoc material has no content identity to key on.
    """
    if isinstance(target, str):
        target = compile_program(target)
    if isinstance(target, Program):
        target = Machine(target)
    return analyze_machine(target, name, config)
