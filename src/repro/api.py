"""The stable public API of the reproduction.

Exhibits, benchmarks, notebooks and examples should import from here
(or from the top-level :mod:`repro` package) rather than deep-importing
internals; everything below is covered by the deprecation policy in
docs/api.md, everything else is free to move between releases.

Three execution entry points, all backed by the shared two-tier-cached
:class:`~repro.runner.ExperimentRunner` (see docs/runner.md):

* :func:`run_workload` — one workload, one config;
* :func:`run_suite` — every configured workload under one config;
* :func:`run_sweep` — many configs, each workload simulated at most
  once and fanned out to one analyzer per config.

plus :func:`analyze` for ad-hoc material (mini-C source, a compiled
program, a live machine) that does not go through the workload suite
or its caches.

Two synthesis entry points (see docs/generator.md and
docs/campaign.md):

* :func:`generate` — resolve/synthesize a seeded workload
  (``gen:<preset>@<seed>``) as a first-class suite member;
* :func:`run_campaign` — run a declarative workloads x predictor-bank
  design-space campaign and (optionally) emit its registry-driven
  report.

Session-level settings go through :func:`configure` — cache location,
worker count, observation — instead of environment variables, and the
suite/sweep entry points return :class:`SuiteResult` /
:class:`SweepResult`: drop-in dict/list values that additionally carry
the run's metrics and (when observing) its profile.  See
docs/observability.md for the profiling story.
"""

from __future__ import annotations

from repro.asm import Program
from repro.core import (
    AnalysisConfig,
    AnalysisEngine,
    AnalysisResult,
    Analyzer,
    analyze_machine,
    analyze_many,
    analyze_trace,
    get_default_engine,
    set_default_engine,
)
from repro.cpu import Machine
from repro.minic import compile_program
from repro.obs import ObsConfig, Recorder, get_recorder, recording
from repro.runner import (
    ExecutionPolicy,
    ExperimentConfig,
    ExperimentRun,
    ExperimentRunner,
    FaultPlan,
    FaultSpec,
    ResultStore,
    TraceStore,
    default_chaos_plan,
    default_runner,
    set_default_runner,
    swap_default_runner,
)
from repro.service.qos import (
    QosError,
    QosPolicy,
    Tenant,
    load_qos_policy,
)
from repro.workloads import SUITE, Workload, get_workload

__all__ = [
    "AnalysisConfig",
    "AnalysisEngine",
    "AnalysisResult",
    "Analyzer",
    "ExecutionPolicy",
    "ExperimentConfig",
    "ExperimentRun",
    "ExperimentRunner",
    "FaultPlan",
    "FaultSpec",
    "ObsConfig",
    "QosError",
    "QosPolicy",
    "Recorder",
    "ResultStore",
    "SUITE",
    "SuiteResult",
    "SweepResult",
    "Tenant",
    "TraceStore",
    "Workload",
    "analyze",
    "analyze_machine",
    "analyze_many",
    "analyze_trace",
    "configure",
    "default_chaos_plan",
    "default_runner",
    "generate",
    "get_default_engine",
    "get_recorder",
    "get_workload",
    "load_qos_policy",
    "set_default_engine",
    "recording",
    "run_campaign",
    "run_suite",
    "run_sweep",
    "run_workload",
]

#: Sentinel distinguishing "not passed" from an explicit None.
_UNSET = object()


def configure(
    *,
    cache_dir=_UNSET,
    observe=_UNSET,
    jobs=_UNSET,
    timeout=_UNSET,
    retries=_UNSET,
    faults=_UNSET,
    engine=_UNSET,
    policy=_UNSET,
) -> ExperimentRunner:
    """Reconfigure the shared runner behind the ``run_*`` entry points.

    Keyword-only; every setting not passed is inherited from the
    current default runner, so ``configure(observe=True)`` flips
    observation on without disturbing the cache setup.  No environment
    variables are involved — this *is* the programmatic channel.

    Args:
        cache_dir: store root for both cache tiers; ``None`` disables
            the disk caches entirely (in-process memo only).
        observe: ``True``/``False`` or an :class:`repro.obs.ObsConfig`;
            when on, results returned by :func:`run_workload` /
            :func:`run_suite` / :func:`run_sweep` carry a profile.
        policy: an :class:`~repro.runner.ExecutionPolicy` — the one
            object carrying every execution knob (engine, jobs,
            timeout, retries, segments, segment_records); see
            docs/sharding.md for the segment-parallel knobs.  Policy
            is execution, never identity: it never enters job keys, so
            changing it hits the same caches.
        jobs: **deprecated** — use ``policy``.  Default worker-process
            count for suite runs.
        timeout: **deprecated** — use ``policy``.  Per-job wall-clock
            limit in seconds (parallel runs).
        retries: **deprecated** — use ``policy``.  Extra attempts for
            a failed job (parallel runs).
        faults: a :class:`repro.runner.FaultPlan` installed during each
            run — the chaos-testing channel (see docs/robustness.md);
            ``None`` injects nothing.
        engine: **deprecated** — use ``policy``.  Analysis engine for
            the runner *and* the process-wide default behind direct
            :func:`analyze` calls — ``"auto"`` (columnar where
            supported, reference otherwise), ``"columnar"`` (forced;
            unsupported configs raise
            :class:`repro.core.KernelUnsupportedError`) or
            ``"reference"`` (the original per-instruction loop).

    Returns the newly installed :class:`ExperimentRunner` (also handy
    for direct use).  Call ``repro.runner.reset_default_runner()`` to
    fall back to the environment-derived defaults.  Thread-safe: the
    read-modify-install is atomic, so concurrent ``configure`` calls
    serialise instead of silently dropping one another's settings.
    """
    import warnings

    legacy = {"jobs": jobs, "timeout": timeout, "retries": retries,
              "engine": engine}
    used = sorted(key for key, value in legacy.items()
                  if value is not _UNSET)
    if used:
        warnings.warn(
            f"configure({', '.join(used)}=...) is deprecated; pass "
            f"policy=ExecutionPolicy(...) instead (see docs/api.md)",
            DeprecationWarning, stacklevel=2,
        )

    if engine is not _UNSET:
        # The engine is both a runner setting and the process default
        # behind direct analyze()/analyze_trace() calls; None restores
        # the built-in "auto".
        set_default_engine(
            AnalysisEngine.AUTO if engine is None else engine
        )
    elif policy is not _UNSET and policy is not None and policy.engine:
        set_default_engine(policy.engine)

    def build(current: ExperimentRunner) -> ExperimentRunner:
        if cache_dir is _UNSET:
            store, trace_store = current.store, current.trace_store
        elif cache_dir is None:
            store, trace_store = None, None
        else:
            store = ResultStore(cache_dir)
            trace_store = TraceStore(cache_dir)
        if policy is _UNSET:
            new_policy = current.policy
        elif policy is None:
            new_policy = ExecutionPolicy()
        else:
            new_policy = policy
        overrides = {}
        if jobs is not _UNSET:
            overrides["jobs"] = jobs
        if timeout is not _UNSET:
            overrides["timeout"] = timeout
        if retries is not _UNSET:
            overrides["retries"] = retries
        if engine is not _UNSET:
            # ExecutionPolicy normalizes enum/string via coerce_engine.
            overrides["engine"] = engine
        if overrides:
            new_policy = new_policy.merged(**overrides)
        return ExperimentRunner(
            store=store,
            trace_store=trace_store,
            observe=current.obs if observe is _UNSET else observe,
            faults=current.faults if faults is _UNSET else faults,
            policy=new_policy,
        )

    return swap_default_runner(build)


class SuiteResult(dict):
    """``name -> AnalysisResult`` mapping that also carries its run.

    Behaves exactly like the plain dict :func:`run_suite` used to
    return; additionally ``.run`` is the underlying
    :class:`ExperimentRun`, ``.metrics`` its
    :class:`~repro.runner.RunMetrics` and ``.profile`` the
    observability snapshot (None unless the runner observed).
    """

    def __init__(self, run: ExperimentRun):
        super().__init__(run.results)
        self.run = run

    @property
    def metrics(self):
        return self.run.metrics

    @property
    def profile(self) -> dict | None:
        return self.run.metrics.profile


class SweepResult(list):
    """List of :class:`SuiteResult` (one per sweep config).

    ``.runs`` holds the underlying :class:`ExperimentRun` objects and
    ``.profile`` the sweep's shared observability snapshot (a sweep is
    observed as a whole — every config's run carries the same one).
    """

    def __init__(self, runs):
        runs = list(runs)
        super().__init__(SuiteResult(run) for run in runs)
        self.runs = runs

    @property
    def profile(self) -> dict | None:
        for run in self.runs:
            if run.metrics.profile is not None:
                return run.metrics.profile
        return None


def run_workload(name: str,
                 config: ExperimentConfig | None = None) -> AnalysisResult:
    """Analyse one workload under ``config``.

    Delegates to the shared :class:`~repro.runner.ExperimentRunner`:
    repeat calls return the identical in-memory object, and results
    persist in the disk store so later processes replay the stored
    trace — or skip execution entirely (disable with
    ``REPRO_NO_CACHE=1``).
    """
    return default_runner().run_one(name, config or ExperimentConfig())


def run_suite(config: ExperimentConfig | None = None,
              jobs: int | None = None, resume: bool = False,
              cancel=None) -> SuiteResult:
    """Analyse all configured workloads; returns name -> result.

    ``jobs`` > 1 fans workloads out over the runner's process pool
    (default: the ``REPRO_JOBS`` environment variable, else serial).
    Raises :class:`repro.errors.RunnerError` (the ``kind``-specific
    subclass when every failure agrees) if any workload fails, and
    :class:`repro.errors.RunnerInterrupted` when a ``cancel`` event
    stopped the run mid-way — completed jobs are journaled and a
    ``resume=True`` re-run serves them from the cache.  The returned
    :class:`SuiteResult` is a plain mapping that also carries
    ``.metrics`` and (when observing) ``.profile``.
    """
    config = config or ExperimentConfig()
    run = default_runner().run(config, jobs=jobs, resume=resume,
                               cancel=cancel)
    run.require()
    return SuiteResult(run)


def run_sweep(configs, jobs: int | None = None, resume: bool = False,
              cancel=None) -> SweepResult:
    """Analyse a sweep of configs; returns one mapping per config.

    Each workload is simulated (or replayed from the trace store) at
    most once for the whole sweep — the single pass feeds one analyzer
    per config (:func:`repro.core.analyze_many`).  Raises
    :class:`repro.errors.RunnerError` if any job fails;
    ``resume``/``cancel`` follow :func:`run_suite`.  The returned
    :class:`SweepResult` is a plain list of per-config mappings that
    also carries ``.runs`` and (when observing) ``.profile``.
    """
    runs = default_runner().run_many(configs, jobs=jobs, resume=resume,
                                     cancel=cancel)
    for run in runs:
        run.require()
    return SweepResult(runs)


def generate(preset: str, seed: int | None = None, **knobs) -> Workload:
    """Synthesize (or resolve) a seeded workload.

    Two call shapes::

        generate("gen:graph-walk@7")               # full name
        generate("graph-walk", 7, imm_mix=6)       # parts + overrides

    The returned workload is a first-class suite member: pass its
    ``.name`` to :func:`run_workload`, an
    :class:`ExperimentConfig`, or a campaign spec, and the two-tier
    cache, pool workers and exhibits all resolve it from the name
    alone.  Same ``(preset, seed, knobs)`` -> byte-identical source in
    any process.

    Raises:
        ValueError: unknown preset/knob, out-of-range value, or a
            malformed ``gen:`` name.
    """
    from repro.gen import canonical_gen_name, generated_workload

    if preset.startswith("gen:"):
        if seed is not None or knobs:
            raise ValueError(
                "pass either a full gen: name or (preset, seed, knobs),"
                " not both"
            )
        return generated_workload(preset)
    if seed is None:
        raise ValueError("generate(preset, ...) needs a seed")
    return generated_workload(canonical_gen_name(preset, seed, knobs))


def run_campaign(spec, jobs: int | None = None,
                 report_dir=None):
    """Run a design-space campaign; returns its
    :class:`~repro.campaign.CampaignResult`.

    ``spec`` may be a :class:`~repro.campaign.CampaignSpec`, a plain
    dict in the spec shape, or a path to a ``.toml``/``.json`` spec
    file.  Execution goes through the shared runner's sweep path: each
    workload is simulated at most once across all variants, and an
    unchanged re-run is served entirely from the cache
    (``result.fully_warm``).  When ``report_dir`` is given, the
    registry-driven report is emitted there
    (:func:`repro.campaign.create_report`).
    """
    from pathlib import Path

    from repro.campaign import (
        CampaignSpec,
        create_report,
        load_spec,
        spec_from_dict,
    )
    from repro.campaign import run_campaign as _run

    if isinstance(spec, (str, Path)):
        spec = load_spec(spec)
    elif isinstance(spec, dict):
        spec = spec_from_dict(spec)
    elif not isinstance(spec, CampaignSpec):
        raise ValueError(
            f"spec must be a CampaignSpec, dict or path, got "
            f"{type(spec).__name__}"
        )
    result = _run(spec, runner=default_runner(), jobs=jobs)
    if report_dir is not None:
        create_report(result, report_dir)
    return result


def analyze(target, name: str = "program",
            config: AnalysisConfig | None = None,
            engine=None) -> AnalysisResult:
    """Analyse ad-hoc material outside the workload suite.

    ``target`` may be mini-C source text, a compiled
    :class:`~repro.asm.Program`, or a ready :class:`~repro.cpu.Machine`
    (useful for non-default memory or instruction budgets).  No cache
    is involved — ad-hoc material has no content identity to key on.
    ``engine`` overrides the process-wide analysis engine for this
    call (see :func:`configure`); None follows the default.
    """
    if isinstance(target, str):
        target = compile_program(target)
    if isinstance(target, Program):
        target = Machine(target)
    return analyze_machine(target, name, config, engine=engine)
