"""The unified command line: ``python -m repro <command>``.

Eleven subcommands over one shared flag vocabulary
(``--jobs/--scale/--cache-dir/--no-cache``):

* ``report`` — regenerate the paper's tables and figures;
* ``run`` — run the experiment suite through the two-tier-cached
  orchestrator and print per-job status (``--profile`` records and
  prints a span/counter profile, see docs/observability.md;
  ``--resume`` picks an interrupted sweep back up from its journal);
* ``workloads`` — list, run or disassemble the SPEC95-analogue suite
  (``--generated`` lists cached synthesized workloads with their
  ``(seed, knobs)`` provenance);
* ``gen`` — synthesize, inspect or run a seeded ``gen:`` workload
  (see docs/generator.md);
* ``campaign`` — run/report/validate a predictor design-space
  campaign spec (see docs/campaign.md);
* ``cache`` — inspect, prune or clear both cache tiers;
* ``stats`` — render the profile recorded by an earlier
  ``run --profile`` (text, JSON-lines or Prometheus format);
* ``chaos`` — run the suite under seeded fault injection and verify
  the robustness invariants (see docs/robustness.md);
* ``serve`` — host the analysis service (request coalescing, batching,
  backpressure, graceful SIGTERM drain — see docs/service.md);
* ``query`` — ask a running service for one workload's analysis;
* ``qos`` — render the per-tenant bottleneck-attribution report from
  ``qos.*`` counters (see docs/qos.md).

Exit codes: :data:`EXIT_OK` (0) on success, :data:`EXIT_JOB_FAILURE`
(1) when jobs failed, :data:`EXIT_INTERRUPTED` (3) when a run was
stopped by SIGINT/SIGTERM after checkpointing — distinct so wrappers
and CI can tell "rerun with --resume" from "investigate a failure".

The pre-existing module entry points (``python -m repro.report``,
``-m repro.runner``, ``-m repro.workloads``) remain as deprecated
wrappers that forward here — with their historical flag set frozen:
new flags like ``--profile`` exist only on the unified CLI.  See
docs/api.md for the deprecation policy.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core.export import result_to_dict
from repro.core.kernel import ENGINE_CHOICES
from repro.obs.export import render_profile, to_jsonl, to_prometheus
from repro.runner.api import (
    DEFAULT_CACHE_DIR,
    ExperimentRunner,
    default_store,
    default_trace_store,
)
from repro.runner.cache import DEFAULT_MAX_BYTES, ResultStore
from repro.runner.faults import FaultSpec, default_chaos_plan
from repro.runner.job import ExperimentConfig
from repro.runner.policy import (
    DEFAULT_SEGMENT_RECORDS,
    ExecutionPolicy,
    PolicyError,
)
from repro.runner.tracestore import DEFAULT_TRACE_MAX_BYTES, TraceStore

#: Process exit codes (see module docstring).
EXIT_OK = 0
EXIT_JOB_FAILURE = 1
EXIT_INTERRUPTED = 3


@contextlib.contextmanager
def _cancel_on_signals():
    """A cancel event wired to SIGINT/SIGTERM for the block's duration.

    The first signal sets the event — the runner drains in-flight
    jobs, checkpoints the journal and returns with
    ``metrics.interrupted`` — instead of unwinding mid-write.  Handlers
    are restored on exit; outside the main thread (embedded use) the
    event is simply never signal-driven.
    """
    cancel = threading.Event()
    previous = {}

    def handler(signum, frame):
        cancel.set()

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):
            pass  # not the main thread: run uncancellable
    try:
        yield cancel
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _default_jobs() -> int:
    return int(os.environ.get("REPRO_JOBS", "0")) or (os.cpu_count() or 1)


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent stores")
    parser.add_argument("--cache-dir", default=None,
                        help=f"store location (default: $REPRO_CACHE_DIR "
                             f"or {DEFAULT_CACHE_DIR}/)")
    parser.add_argument("--cache-cap-mb", type=int,
                        default=DEFAULT_MAX_BYTES // (1024 * 1024),
                        help="result-store size cap in MiB before LRU "
                             "eviction")
    parser.add_argument("--trace-cap-mb", type=int,
                        default=DEFAULT_TRACE_MAX_BYTES // (1024 * 1024),
                        help="trace-store size cap in MiB before LRU "
                             "eviction")


def _add_suite_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS, "
                             "else CPU count for run / serial for report)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names (default: all)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload problem-size multiplier")
    parser.add_argument("--max-instructions", type=int, default=150_000,
                        help="dynamic-instruction budget per workload")
    parser.add_argument("--profile", action="store_true",
                        help="record spans/counters for the run and print "
                             "the profile (also lands in the metrics JSON)")
    _add_engine_flag(parser)


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", choices=ENGINE_CHOICES, default=None,
                        help="analysis engine: auto (columnar where "
                             "supported; default), columnar (forced), or "
                             "reference (the original per-instruction "
                             "loop); results are byte-identical and the "
                             "caches are shared (see docs/kernel.md)")
    _add_policy_flag(parser)


def _add_policy_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", default=None, metavar="K=V,...",
                        help="execution-policy overrides as key=val "
                             "pairs (engine, jobs, timeout, retries, "
                             "segments, segment_records); applied over "
                             "the individual flags, e.g. "
                             "--policy segments=4,jobs=4 enables "
                             "segment-parallel single-trace analysis "
                             "(docs/sharding.md)")


def _policy_from_args(parser, args, jobs: int = 1):
    """The run's :class:`ExecutionPolicy` from flags.

    The legacy per-knob flags (``--jobs``/``--timeout``/``--retries``/
    ``--engine``) seed the policy; a ``--policy key=val,...`` string is
    parsed on top and wins where both are given.
    """
    try:
        base = ExecutionPolicy(
            engine=getattr(args, "engine", None),
            jobs=max(1, jobs),
            timeout=getattr(args, "timeout", None),
            retries=getattr(args, "retries", 1) or 1,
        )
        text = getattr(args, "policy", None)
        if text:
            base = ExecutionPolicy.parse(text, base=base)
    except PolicyError as error:
        parser.error(str(error))
    return base


def _policy_line(desc: dict) -> str:
    """``key=value`` rendering of ``ExecutionPolicy.describe()``."""
    return " ".join(f"{key}={value}" for key, value in desc.items())


def _make_stores(args) -> tuple[ResultStore | None, TraceStore | None]:
    """Both cache tiers, honouring the shared flags and environment."""
    if args.no_cache:
        return None, None
    if args.cache_dir is not None:
        store = ResultStore(
            args.cache_dir, max_bytes=args.cache_cap_mb * 1024 * 1024
        )
        trace_store = TraceStore(
            args.cache_dir, max_bytes=args.trace_cap_mb * 1024 * 1024
        )
        return store, trace_store
    store = default_store()
    if store is not None:
        store.max_bytes = args.cache_cap_mb * 1024 * 1024
    trace_store = default_trace_store()
    if trace_store is not None:
        trace_store.max_bytes = args.trace_cap_mb * 1024 * 1024
    return store, trace_store


def _workload_tuple(parser, value):
    if value is None:
        return None
    names = tuple(name.strip() for name in value.split(",") if name.strip())
    if not names:
        parser.error("--workloads requires at least one workload name")
    return names


# ----------------------------------------------------------------------
# repro run
# ----------------------------------------------------------------------

def cmd_run(parser, args) -> int:
    store, trace_store = _make_stores(args)
    config = ExperimentConfig(
        scale=args.scale,
        max_instructions=args.max_instructions,
        workloads=_workload_tuple(parser, args.workloads),
    )
    policy = _policy_from_args(
        parser, args,
        jobs=args.jobs if args.jobs is not None else _default_jobs(),
    )
    runner = ExperimentRunner(
        store=store, trace_store=trace_store,
        # getattr: the deprecated ``python -m repro.runner`` forwarder's
        # frozen flag set has no --profile (nor --resume/--engine).
        observe=getattr(args, "profile", False),
        policy=policy,
    )
    with _cancel_on_signals() as cancel:
        run = runner.run(config, resume=getattr(args, "resume", False),
                         cancel=cancel)

    print(f"{'workload':<9} {'status':<10} {'wall':>8} {'instr':>9} "
          f"{'instr/s':>11}")
    print("-" * 52)
    for metric in run.metrics.jobs:
        rate = (f"{metric.instructions_per_second:,.0f}"
                if metric.instructions else "-")
        instr = f"{metric.instructions:,}" if metric.instructions else "-"
        print(f"{metric.workload:<9} {metric.status:<10} "
              f"{metric.wall_time:>7.2f}s {instr:>9} {rate:>11}")
        if metric.error:
            print(f"          !! {metric.error}")
    print("-" * 52)
    print(run.metrics.summary())

    if run.metrics.profile is not None:
        print()
        print(render_profile(run.metrics.profile))

    if args.metrics != "-":
        if args.metrics is not None:
            metrics_path = args.metrics
        elif store is not None:
            metrics_path = store.root / "metrics.json"
        else:
            metrics_path = None
        if metrics_path is not None:
            path = run.metrics.dump(metrics_path)
            print(f"[metrics written to {path}]", file=sys.stderr)

    if run.metrics.interrupted:
        if run.journal_path:
            print(f"[interrupted; journal at {run.journal_path} — "
                  f"re-run with --resume]", file=sys.stderr)
        return EXIT_INTERRUPTED
    return EXIT_JOB_FAILURE if run.failures else EXIT_OK


# ----------------------------------------------------------------------
# repro cache
# ----------------------------------------------------------------------

def _last_profile(store) -> dict | None:
    """The profile of the last observed run against ``store``, if any.

    ``repro run`` dumps its metrics (profile included, when observing)
    to ``<cache>/metrics.json``; ``cache info`` mines it for hit-rate
    reporting.  Anything unreadable simply reads as "no profile".
    """
    try:
        payload = json.loads((store.root / "metrics.json").read_text())
    except (OSError, ValueError):
        return None
    profile = payload.get("profile")
    return profile if isinstance(profile, dict) else None


def _tier_report(prefix: str, store, counters: dict) -> None:
    """Print one tier's occupancy (always) and hit-rate (when known)."""
    size = store.size_bytes()
    print(f"{prefix}size: {size / 1024:.1f} KiB "
          f"(cap {store.max_bytes / (1024 * 1024):.0f} MiB, "
          f"{100.0 * size / store.max_bytes:.1f}% full)")
    hits = counters.get(f"store.{store.metric}.hits", 0)
    misses = counters.get(f"store.{store.metric}.misses", 0)
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        print(f"{prefix}hit-rate: {rate:.0f}% "
              f"({hits} hit(s) / {misses} miss(es), last observed run)")


def cmd_cache(parser, args) -> int:
    store, trace_store = _make_stores(args)
    if store is None:
        print("cache disabled", file=sys.stderr)
        return 1
    if args.action == "reindex":
        if trace_store is None:
            print("trace store disabled", file=sys.stderr)
            return 1
        return _reindex(trace_store, args.segment_records)
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
        if trace_store is not None:
            removed = trace_store.clear()
            print(f"removed {removed} stored trace(s) from "
                  f"{trace_store.root}")
        return 0
    if args.action == "prune":
        # Evict down to the (possibly flag-lowered) caps right now
        # instead of waiting for the next write.
        evicted = store.evict()
        print(f"evicted {evicted} cached result(s) from {store.root}")
        if trace_store is not None:
            evicted = trace_store.evict()
            print(f"evicted {evicted} stored trace(s) from "
                  f"{trace_store.root}")
            swept = trace_store.sweep_orphan_segidx()
            if swept:
                print(f"swept {swept} orphaned segment-index "
                      f"sidecar(s)")
        return 0
    if args.action == "scrub":
        return _scrub(store, args)
    profile = _last_profile(store)
    counters = profile.get("counters", {}) if profile else {}
    entries = store.entries()
    print(f"store: {store.root}")
    print(f"entries: {len(entries)} ({_occupancy(store, trace_store)})")
    _tier_report("", store, counters)
    if trace_store is not None:
        trace_entries = trace_store.entries()
        print(f"traces: {len(trace_entries)} "
              f"({_occupancy(store, trace_store, tier='traces')})")
        _tier_report("traces ", trace_store, counters)
        _segidx_report(trace_store, trace_entries)
    return 0


def _scrub(store, args) -> int:
    """``cache scrub``: full-store integrity pass with quarantine."""
    from repro.runner.scrub import scrub_store

    report = scrub_store(store.root,
                         quarantine=not args.no_quarantine,
                         report_path=args.report)
    checked = sum(report.checked.values())
    tiers = ", ".join(f"{count} {tier}"
                      for tier, count in sorted(report.checked.items()))
    print(f"scrubbed {store.root}: {checked} entr(ies) checked "
          f"({tiers}) in {report.wall_time:.2f}s")
    for finding in report.findings:
        action = (f"quarantined -> {finding.quarantined_to}"
                  if finding.quarantined_to else "left in place")
        print(f"  {finding.tier} {Path(finding.path).name}: "
              f"{finding.problem} ({action})")
    if report.clean:
        print("store is clean")
    else:
        print(f"{len(report.findings)} finding(s), "
              f"{report.quarantined} quarantined")
    if report.report_path:
        print(f"report: {report.report_path}")
    return 0 if report.clean else 1


def _segidx_report(trace_store, trace_entries) -> None:
    """Per-trace segment-index presence and coverage.

    Loading each sidecar through :meth:`TraceStore.get_segindex` also
    validates it, so corrupt or stale indexes are pruned as a side
    effect of ``cache info``.
    """
    from repro.cpu.tracefile import trace_header
    from repro.runner.tracestore import TRACE_SUFFIX

    orphans = trace_store.orphan_segidx()
    if orphans:
        # Orphans are dead weight, never coverage: nothing reads a
        # sidecar without first finding its trace.
        print(f"segment indexes: {len(orphans)} orphaned sidecar(s) "
              f"not counted as coverage (sweep with `python -m repro "
              f"cache prune`)")
    if not trace_entries:
        return
    indexed = 0
    lines = []
    for path in trace_entries:
        key = path.name[: -len(TRACE_SUFFIX)]
        try:
            workload = trace_header(path).get("workload") or "?"
        except Exception:
            workload = "?"
        index = trace_store.get_segindex(key)
        if index is None:
            lines.append(f"  {key[:12]} [{workload}]: no segment index")
            continue
        indexed += 1
        segs = max(1, len(index.bounds) - 1)
        spacing = index.n_records // segs if segs else index.n_records
        lines.append(f"  {key[:12]} [{workload}]: {segs} segment(s), "
                     f"~{spacing:,} record(s) each")
    print(f"segment indexes: {indexed}/{len(trace_entries)} trace(s) "
          f"indexed" +
          ("" if indexed == len(trace_entries)
           else " (backfill with `python -m repro cache reindex`)"))
    for line in lines:
        print(line)


def _reindex(trace_store, segment_records: int) -> int:
    """Backfill segment-index sidecars for every stored trace.

    Idempotent and resumable: a trace that already carries a sidecar
    is skipped, and a journal beside the trace tier records each key
    as it is indexed so a killed reindex picks up where it stopped.
    The journal is removed once a pass completes cleanly — it is a
    resume point for interrupted runs, not a permanent ledger, so a
    trace that is later evicted and re-captured is indexed again.
    Traces too short to span two segments are skipped *without* being
    journaled: a longer recapture under the same key must still be
    eligible.
    """
    from repro.core.shard import build_index, plan_bounds
    from repro.cpu.tracefile import read_trace_columns
    from repro.runner.journal import STATUS_DONE, RunJournal
    from repro.runner.tracestore import TRACE_SUFFIX

    if segment_records < 1:
        print("--segment-records must be >= 1", file=sys.stderr)
        return 1
    journal_path = trace_store.root / "reindex.journal.jsonl"
    try:
        journal = RunJournal(journal_path, resume=True).open()
    except Exception as error:
        # Journal-less reindex still works (sidecar presence is the
        # authoritative skip) -- it just cannot resume a killed run.
        print(f"reindex journal unavailable ({error}); "
              f"continuing without resume support", file=sys.stderr)
        journal = None
    indexed = present = short = failed = 0
    try:
        for path in trace_store.entries():
            key = path.name[: -len(TRACE_SUFFIX)]
            if trace_store.has_segindex(key):
                present += 1
                continue
            if journal is not None and journal.completed(key):
                present += 1
                continue
            header = trace_store.header(key)
            if header is None:
                failed += 1
                continue
            workload = header.get("workload") or "?"
            n = header.get("n_records", 0)
            spans = n // segment_records
            if spans < 2:
                short += 1
                continue
            try:
                __, columns = read_trace_columns(path)
                index = build_index(columns, plan_bounds(n, spans))
                written = trace_store.put_segindex(key, index)
            except Exception as error:
                failed += 1
                print(f"  {key[:12]} [{workload}]: reindex failed "
                      f"({error})", file=sys.stderr)
                continue
            if written is None:
                failed += 1
                continue
            indexed += 1
            if journal is not None:
                journal.record(key, workload, STATUS_DONE)
            print(f"  {key[:12]} [{workload}]: indexed "
                  f"{len(index.bounds) - 1} segment(s) over {n:,} "
                  f"record(s)")
    finally:
        if journal is not None:
            journal.close()
    if failed == 0 and journal is not None:
        try:
            journal_path.unlink()
        except OSError:
            pass
    print(f"reindexed {indexed} trace(s); {present} already indexed, "
          f"{short} too short, {failed} failed")
    return 0 if failed == 0 else 1


def _occupancy(store, trace_store, tier: str = "results") -> str:
    """``fixed N, generated M[, unknown K]`` for one cache tier.

    Results are classified by the envelope's ``payload["name"]``,
    traces by the ``workload`` header field (absent on traces written
    before the annotation existed — those count as unknown).
    """
    from repro.cpu.tracefile import trace_header

    fixed = generated = unknown = 0
    if tier == "results":
        for path in store.entries():
            try:
                name = json.loads(path.read_text())["payload"]["name"]
            except (OSError, ValueError, KeyError, TypeError):
                unknown += 1
                continue
            if isinstance(name, str) and name.startswith("gen:"):
                generated += 1
            else:
                fixed += 1
    else:
        for path in trace_store.entries():
            try:
                name = trace_header(path).get("workload")
            except Exception:
                name = None
            if name is None:
                unknown += 1
            elif name.startswith("gen:"):
                generated += 1
            else:
                fixed += 1
    text = f"fixed {fixed}, generated {generated}"
    if unknown:
        text += f", unknown {unknown}"
    return text


# ----------------------------------------------------------------------
# repro stats
# ----------------------------------------------------------------------

def cmd_stats(parser, args) -> int:
    """Render a recorded profile from a metrics JSON dump."""
    path = args.metrics
    if path is None:
        store, __ = _make_stores(args)
        if store is None:
            print("cache disabled and no --metrics path given",
                  file=sys.stderr)
            return 1
        path = store.root / "metrics.json"
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as error:
        print(f"cannot read {path}: {error}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"{path} is not valid JSON: {error}", file=sys.stderr)
        return 1
    profile = payload.get("profile")
    if not isinstance(profile, dict):
        # Still worth a line: the execution policy is recorded even
        # on unprofiled runs.
        if args.format == "text" and payload.get("policy"):
            print(f"policy: {_policy_line(payload['policy'])}")
        print(f"{path} has no profile section; re-run with "
              f"python -m repro run --profile", file=sys.stderr)
        return 1
    if args.format == "jsonl":
        print(to_jsonl(profile), end="")
    elif args.format == "prom":
        print(to_prometheus(profile), end="")
    else:
        jobs = payload.get("jobs", [])
        print(f"profile of {path} ({len(jobs)} job(s), "
              f"{payload.get('total_wall', 0.0):.2f}s total)")
        if payload.get("policy"):
            print(f"policy: {_policy_line(payload['policy'])}")
        print()
        print(render_profile(profile))
    return 0


# ----------------------------------------------------------------------
# repro report
# ----------------------------------------------------------------------

def cmd_report(parser, args) -> int:
    from repro.report import experiments

    exhibits = {
        "table1": lambda results: [experiments.table1(results)],
        "fig5": lambda results: [experiments.figure5(results)],
        "fig6": lambda results: list(experiments.figure6(results)),
        "fig7": lambda results: list(experiments.figure7(results)),
        "fig8": lambda results: list(experiments.figure8(results)),
        "fig9": lambda results: list(experiments.figure9(results)),
        "fig10": lambda results: [experiments.figure10(results)],
        "fig11": lambda results: list(experiments.figure11(results)),
        "fig12": lambda results: [experiments.figure12(results)],
        "fig13": lambda results: list(experiments.figure13(results)),
        # Extension exhibits (not paper figures).
        "critical": lambda results: [experiments.critical_points(results)],
    }
    if args.exhibit != "all" and args.exhibit not in exhibits:
        parser.error(f"unknown exhibit {args.exhibit!r}")

    store, trace_store = _make_stores(args)
    policy = _policy_from_args(
        parser, args,
        jobs=args.jobs if args.jobs is not None
        else int(os.environ.get("REPRO_JOBS", "1")),
    )
    runner = ExperimentRunner(
        store=store, trace_store=trace_store,
        observe=getattr(args, "profile", False),
        policy=policy,
    )
    config = ExperimentConfig(
        scale=args.scale,
        max_instructions=args.max_instructions,
        workloads=_workload_tuple(parser, args.workloads),
    )
    start = time.time()
    run = runner.run(config)
    results = run.require()
    names = sorted(exhibits) if args.exhibit == "all" else [args.exhibit]
    for name in names:
        try:
            tables = exhibits[name](results)
        except (KeyError, ValueError) as error:
            print(f"[{name} skipped: {error}]", file=sys.stderr)
            continue
        for table in tables:
            print(table.render())
            print()
    elapsed = time.time() - start
    print(f"[analysed {len(results)} workloads in {elapsed:.1f}s]",
          file=sys.stderr)
    if run.metrics.profile is not None:
        # stderr: exhibit tables own stdout.
        print(render_profile(run.metrics.profile), file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# repro workloads
# ----------------------------------------------------------------------

def _generated_names(store, trace_store) -> dict[str, set[str]]:
    """``gen: name -> {tier, ...}`` mined from both cache tiers.

    Generated workloads have no files of their own — their identity
    lives in the cache: result envelopes carry ``payload["name"]`` and
    stored traces a ``workload`` header field.  Unreadable entries and
    pre-annotation traces are simply skipped.
    """
    from repro.cpu.tracefile import trace_header

    names: dict[str, set[str]] = {}
    if store is not None:
        for path in store.entries():
            try:
                payload = json.loads(path.read_text())["payload"]
                name = payload.get("name", "")
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if isinstance(name, str) and name.startswith("gen:"):
                names.setdefault(name, set()).add("results")
    if trace_store is not None:
        for path in trace_store.entries():
            try:
                name = trace_header(path).get("workload") or ""
            except Exception:
                continue
            if name.startswith("gen:"):
                names.setdefault(name, set()).add("traces")
    return names


def _workloads_generated(args) -> int:
    """``workloads --generated``: cached synthesized workloads."""
    from repro.gen import PRESETS, parse_gen_name

    store, trace_store = _make_stores(args)
    names = _generated_names(store, trace_store)
    print(f"{'name':<36} {'preset':<13} {'seed':>9} "
          f"{'overrides':<18} tiers")
    print("-" * 88)
    for name in sorted(names):
        try:
            preset, seed, overrides = parse_gen_name(name)
        except ValueError:
            preset, seed, overrides = "?", "?", {}
        knob_text = ",".join(
            f"{key}={value}" for key, value in sorted(overrides.items())
        ) or "-"
        print(f"{name:<36} {preset:<13} {seed:>9} {knob_text:<18} "
              f"{','.join(sorted(names[name]))}")
    if not names:
        print("(no synthesized workloads in the cache)")
    print(f"\npresets: {', '.join(sorted(PRESETS))}")
    print("any gen:<preset>@<seed>[:knob=value,...] name regenerates "
          "its workload byte-identically")
    return 0


def cmd_workloads(parser, args) -> int:
    from repro.minic import compile_source
    from repro.workloads import SUITE, get_workload

    if args.generated:
        return _workloads_generated(args)

    if args.list or not args.run:
        print(f"{'name':<5} {'spec':<14} {'kind':<5} description")
        print("-" * 72)
        for workload in SUITE:
            print(f"{workload.name:<5} {workload.spec_name:<14} "
                  f"{workload.kind:<5} {workload.description}")
        return 0

    try:
        workload = get_workload(args.run)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 1
    if args.emit_asm:
        print(compile_source(workload.source()))
        return 0
    machine = workload.machine(scale=args.scale, tracing=False)
    start = time.time()
    result = machine.run()
    elapsed = time.time() - start
    print(result.output, end="")
    print(
        f"[{workload.spec_name} analogue: {result.instructions} "
        f"instructions, exit {result.exit_code}, {elapsed:.2f}s]",
        file=sys.stderr,
    )
    return result.exit_code


# ----------------------------------------------------------------------
# repro gen
# ----------------------------------------------------------------------

def _print_presets() -> int:
    from repro.gen import PRESETS
    from repro.gen.knobs import GenKnobs

    defaults = GenKnobs()
    print(f"{'preset':<13} knobs (differences from defaults)")
    print("-" * 72)
    for name in sorted(PRESETS):
        overrides = PRESETS[name].overrides_from(defaults)
        text = ", ".join(f"{key}={value}"
                         for key, value in sorted(overrides.items()))
        print(f"{name:<13} {text or '(defaults)'}")
    print(f"\ndefaults: {defaults}")
    return 0


def cmd_gen(parser, args) -> int:
    """Synthesize one seeded workload: print, inspect, compile or run."""
    import hashlib

    from repro.gen import generated_workload
    from repro.minic import compile_source
    from repro.runner.job import trace_key

    if args.presets:
        return _print_presets()
    if not args.name:
        parser.error("gen needs a gen:<preset>@<seed> name "
                     "(or --presets)")
    try:
        workload = generated_workload(args.name)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 1
    if args.info:
        source = workload.source()
        digest = hashlib.sha256(source.encode()).hexdigest()
        print(f"name:        {workload.name}")
        print(f"preset:      {workload.preset}")
        print(f"seed:        {workload.seed}")
        print(f"kind:        {workload.kind}")
        print(f"knobs:       {workload.knobs}")
        print(f"source:      {len(source.splitlines())} lines, "
              f"sha256 {digest[:16]}")
        print(f"trace key:   {trace_key(workload.name, args.scale)} "
              f"(scale {args.scale})")
        return 0
    if args.emit_asm:
        print(compile_source(workload.source()))
        return 0
    if args.run:
        machine = workload.machine(scale=args.scale, tracing=False)
        start = time.time()
        result = machine.run()
        elapsed = time.time() - start
        print(result.output, end="")
        print(f"[{workload.name}: {result.instructions} instructions, "
              f"exit {result.exit_code}, {elapsed:.2f}s]",
              file=sys.stderr)
        return result.exit_code
    print(workload.source(), end="")
    return 0


# ----------------------------------------------------------------------
# repro campaign
# ----------------------------------------------------------------------

def cmd_campaign(parser, args) -> int:
    """Run, report on, or validate a design-space campaign spec."""
    from repro.campaign import create_report, load_spec, run_campaign
    from repro.errors import RunnerError

    try:
        spec = load_spec(args.spec)
    except (OSError, ValueError) as error:
        print(f"cannot load {args.spec}: {error}", file=sys.stderr)
        return 1
    try:
        spec.validate()
    except (ValueError, KeyError) as error:
        print(f"invalid spec {args.spec}: {error}", file=sys.stderr)
        return 1
    grid = (f"{len(spec.workloads)} workload(s) x "
            f"{len(spec.variants)} variant(s) = {spec.jobs()} jobs")
    if args.action == "validate":
        print(f"{args.spec}: ok — campaign '{spec.name}', {grid}")
        return 0
    if args.action == "report" and args.out is None:
        parser.error("campaign report requires --out DIR")

    store, trace_store = _make_stores(args)
    policy = _policy_from_args(
        parser, args,
        jobs=args.jobs if args.jobs is not None
        else int(os.environ.get("REPRO_JOBS", "1")),
    )
    runner = ExperimentRunner(
        store=store, trace_store=trace_store, policy=policy,
    )
    try:
        campaign = run_campaign(spec, runner=runner, jobs=args.jobs)
    except RunnerError as error:
        print(f"campaign failed: {error}", file=sys.stderr)
        return EXIT_JOB_FAILURE
    resolution = ", ".join(
        f"{status}={count}" for status, count
        in sorted(campaign.resolve_counts.items())
    )
    print(f"campaign '{spec.name}': {grid}")
    print(f"cache resolution: {resolution or 'none'}")
    print(f"pool jobs: {campaign.pool_jobs}"
          + (" (fully warm)" if campaign.fully_warm else ""))
    print(f"wall: {campaign.wall:.2f}s")
    if args.out is not None:
        out = create_report(campaign, args.out)
        from repro.campaign import plot_registry, table_registry
        print(f"report written to {out} "
              f"({len(table_registry)} table(s), "
              f"{len(plot_registry)} plot(s))")
    return EXIT_OK


# ----------------------------------------------------------------------
# repro chaos
# ----------------------------------------------------------------------

def _canonical_results(results) -> dict:
    """``name -> canonical JSON`` of each result, for byte comparison."""
    return {
        name: json.dumps(result_to_dict(result), sort_keys=True,
                         separators=(",", ":"))
        for name, result in results.items()
    }


def _parse_fault_overrides(parser, pairs):
    """``SITE=RATE`` flags -> ``{site: FaultSpec}`` overrides."""
    overrides = {}
    for pair in pairs or ():
        site, __, rate = pair.partition("=")
        if not site or not rate:
            parser.error(f"--fault needs SITE=RATE, got {pair!r}")
        try:
            overrides[site] = FaultSpec(rate=float(rate))
        except ValueError:
            parser.error(f"--fault rate must be a float, got {rate!r}")
    return overrides


def _fired_sites(plan, profile) -> dict:
    """``site -> fire count`` from the plan and worker counters combined.

    Parent-side decisions (worker.crash, pool.spawn, store reads in
    the parent) land in ``plan.fired``; faults fired *inside* worker
    processes only surface through their merged obs snapshots — both
    views are needed for the full tally.
    """
    fired = dict(plan.fired)
    prefix = "faults.injected."
    for counter, count in (profile or {}).get("counters", {}).items():
        if counter.startswith(prefix):
            site = counter[len(prefix):]
            fired[site] = max(fired.get(site, 0), count)
    return {site: count for site, count in fired.items() if count}


def _cmd_chaos_fleet(parser, args) -> int:
    """``chaos --fleet``: the supervised-fleet acceptance invariant.

    Under a seeded :func:`repro.runner.faults.default_fleet_chaos_plan`
    — ``kill -9`` of one worker mid-request, a SIGSTOP wedge, one
    injected disk-full write — zipf load against the fleet must see
    zero failed requests and byte-identical results, and the fleet
    must return to healthy (docs/robustness.md).
    """
    from repro.service.fleet import run_fleet_chaos

    keep = Path(args.keep) if args.keep else None
    cache_root = log_path = None
    if keep is not None:
        keep.mkdir(parents=True, exist_ok=True)
        cache_root = keep / "cache"
        log_path = keep / "supervisor.log"
    workloads = _workload_tuple(parser, args.workloads)
    print(f"[chaos] fleet: {args.fleet_workers} worker(s), "
          f"{args.fleet_requests} zipf request(s), seed {args.seed}")
    report = run_fleet_chaos(
        seed=args.seed, workloads=workloads,
        max_instructions=args.max_instructions,
        requests=args.fleet_requests, workers=args.fleet_workers,
        cache_root=cache_root, log_path=log_path,
    )

    failed = False

    def check(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failed
        mark = "ok" if ok else "FAIL"
        suffix = f" ({detail})" if detail else ""
        print(f"[chaos] {mark}: {label}{suffix}")
        failed = failed or not ok

    check("worker.kill fired at least once", report["kills"] >= 1,
          f"kills={report['kills']}, wedges={report['wedges']}")
    check("zero failed client requests",
          report["failed_requests"] == 0,
          "; ".join(report["failures"]) or
          f"{report['requests']} request(s) served")
    check("results byte-identical to fault-free run",
          not report["mismatches"],
          ", ".join(report["mismatches"]) or
          "every payload matched")
    check("fleet restarted and healthy",
          report["recovered"] and report["restarts"] >= 1,
          f"restarts={report['restarts']}, "
          f"failovers={report['failovers']}")
    if keep is not None:
        print(f"[chaos] artifacts kept in {keep} (supervisor.log, "
              f"cache/)")
    return EXIT_JOB_FAILURE if failed else EXIT_OK


def cmd_chaos(parser, args) -> int:
    """Chaos smoke test: a faulted sweep must equal a fault-free one.

    Runs the same suite twice in throwaway cache directories — once
    clean, once under a seeded :func:`default_chaos_plan` — and checks
    the robustness invariants (docs/robustness.md): byte-identical
    results, several distinct fault kinds actually fired, no orphaned
    temp files, and job metrics that reconcile with the obs counters.
    ``--fleet`` runs the supervised-fleet variant instead (see
    :func:`_cmd_chaos_fleet`).
    """
    if args.fleet:
        return _cmd_chaos_fleet(parser, args)
    config = ExperimentConfig(
        scale=args.scale,
        max_instructions=args.max_instructions,
        workloads=_workload_tuple(parser, args.workloads),
    )

    policy = _policy_from_args(parser, args, jobs=args.jobs)
    print(f"[chaos] baseline: fault-free run ({args.jobs} worker(s))")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-base-") as base:
        baseline = ExperimentRunner(
            store=ResultStore(base), trace_store=TraceStore(base),
            policy=policy,
        ).run(config)
    if baseline.failures:
        for name, failure in baseline.failures.items():
            print(f"[chaos] baseline failure: {name}: {failure.error}",
                  file=sys.stderr)
        print("[chaos] FAIL: the fault-free baseline itself failed",
              file=sys.stderr)
        return EXIT_JOB_FAILURE
    expected = _canonical_results(baseline.results)

    plan = default_chaos_plan(seed=args.seed, timeout=args.timeout)
    plan.specs.update(_parse_fault_overrides(parser, args.fault))
    sites = ", ".join(sorted(plan.specs))
    print(f"[chaos] injecting (seed {args.seed}): {sites}")

    keep = Path(args.keep) if args.keep else None
    scratch = None
    if keep is not None:
        keep.mkdir(parents=True, exist_ok=True)
        chaos_dir = keep
    else:
        scratch = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        chaos_dir = Path(scratch.name)
    try:
        runner = ExperimentRunner(
            store=ResultStore(chaos_dir), trace_store=TraceStore(chaos_dir),
            jobs=args.jobs, timeout=args.timeout, retries=args.retries,
            observe=True, faults=plan,
        )
        run = runner.run(config)
        profile = run.metrics.profile

        failed = False

        def check(label: str, ok: bool, detail: str = "") -> None:
            nonlocal failed
            mark = "ok" if ok else "FAIL"
            suffix = f" ({detail})" if detail else ""
            print(f"[chaos] {mark}: {label}{suffix}")
            failed = failed or not ok

        fired = _fired_sites(plan, profile)
        fired_text = ", ".join(
            f"{site}x{count}" for site, count in sorted(fired.items())
        )
        check("injected >= 3 distinct fault kinds", len(fired) >= 3,
              fired_text or "nothing fired")

        check("no job failed under chaos", not run.failures,
              "; ".join(f"{name}: {f.error}"
                        for name, f in run.failures.items()))

        actual = _canonical_results(run.results)
        identical = actual == expected
        if not identical:
            differing = sorted(
                set(expected) ^ set(actual)
                | {name for name in set(expected) & set(actual)
                   if expected[name] != actual[name]}
            )
            check("results byte-identical to fault-free run", False,
                  f"differ: {', '.join(differing)}")
        else:
            check("results byte-identical to fault-free run", True,
                  f"{len(actual)} workload(s)")

        orphans = sorted(str(p.relative_to(chaos_dir))
                         for p in chaos_dir.rglob("*.tmp"))
        check("no orphaned temp files", not orphans, ", ".join(orphans))

        resolved = sum(
            count for counter, count in
            (profile or {}).get("counters", {}).items()
            if counter.startswith("runner.resolve.")
        )
        check("obs counters reconcile with job metrics",
              resolved == len(run.metrics.jobs),
              f"runner.resolve.* = {resolved}, "
              f"jobs = {len(run.metrics.jobs)}")

        print(f"[chaos] {run.metrics.summary()}")
        if keep is not None:
            print(f"[chaos] artifacts kept in {keep}")
        return EXIT_JOB_FAILURE if failed else EXIT_OK
    finally:
        if scratch is not None:
            scratch.cleanup()


# ----------------------------------------------------------------------
# repro serve / repro query
# ----------------------------------------------------------------------

def cmd_serve(parser, args) -> int:
    """Host the analysis service until SIGTERM/SIGINT, then drain."""
    from repro.service import BrokerConfig, QosError, load_qos_policy, run_server

    store, trace_store = _make_stores(args)
    policy = _policy_from_args(
        parser, args, jobs=args.jobs if args.jobs is not None else 1,
    )
    qos = None
    if args.qos is not None:
        try:
            qos = load_qos_policy(args.qos)
        except OSError as error:
            parser.error(f"cannot read QoS policy {args.qos}: {error}")
        except QosError as error:
            parser.error(f"invalid QoS policy {args.qos}: {error}")
    broker_config = BrokerConfig(
        workers=args.workers,
        jobs=policy.jobs,
        max_queue=args.max_queue,
        max_wait=args.max_wait,
        batch_window=args.batch_window,
        timeout=policy.timeout,
        retries=policy.retries,
        policy=policy,
        qos=qos,
    )
    if args.fleet:
        return _serve_fleet(args, broker_config, store)
    qos_note = ""
    if qos is not None:
        weights = ", ".join(f"{name}={weight}" for name, weight
                            in qos.class_weights().items())
        qos_note = f"; qos classes {weights}"
    print(f"serving on http://{args.host}:{args.port} "
          f"({args.workers} batch worker(s); "
          f"policy {_policy_line(policy.describe())}{qos_note}; "
          f"SIGTERM drains)",
          file=sys.stderr)
    return run_server(host=args.host, port=args.port,
                      broker_config=broker_config,
                      store=store, trace_store=trace_store)


def _serve_fleet(args, broker_config, store) -> int:
    """``serve --fleet N``: a supervised worker fleet until SIGTERM.

    Workers bind ephemeral ports and share the content-addressed
    stores; the supervisor prints the routing table, probes, restarts
    and — on SIGTERM/SIGINT — drains the fleet one worker at a time.
    """
    from repro.service.fleet import FleetConfig, FleetSupervisor

    cache_root = None
    if store is not None:
        cache_root = store.root
    fleet = FleetSupervisor(
        FleetConfig(workers=args.fleet, host=args.host,
                    log_path=args.fleet_log),
        cache_root=cache_root, broker_config=broker_config,
    )
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    fleet.start()
    for worker_id, handle in sorted(fleet.workers.items()):
        print(f"fleet worker {worker_id}: "
              f"http://{handle.host}:{handle.port}", file=sys.stderr)
    print(f"supervising {args.fleet} worker(s); SIGTERM drains the "
          f"fleet one worker at a time", file=sys.stderr)
    stop.wait()
    print("draining fleet", file=sys.stderr)
    fleet.stop()
    print("fleet drained cleanly", file=sys.stderr)
    return EXIT_OK


def cmd_query(parser, args) -> int:
    """One ``/v1/analyze`` round trip against a running service."""
    from repro.service import (
        RequestFailed,
        ServiceClient,
        ServiceUnavailable,
    )

    client = ServiceClient(host=args.host, port=args.port,
                           timeout=args.timeout, retries=args.retries,
                           tenant=args.tenant)
    config = {"scale": args.scale,
              "max_instructions": args.max_instructions}
    try:
        response = client.analyze(args.workload, config)
    except RequestFailed as error:
        print(f"query failed: {error}", file=sys.stderr)
        return EXIT_JOB_FAILURE
    except ServiceUnavailable as error:
        print(f"service unreachable: {error}", file=sys.stderr)
        return EXIT_JOB_FAILURE
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return EXIT_OK
    result = response["result"]
    print(f"{response['workload']}: served {response['status']}, "
          f"{result['nodes']:,} node(s), {result['arcs']:,} arc(s)")
    for kind in sorted(result.get("predictors", {})):
        print(f"  predictor: {kind}")
    return EXIT_OK


# ----------------------------------------------------------------------
# repro qos
# ----------------------------------------------------------------------

def cmd_qos(parser, args) -> int:
    """``repro qos report``: per-tenant bottleneck attribution.

    Reads ``qos.*`` counters either from a metrics JSON dump (a
    profiled run or a saved broker snapshot) or live from a running
    service's ``/metrics`` exposition, and renders where each
    tenant's wall time went (queue / pool / simulate / analyze /
    store) plus the dominant phase — the bottleneck.
    """
    from repro.service.qos import (
        attribution_from_counters,
        attribution_from_prometheus,
        render_attribution,
    )

    if args.metrics is not None:
        try:
            payload = json.loads(Path(args.metrics).read_text())
        except OSError as error:
            print(f"cannot read {args.metrics}: {error}", file=sys.stderr)
            return EXIT_JOB_FAILURE
        except ValueError as error:
            print(f"{args.metrics} is not valid JSON: {error}",
                  file=sys.stderr)
            return EXIT_JOB_FAILURE
        counters = {}
        if isinstance(payload, dict):
            profile = payload.get("profile")
            if isinstance(profile, dict):
                counters = profile.get("counters", {})
            elif isinstance(payload.get("counters"), dict):
                counters = payload["counters"]
        report = attribution_from_counters(counters)
    else:
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient(host=args.host, port=args.port,
                               timeout=args.timeout, retries=args.retries)
        try:
            text = client.metrics()
        except ServiceError as error:
            print(f"cannot fetch /metrics from "
                  f"{args.host}:{args.port}: {error}", file=sys.stderr)
            return EXIT_JOB_FAILURE
        report = attribution_from_prometheus(text)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return EXIT_OK
    if not report.get("tenants"):
        print("no qos.* counters found (serve with --qos and send "
              "some requests, or pass --metrics from a profiled run)",
              file=sys.stderr)
        return EXIT_JOB_FAILURE
    print(render_attribution(report))
    return EXIT_OK


# ----------------------------------------------------------------------
# Parser assembly.
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description='Reproduction of "Modeling Program Predictability" '
                    "(Sazeides & Smith, ISCA 1998).",
    )
    import repro

    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {repro.__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run the experiment suite through the orchestrator",
        description="Parallel, disk-cached experiment orchestration.",
    )
    _add_suite_flags(run)
    _add_cache_flags(run)
    run.add_argument("--timeout", type=float, default=None,
                     help="per-job wall-clock limit in seconds")
    run.add_argument("--retries", type=int, default=1,
                     help="extra attempts for a failed job (default: 1)")
    run.add_argument("--metrics", default=None,
                     help="metrics JSON path (default: <cache>/"
                          "metrics.json; '-' to skip)")
    run.add_argument("--resume", action="store_true",
                     help="replay the journal of an interrupted run and "
                          "re-execute only the jobs it missed")
    run.set_defaults(func=cmd_run)

    chaos = sub.add_parser(
        "chaos", help="run the suite under seeded fault injection",
        description="Chaos smoke test: run the suite under a seeded "
                    "fault-injection plan and verify the robustness "
                    "invariants (byte-identical results, no orphaned "
                    "temp files, reconciling counters).",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed (default: 0)")
    chaos.add_argument("--workloads", default="com,go",
                       help="comma-separated workload names "
                            "(default: com,go)")
    chaos.add_argument("--scale", type=int, default=1,
                       help="workload problem-size multiplier")
    chaos.add_argument("--max-instructions", type=int, default=20_000,
                       help="dynamic-instruction budget per workload "
                            "(default: 20000 — chaos is a smoke test)")
    chaos.add_argument("--jobs", type=int, default=2,
                       help="worker processes (default: 2; worker-level "
                            "faults only fire in parallel runs)")
    chaos.add_argument("--retries", type=int, default=6,
                       help="extra attempts per failed job (default: 6 — "
                            "high enough to outlast the injected faults)")
    chaos.add_argument("--timeout", type=float, default=None,
                       help="per-job timeout in seconds (also arms the "
                            "worker.hang fault)")
    chaos.add_argument("--keep", metavar="DIR", default=None,
                       help="keep the chaos run's cache dir (journal "
                            "included) at DIR instead of deleting it")
    chaos.add_argument("--fault", action="append", metavar="SITE=RATE",
                       help="override/add an injection site with a "
                            "probabilistic rate (repeatable)")
    chaos.add_argument("--fleet", action="store_true",
                       help="run the supervised-fleet chaos variant: "
                            "kill -9 / wedge workers under zipf load "
                            "and assert zero failed requests "
                            "(docs/robustness.md)")
    chaos.add_argument("--fleet-workers", type=int, default=2,
                       help="fleet worker processes (default: 2)")
    chaos.add_argument("--fleet-requests", type=int, default=24,
                       help="zipf-distributed requests to drive "
                            "(default: 24)")
    chaos.set_defaults(func=cmd_chaos)

    report = sub.add_parser(
        "report", help="regenerate the paper's tables and figures",
        description="Regenerate the paper's tables and figures.",
    )
    report.add_argument("--exhibit", default="all",
                        help="which exhibit to regenerate (default: all)")
    _add_suite_flags(report)
    _add_cache_flags(report)
    report.set_defaults(func=cmd_report)

    workloads = sub.add_parser(
        "workloads", help="list, run or disassemble the workload suite",
        description="Run or inspect the SPEC95-analogue workloads.",
    )
    workloads.add_argument("--list", action="store_true",
                           help="list the suite and exit")
    workloads.add_argument("--run", metavar="NAME",
                           help="compile and run one workload")
    workloads.add_argument("--scale", type=int, default=1,
                           help="problem-size multiplier")
    workloads.add_argument("--emit-asm", action="store_true",
                           help="print the generated assembly instead of "
                                "running")
    workloads.add_argument("--generated", action="store_true",
                           help="list cached synthesized (gen:) "
                                "workloads with their (seed, knobs) "
                                "provenance")
    _add_cache_flags(workloads)
    workloads.set_defaults(func=cmd_workloads)

    gen = sub.add_parser(
        "gen", help="synthesize, inspect or run a seeded workload",
        description="Seeded workload synthesis: any "
                    "gen:<preset>@<seed>[:knob=value,...] name "
                    "regenerates the same mini-C program "
                    "byte-identically in any process "
                    "(docs/generator.md).",
    )
    gen.add_argument("name", nargs="?",
                     help="workload name, e.g. gen:graph-walk@7")
    gen.add_argument("--presets", action="store_true",
                     help="list the named presets and exit")
    gen.add_argument("--info", action="store_true",
                     help="print provenance (preset, seed, knobs, "
                          "source hash, trace key) instead of source")
    gen.add_argument("--emit-asm", action="store_true",
                     help="print the compiled assembly")
    gen.add_argument("--run", action="store_true",
                     help="compile and execute the workload")
    gen.add_argument("--scale", type=int, default=1,
                     help="problem-size multiplier (for --run/--info)")
    gen.set_defaults(func=cmd_gen)

    campaign = sub.add_parser(
        "campaign", help="run a predictor design-space campaign",
        description="Expand a declarative TOML/JSON campaign spec "
                    "(workloads x predictor-bank variants) into a "
                    "cached job grid and emit its registry-driven "
                    "report (docs/campaign.md).",
    )
    campaign.add_argument("action", choices=("run", "report", "validate"),
                          help="execute the grid, execute + emit the "
                               "report (from cached results when warm), "
                               "or just check the spec")
    campaign.add_argument("spec", help="campaign spec (.toml or .json)")
    campaign.add_argument("--out", default=None, metavar="DIR",
                          help="report output directory (required for "
                               "report, optional for run)")
    _add_engine_flag(campaign)
    campaign.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: $REPRO_JOBS, "
                               "else serial)")
    _add_cache_flags(campaign)
    campaign.set_defaults(func=cmd_campaign)

    cache = sub.add_parser(
        "cache", help="inspect, prune or clear both cache tiers",
        description="Inspect, prune or clear the result and trace "
                    "stores.",
    )
    cache.add_argument("action",
                       choices=("info", "prune", "clear", "reindex",
                                "scrub"),
                       help="print tier occupancy and hit-rates, evict "
                            "down to the caps, empty the tiers, "
                            "backfill segment-index sidecars for "
                            "stored traces (docs/sharding.md), or "
                            "verify every entry's integrity and "
                            "quarantine the rot (docs/robustness.md)")
    cache.add_argument("--segment-records", type=int,
                       default=DEFAULT_SEGMENT_RECORDS, metavar="N",
                       help="checkpoint spacing for reindex (default: "
                            f"{DEFAULT_SEGMENT_RECORDS})")
    cache.add_argument("--no-quarantine", action="store_true",
                       help="scrub: audit only — report findings but "
                            "leave every file in place")
    cache.add_argument("--report", default=None, metavar="PATH",
                       help="scrub: JSONL report path (default: "
                            "<cache>/quarantine/scrub_report.jsonl)")
    _add_cache_flags(cache)
    cache.set_defaults(func=cmd_cache)

    stats = sub.add_parser(
        "stats", help="render the profile of an observed run",
        description="Render the span/counter profile recorded by "
                    "python -m repro run --profile.",
    )
    stats.add_argument("--metrics", default=None,
                       help="metrics JSON to read (default: "
                            "<cache>/metrics.json)")
    stats.add_argument("--format", choices=("text", "jsonl", "prom"),
                       default="text",
                       help="output format (default: text)")
    _add_cache_flags(stats)
    stats.set_defaults(func=cmd_stats)

    serve = sub.add_parser(
        "serve", help="host the analysis service over HTTP",
        description="Serve repro.api over HTTP: request coalescing, "
                    "batched execution, 429 load shedding and a "
                    "graceful SIGTERM drain (docs/service.md).",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port, 0 for ephemeral (default: 8642)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent batch executors (default: 2)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="worker processes per batch (default: 1)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="queued jobs before shedding with 429 "
                            "(default: 64)")
    serve.add_argument("--max-wait", type=float, default=30.0,
                       help="estimated wait (s) before shedding "
                            "(default: 30)")
    serve.add_argument("--batch-window", type=float, default=0.02,
                       help="seconds to gather a batch (default: 0.02)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock limit in seconds")
    serve.add_argument("--retries", type=int, default=1,
                       help="extra attempts for a failed job (default: 1)")
    serve.add_argument("--fleet", type=int, default=None, metavar="N",
                       help="supervise a fleet of N worker serve "
                            "processes (ephemeral ports, shared "
                            "stores, circuit-breaking failover; "
                            "docs/service.md)")
    serve.add_argument("--fleet-log", default=None, metavar="PATH",
                       help="fleet supervisor event-log path")
    serve.add_argument("--qos", default=None, metavar="PATH",
                       help="QoS policy file (TOML or JSON): per-tenant "
                            "quotas, priority classes, weighted-fair "
                            "scheduling (docs/qos.md)")
    _add_policy_flag(serve)
    _add_cache_flags(serve)
    serve.set_defaults(func=cmd_serve)

    query = sub.add_parser(
        "query", help="query a running analysis service",
        description="POST /v1/analyze against a running "
                    "`python -m repro serve` and print the answer.",
    )
    query.add_argument("workload", help="workload name (see `workloads`)")
    query.add_argument("--host", default="127.0.0.1",
                       help="service address (default: 127.0.0.1)")
    query.add_argument("--port", type=int, default=8642,
                       help="service port (default: 8642)")
    query.add_argument("--scale", type=int, default=1,
                       help="workload problem-size multiplier")
    query.add_argument("--max-instructions", type=int, default=150_000,
                       help="dynamic-instruction budget")
    query.add_argument("--timeout", type=float, default=120.0,
                       help="per-attempt socket timeout (default: 120)")
    query.add_argument("--retries", type=int, default=3,
                       help="client retry attempts (default: 3)")
    query.add_argument("--tenant", default=None, metavar="NAME",
                       help="tenant name sent on the X-Repro-Tenant "
                            "header (default: the server's default "
                            "tenant)")
    query.add_argument("--json", action="store_true",
                       help="print the full JSON response body")
    query.set_defaults(func=cmd_query)

    qos = sub.add_parser(
        "qos", help="per-tenant QoS attribution report",
        description="Render the per-tenant bottleneck-attribution "
                    "report from qos.* counters (docs/qos.md).",
    )
    qos_sub = qos.add_subparsers(dest="action", required=True)
    qos_report = qos_sub.add_parser(
        "report", help="render the per-tenant attribution report",
        description="Read qos.* counters from a metrics JSON dump "
                    "(--metrics) or a live service's /metrics "
                    "(--host/--port) and show where each tenant's "
                    "wall time went.",
    )
    qos_report.add_argument("--metrics", default=None, metavar="PATH",
                            help="metrics JSON dump to read instead of "
                                 "querying a live service")
    qos_report.add_argument("--host", default="127.0.0.1",
                            help="service address (default: 127.0.0.1)")
    qos_report.add_argument("--port", type=int, default=8642,
                            help="service port (default: 8642)")
    qos_report.add_argument("--timeout", type=float, default=30.0,
                            help="socket timeout (default: 30)")
    qos_report.add_argument("--retries", type=int, default=1,
                            help="client retry attempts (default: 1)")
    qos_report.add_argument("--json", action="store_true",
                            help="print the report as JSON")
    qos_report.set_defaults(func=cmd_qos)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(parser, args)


if __name__ == "__main__":
    raise SystemExit(main())
