"""The unified command line: ``python -m repro <command>``.

Five subcommands over one shared flag vocabulary
(``--jobs/--scale/--cache-dir/--no-cache``):

* ``report`` — regenerate the paper's tables and figures;
* ``run`` — run the experiment suite through the two-tier-cached
  orchestrator and print per-job status (``--profile`` records and
  prints a span/counter profile, see docs/observability.md);
* ``workloads`` — list, run or disassemble the SPEC95-analogue suite;
* ``cache`` — inspect, prune or clear both cache tiers;
* ``stats`` — render the profile recorded by an earlier
  ``run --profile`` (text, JSON-lines or Prometheus format).

The pre-existing module entry points (``python -m repro.report``,
``-m repro.runner``, ``-m repro.workloads``) remain as deprecated
wrappers that forward here — with their historical flag set frozen:
new flags like ``--profile`` exist only on the unified CLI.  See
docs/api.md for the deprecation policy.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.obs.export import render_profile, to_jsonl, to_prometheus
from repro.runner.api import (
    DEFAULT_CACHE_DIR,
    ExperimentRunner,
    default_store,
    default_trace_store,
)
from repro.runner.cache import DEFAULT_MAX_BYTES, ResultStore
from repro.runner.job import ExperimentConfig
from repro.runner.tracestore import DEFAULT_TRACE_MAX_BYTES, TraceStore


def _default_jobs() -> int:
    return int(os.environ.get("REPRO_JOBS", "0")) or (os.cpu_count() or 1)


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent stores")
    parser.add_argument("--cache-dir", default=None,
                        help=f"store location (default: $REPRO_CACHE_DIR "
                             f"or {DEFAULT_CACHE_DIR}/)")
    parser.add_argument("--cache-cap-mb", type=int,
                        default=DEFAULT_MAX_BYTES // (1024 * 1024),
                        help="result-store size cap in MiB before LRU "
                             "eviction")
    parser.add_argument("--trace-cap-mb", type=int,
                        default=DEFAULT_TRACE_MAX_BYTES // (1024 * 1024),
                        help="trace-store size cap in MiB before LRU "
                             "eviction")


def _add_suite_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS, "
                             "else CPU count for run / serial for report)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names (default: all)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload problem-size multiplier")
    parser.add_argument("--max-instructions", type=int, default=150_000,
                        help="dynamic-instruction budget per workload")
    parser.add_argument("--profile", action="store_true",
                        help="record spans/counters for the run and print "
                             "the profile (also lands in the metrics JSON)")


def _make_stores(args) -> tuple[ResultStore | None, TraceStore | None]:
    """Both cache tiers, honouring the shared flags and environment."""
    if args.no_cache:
        return None, None
    if args.cache_dir is not None:
        store = ResultStore(
            args.cache_dir, max_bytes=args.cache_cap_mb * 1024 * 1024
        )
        trace_store = TraceStore(
            args.cache_dir, max_bytes=args.trace_cap_mb * 1024 * 1024
        )
        return store, trace_store
    store = default_store()
    if store is not None:
        store.max_bytes = args.cache_cap_mb * 1024 * 1024
    trace_store = default_trace_store()
    if trace_store is not None:
        trace_store.max_bytes = args.trace_cap_mb * 1024 * 1024
    return store, trace_store


def _workload_tuple(parser, value):
    if value is None:
        return None
    names = tuple(name.strip() for name in value.split(",") if name.strip())
    if not names:
        parser.error("--workloads requires at least one workload name")
    return names


# ----------------------------------------------------------------------
# repro run
# ----------------------------------------------------------------------

def cmd_run(parser, args) -> int:
    store, trace_store = _make_stores(args)
    config = ExperimentConfig(
        scale=args.scale,
        max_instructions=args.max_instructions,
        workloads=_workload_tuple(parser, args.workloads),
    )
    runner = ExperimentRunner(
        store=store, trace_store=trace_store,
        jobs=args.jobs if args.jobs is not None else _default_jobs(),
        timeout=args.timeout, retries=args.retries,
        # getattr: the deprecated ``python -m repro.runner`` forwarder's
        # frozen flag set has no --profile.
        observe=getattr(args, "profile", False),
    )
    run = runner.run(config)

    print(f"{'workload':<9} {'status':<10} {'wall':>8} {'instr':>9} "
          f"{'instr/s':>11}")
    print("-" * 52)
    for metric in run.metrics.jobs:
        rate = (f"{metric.instructions_per_second:,.0f}"
                if metric.instructions else "-")
        instr = f"{metric.instructions:,}" if metric.instructions else "-"
        print(f"{metric.workload:<9} {metric.status:<10} "
              f"{metric.wall_time:>7.2f}s {instr:>9} {rate:>11}")
        if metric.error:
            print(f"          !! {metric.error}")
    print("-" * 52)
    print(run.metrics.summary())

    if run.metrics.profile is not None:
        print()
        print(render_profile(run.metrics.profile))

    if args.metrics != "-":
        if args.metrics is not None:
            metrics_path = args.metrics
        elif store is not None:
            metrics_path = store.root / "metrics.json"
        else:
            metrics_path = None
        if metrics_path is not None:
            path = run.metrics.dump(metrics_path)
            print(f"[metrics written to {path}]", file=sys.stderr)

    return 1 if run.failures else 0


# ----------------------------------------------------------------------
# repro cache
# ----------------------------------------------------------------------

def _last_profile(store) -> dict | None:
    """The profile of the last observed run against ``store``, if any.

    ``repro run`` dumps its metrics (profile included, when observing)
    to ``<cache>/metrics.json``; ``cache info`` mines it for hit-rate
    reporting.  Anything unreadable simply reads as "no profile".
    """
    try:
        payload = json.loads((store.root / "metrics.json").read_text())
    except (OSError, ValueError):
        return None
    profile = payload.get("profile")
    return profile if isinstance(profile, dict) else None


def _tier_report(prefix: str, store, counters: dict) -> None:
    """Print one tier's occupancy (always) and hit-rate (when known)."""
    size = store.size_bytes()
    print(f"{prefix}size: {size / 1024:.1f} KiB "
          f"(cap {store.max_bytes / (1024 * 1024):.0f} MiB, "
          f"{100.0 * size / store.max_bytes:.1f}% full)")
    hits = counters.get(f"store.{store.metric}.hits", 0)
    misses = counters.get(f"store.{store.metric}.misses", 0)
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        print(f"{prefix}hit-rate: {rate:.0f}% "
              f"({hits} hit(s) / {misses} miss(es), last observed run)")


def cmd_cache(parser, args) -> int:
    store, trace_store = _make_stores(args)
    if store is None:
        print("cache disabled", file=sys.stderr)
        return 1
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
        if trace_store is not None:
            removed = trace_store.clear()
            print(f"removed {removed} stored trace(s) from "
                  f"{trace_store.root}")
        return 0
    if args.action == "prune":
        # Evict down to the (possibly flag-lowered) caps right now
        # instead of waiting for the next write.
        evicted = store.evict()
        print(f"evicted {evicted} cached result(s) from {store.root}")
        if trace_store is not None:
            evicted = trace_store.evict()
            print(f"evicted {evicted} stored trace(s) from "
                  f"{trace_store.root}")
        return 0
    profile = _last_profile(store)
    counters = profile.get("counters", {}) if profile else {}
    entries = store.entries()
    print(f"store: {store.root}")
    print(f"entries: {len(entries)}")
    _tier_report("", store, counters)
    if trace_store is not None:
        print(f"traces: {len(trace_store.entries())}")
        _tier_report("traces ", trace_store, counters)
    return 0


# ----------------------------------------------------------------------
# repro stats
# ----------------------------------------------------------------------

def cmd_stats(parser, args) -> int:
    """Render a recorded profile from a metrics JSON dump."""
    path = args.metrics
    if path is None:
        store, __ = _make_stores(args)
        if store is None:
            print("cache disabled and no --metrics path given",
                  file=sys.stderr)
            return 1
        path = store.root / "metrics.json"
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as error:
        print(f"cannot read {path}: {error}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"{path} is not valid JSON: {error}", file=sys.stderr)
        return 1
    profile = payload.get("profile")
    if not isinstance(profile, dict):
        print(f"{path} has no profile section; re-run with "
              f"python -m repro run --profile", file=sys.stderr)
        return 1
    if args.format == "jsonl":
        print(to_jsonl(profile), end="")
    elif args.format == "prom":
        print(to_prometheus(profile), end="")
    else:
        jobs = payload.get("jobs", [])
        print(f"profile of {path} ({len(jobs)} job(s), "
              f"{payload.get('total_wall', 0.0):.2f}s total)")
        print()
        print(render_profile(profile))
    return 0


# ----------------------------------------------------------------------
# repro report
# ----------------------------------------------------------------------

def cmd_report(parser, args) -> int:
    from repro.report import experiments

    exhibits = {
        "table1": lambda results: [experiments.table1(results)],
        "fig5": lambda results: [experiments.figure5(results)],
        "fig6": lambda results: list(experiments.figure6(results)),
        "fig7": lambda results: list(experiments.figure7(results)),
        "fig8": lambda results: list(experiments.figure8(results)),
        "fig9": lambda results: list(experiments.figure9(results)),
        "fig10": lambda results: [experiments.figure10(results)],
        "fig11": lambda results: list(experiments.figure11(results)),
        "fig12": lambda results: [experiments.figure12(results)],
        "fig13": lambda results: list(experiments.figure13(results)),
        # Extension exhibits (not paper figures).
        "critical": lambda results: [experiments.critical_points(results)],
    }
    if args.exhibit != "all" and args.exhibit not in exhibits:
        parser.error(f"unknown exhibit {args.exhibit!r}")

    store, trace_store = _make_stores(args)
    runner = ExperimentRunner(
        store=store, trace_store=trace_store,
        jobs=args.jobs if args.jobs is not None
        else int(os.environ.get("REPRO_JOBS", "1")),
        observe=getattr(args, "profile", False),
    )
    config = ExperimentConfig(
        scale=args.scale,
        max_instructions=args.max_instructions,
        workloads=_workload_tuple(parser, args.workloads),
    )
    start = time.time()
    run = runner.run(config)
    results = run.require()
    names = sorted(exhibits) if args.exhibit == "all" else [args.exhibit]
    for name in names:
        try:
            tables = exhibits[name](results)
        except (KeyError, ValueError) as error:
            print(f"[{name} skipped: {error}]", file=sys.stderr)
            continue
        for table in tables:
            print(table.render())
            print()
    elapsed = time.time() - start
    print(f"[analysed {len(results)} workloads in {elapsed:.1f}s]",
          file=sys.stderr)
    if run.metrics.profile is not None:
        # stderr: exhibit tables own stdout.
        print(render_profile(run.metrics.profile), file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# repro workloads
# ----------------------------------------------------------------------

def cmd_workloads(parser, args) -> int:
    from repro.minic import compile_source
    from repro.workloads import SUITE, get_workload

    if args.list or not args.run:
        print(f"{'name':<5} {'spec':<14} {'kind':<5} description")
        print("-" * 72)
        for workload in SUITE:
            print(f"{workload.name:<5} {workload.spec_name:<14} "
                  f"{workload.kind:<5} {workload.description}")
        return 0

    try:
        workload = get_workload(args.run)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 1
    if args.emit_asm:
        print(compile_source(workload.source()))
        return 0
    machine = workload.machine(scale=args.scale, tracing=False)
    start = time.time()
    result = machine.run()
    elapsed = time.time() - start
    print(result.output, end="")
    print(
        f"[{workload.spec_name} analogue: {result.instructions} "
        f"instructions, exit {result.exit_code}, {elapsed:.2f}s]",
        file=sys.stderr,
    )
    return result.exit_code


# ----------------------------------------------------------------------
# Parser assembly.
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description='Reproduction of "Modeling Program Predictability" '
                    "(Sazeides & Smith, ISCA 1998).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run the experiment suite through the orchestrator",
        description="Parallel, disk-cached experiment orchestration.",
    )
    _add_suite_flags(run)
    _add_cache_flags(run)
    run.add_argument("--timeout", type=float, default=None,
                     help="per-job wall-clock limit in seconds")
    run.add_argument("--retries", type=int, default=1,
                     help="extra attempts for a failed job (default: 1)")
    run.add_argument("--metrics", default=None,
                     help="metrics JSON path (default: <cache>/"
                          "metrics.json; '-' to skip)")
    run.set_defaults(func=cmd_run)

    report = sub.add_parser(
        "report", help="regenerate the paper's tables and figures",
        description="Regenerate the paper's tables and figures.",
    )
    report.add_argument("--exhibit", default="all",
                        help="which exhibit to regenerate (default: all)")
    _add_suite_flags(report)
    _add_cache_flags(report)
    report.set_defaults(func=cmd_report)

    workloads = sub.add_parser(
        "workloads", help="list, run or disassemble the workload suite",
        description="Run or inspect the SPEC95-analogue workloads.",
    )
    workloads.add_argument("--list", action="store_true",
                           help="list the suite and exit")
    workloads.add_argument("--run", metavar="NAME",
                           help="compile and run one workload")
    workloads.add_argument("--scale", type=int, default=1,
                           help="problem-size multiplier")
    workloads.add_argument("--emit-asm", action="store_true",
                           help="print the generated assembly instead of "
                                "running")
    workloads.set_defaults(func=cmd_workloads)

    cache = sub.add_parser(
        "cache", help="inspect, prune or clear both cache tiers",
        description="Inspect, prune or clear the result and trace "
                    "stores.",
    )
    cache.add_argument("action", choices=("info", "prune", "clear"),
                       help="print tier occupancy and hit-rates, evict "
                            "down to the caps, or empty the tiers")
    _add_cache_flags(cache)
    cache.set_defaults(func=cmd_cache)

    stats = sub.add_parser(
        "stats", help="render the profile of an observed run",
        description="Render the span/counter profile recorded by "
                    "python -m repro run --profile.",
    )
    stats.add_argument("--metrics", default=None,
                       help="metrics JSON to read (default: "
                            "<cache>/metrics.json)")
    stats.add_argument("--format", choices=("text", "jsonl", "prom"),
                       default="text",
                       help="output format (default: text)")
    _add_cache_flags(stats)
    stats.set_defaults(func=cmd_stats)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(parser, args)


if __name__ == "__main__":
    raise SystemExit(main())
