"""Command-line runner for the workload suite.

Examples::

    python -m repro.workloads --list
    python -m repro.workloads --run com
    python -m repro.workloads --run swm --scale 2
    python -m repro.workloads --run gcc --emit-asm
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.minic import compile_source
from repro.workloads import SUITE, get_workload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Run or inspect the SPEC95-analogue workloads.",
    )
    parser.add_argument("--list", action="store_true",
                        help="list the suite and exit")
    parser.add_argument("--run", metavar="NAME",
                        help="compile and run one workload")
    parser.add_argument("--scale", type=int, default=1,
                        help="problem-size multiplier")
    parser.add_argument("--emit-asm", action="store_true",
                        help="print the generated assembly instead of "
                             "running")
    args = parser.parse_args(argv)

    if args.list or not args.run:
        print(f"{'name':<5} {'spec':<14} {'kind':<5} description")
        print("-" * 72)
        for workload in SUITE:
            print(f"{workload.name:<5} {workload.spec_name:<14} "
                  f"{workload.kind:<5} {workload.description}")
        return 0

    try:
        workload = get_workload(args.run)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 1
    if args.emit_asm:
        print(compile_source(workload.source()))
        return 0
    machine = workload.machine(scale=args.scale, tracing=False)
    start = time.time()
    result = machine.run()
    elapsed = time.time() - start
    print(result.output, end="")
    print(
        f"[{workload.spec_name} analogue: {result.instructions} "
        f"instructions, exit {result.exit_code}, {elapsed:.2f}s]",
        file=sys.stderr,
    )
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
