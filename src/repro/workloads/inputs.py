"""Deterministic synthetic input generation.

Inputs play the role of the SPEC95 reference inputs: values the program
did not compute, appearing in the DPG as ``D`` nodes.  All generators
are seeded so every run of a workload sees identical data.

A private linear congruential generator is used instead of
:mod:`random` so the streams are stable across Python versions.
"""

from __future__ import annotations

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_MASK64 = (1 << 64) - 1


class Rng:
    """Small deterministic PRNG (64-bit LCG, high-bits output)."""

    def __init__(self, seed: int):
        self._state = (seed * 2654435769 + 0x9E3779B9) & _MASK64

    def next_u32(self) -> int:
        self._state = (self._state * _LCG_A + _LCG_C) & _MASK64
        return (self._state >> 32) & 0xFFFFFFFF

    def below(self, bound: int) -> int:
        """Uniform integer in [0, bound)."""
        return self.next_u32() % bound

    def word(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        return lo + self.next_u32() % (hi - lo + 1)

    def unit_float(self) -> float:
        """Uniform float in [0, 1)."""
        return self.next_u32() / 4294967296.0


def words(count: int, lo: int, hi: int, seed: int) -> list[int]:
    """``count`` uniform words in [lo, hi]."""
    rng = Rng(seed)
    return [rng.word(lo, hi) for __ in range(count)]


def bytes_with_runs(count: int, alphabet: int, run_bias: int,
                    seed: int) -> list[int]:
    """Byte stream with repeated runs (compressible, like text).

    With probability ``run_bias``/8 the previous byte repeats,
    otherwise a fresh symbol below ``alphabet`` is drawn.
    """
    rng = Rng(seed)
    out: list[int] = []
    prev = 0
    for __ in range(count):
        if out and rng.below(8) < run_bias:
            out.append(prev)
        else:
            prev = rng.below(alphabet)
            out.append(prev)
    return out


def floats(count: int, lo: float, hi: float, seed: int) -> list[float]:
    """``count`` uniform floats in [lo, hi)."""
    rng = Rng(seed)
    span = hi - lo
    return [lo + rng.unit_float() * span for __ in range(count)]


def board(size: int, stones: int, seed: int) -> list[int]:
    """A go-like board: 0 empty, 1 black, 2 white, ``stones`` placed."""
    rng = Rng(seed)
    cells = [0] * (size * size)
    placed = 0
    while placed < stones:
        cell = rng.below(size * size)
        if cells[cell] == 0:
            cells[cell] = 1 + (placed & 1)
            placed += 1
    return cells


def tiny_isa_program(count: int, seed: int) -> list[int]:
    """Encoded instructions for the m88ksim-analogue interpreter.

    Encoding: opcode*65536 + rd*4096 + rs*256 + imm, with opcodes
    0..7 (add, sub, and, or, shift, load-imm, branch-if-zero, store).
    Register fields are 0..15, immediates 0..255.  Branches jump
    backwards by a small distance so the interpreted program loops.
    """
    rng = Rng(seed)
    program: list[int] = []
    for index in range(count):
        opcode = rng.below(8)
        rd = rng.below(16)
        rs = rng.below(16)
        imm = rng.below(256)
        if opcode == 6:  # branch: bounded backward hop
            imm = rng.below(min(index, 6) + 1)
        program.append(opcode * 65536 + rd * 4096 + rs * 256 + imm)
    return program


def perl_text(count: int, seed: int) -> list[int]:
    """Synthetic perl-ish source text as character codes.

    Words are drawn from a ~100-entry dictionary (so interning hits),
    separated by spaces and occasional statement-ending semicolons.
    """
    rng = Rng(seed)
    dictionary = []
    for __ in range(100):
        length = rng.word(2, 8)
        word = [ord("a") + rng.below(26) for _i in range(length)]
        dictionary.append(word)
    out: list[int] = []
    while len(out) < count:
        word = dictionary[rng.below(len(dictionary))]
        out.extend(word)
        if rng.below(8) == 0:
            out.append(ord(";"))
        out.append(ord(" "))
    return out[:count]


def packed_transactions(count: int, key_space: int, seed: int) -> list[int]:
    """Vortex-analogue transaction stream: key | op << 16."""
    rng = Rng(seed)
    out = []
    for __ in range(count):
        key = rng.below(key_space)
        op = rng.below(4)
        out.append(key | (op << 16))
    return out
