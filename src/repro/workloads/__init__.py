"""SPEC95-analogue workload suite.

The paper evaluates on the SPEC95 benchmarks (8 integer, 4 floating
point).  Those binaries and inputs are proprietary, so this package
provides analogues written in mini-C, each mimicking the dominant
kernel and control structure of its namesake (see DESIGN.md for the
substitution rationale).  Every workload is deterministic: inputs are
generated from a fixed seed and loaded into the machine's ``D``-tagged
input regions.
"""

from repro.workloads.suite import (
    SUITE,
    Workload,
    float_workloads,
    get_workload,
    integer_workloads,
)

__all__ = [
    "SUITE",
    "Workload",
    "float_workloads",
    "get_workload",
    "integer_workloads",
]
