"""The workload registry.

Each :class:`Workload` pairs a mini-C program with a deterministic
input generator.  ``scale`` multiplies the problem size roughly
linearly in dynamic instruction count; the defaults give runs around
1e5 dynamic instructions per workload, which is where the paper's
fraction-based statistics have long since stabilised (see DESIGN.md's
performance budget for why we do not trace billions of instructions).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.asm import Program
from repro.cpu import Machine
from repro.minic import compile_program
from repro.workloads import inputs

_PROGRAM_DIR = Path(__file__).parent / "programs"

#: (input words, input floats)
InputMaker = Callable[[int], tuple[list[int], list[float]]]


@dataclass
class Workload:
    """One SPEC95-analogue benchmark.

    Attributes:
        name: short name used throughout the reports ("com", "gcc", ...).
        spec_name: the SPEC95 benchmark this is an analogue of.
        kind: "int" or "fp".
        description: one-line description of the kernel.
        make_inputs: scale -> (input words, input floats).
        source_file: explicit mini-C source path; None derives the
            path from ``spec_name`` under the bundled programs/ dir.
    """

    name: str
    spec_name: str
    kind: str
    description: str
    make_inputs: InputMaker
    source_file: Path | None = field(default=None, compare=False)
    _program: Program | None = field(default=None, repr=False, compare=False)
    _program_source_hash: str | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def source_path(self) -> Path:
        if self.source_file is not None:
            return self.source_file
        return _PROGRAM_DIR / f"{self.spec_name.split('.')[1]}.mc"

    def source(self) -> str:
        """The workload's mini-C source."""
        return self.source_path.read_text()

    def source_hash(self) -> str:
        """sha256 of the current mini-C source text."""
        return hashlib.sha256(self.source().encode()).hexdigest()

    def program(self) -> Program:
        """The compiled program, cached per Workload instance and
        keyed by the source hash — editing the ``.mc`` file mid-process
        recompiles instead of serving a stale program."""
        source = self.source()
        digest = hashlib.sha256(source.encode()).hexdigest()
        if self._program is None or self._program_source_hash != digest:
            self._program = compile_program(source)
            self._program_source_hash = digest
        return self._program

    def machine(
        self,
        scale: int = 1,
        max_instructions: int = 50_000_000,
        tracing: bool = True,
    ) -> Machine:
        """A fresh machine loaded with this workload at ``scale``."""
        words, fps = self.make_inputs(scale)
        return Machine(
            self.program(),
            input_words=words,
            input_floats=fps,
            max_instructions=max_instructions,
            tracing=tracing,
        )


def _compress_inputs(scale: int):
    n = 3000 * scale
    return [n] + inputs.bytes_with_runs(n, 64, 5, seed=101), []


def _gcc_inputs(scale: int):
    n = min(2048, 512 * scale)
    functions = 3 * scale
    stream = inputs.words(n, 0, 0x7FFFF, seed=202)
    # The paper's Fig. 1 register masks, verbatim.
    return [n] + stream + [0x8000BFFF, 0xFFFFFFF0, functions], []


def _go_inputs(scale: int):
    rounds = 2 * scale
    return [rounds] + inputs.board(19, 90, seed=303), []


def _ijpeg_inputs(scale: int):
    blocks = 20 * scale
    return [blocks] + inputs.words(blocks * 64, 0, 255, seed=404), []


def _perl_inputs(scale: int):
    n = min(16384, 4000 * scale)
    return [n] + inputs.perl_text(n, seed=505), []


def _m88ksim_inputs(scale: int):
    count = 512
    steps = 8000 * scale
    return [count, steps] + inputs.tiny_isa_program(count, seed=606), []


def _vortex_inputs(scale: int):
    transactions = 2500 * scale
    stream = inputs.packed_transactions(transactions, 4096, seed=707)
    return [transactions] + stream, []


def _li_inputs(scale: int):
    rounds = 25 * scale
    return [rounds] + inputs.words(200, 0, 999, seed=808), []


def _applu_inputs(scale: int):
    iterations = 2 * scale
    return [iterations], inputs.floats(1024, 0.0, 1.0, seed=909)


def _fpppp_inputs(scale: int):
    quartets = 500 * scale
    return [quartets], inputs.floats(256, 0.0, 1.0, seed=1010)


def _mgrid_inputs(scale: int):
    cycles = scale
    return [cycles], inputs.floats(1089, 0.0, 1.0, seed=1111)


def _swim_inputs(scale: int):
    steps = 4 * scale
    grid = 26
    return [grid, steps], inputs.floats(grid * grid, -0.5, 0.5, seed=1212)


#: The full suite, in the paper's presentation order
#: (com gcc go ijp per m88 vor xli | app fpp mgr swm).
SUITE: tuple[Workload, ...] = (
    Workload("com", "129.compress", "int",
             "LZW compression with a (prefix, char) hash table",
             _compress_inputs),
    Workload("gcc", "126.gcc", "int",
             "compiler passes: value numbering, DCE, register masks",
             _gcc_inputs),
    Workload("go", "099.go", "int",
             "board evaluation: liberties, influence, move scoring",
             _go_inputs),
    Workload("ijp", "132.ijpeg", "int",
             "integer 8x8 DCT, quantisation and run-length coding",
             _ijpeg_inputs),
    Workload("per", "134.perl", "int",
             "tokeniser and symbol-table interpreter",
             _perl_inputs),
    Workload("m88", "124.m88ksim", "int",
             "fetch-decode-execute interpreter for a tiny ISA",
             _m88ksim_inputs),
    Workload("vor", "147.vortex", "int",
             "in-memory object database transaction mix",
             _vortex_inputs),
    Workload("xli", "130.li", "int",
             "cons-cell list processing with mark-sweep GC",
             _li_inputs),
    Workload("app", "110.applu", "fp",
             "SSOR lower/upper sweeps for a coupled 5-field system",
             _applu_inputs),
    Workload("fpp", "145.fpppp", "fp",
             "two-electron integral kernel, huge FP basic blocks",
             _fpppp_inputs),
    Workload("mgr", "107.mgrid", "fp",
             "multigrid V-cycles on a 2D Poisson problem",
             _mgrid_inputs),
    Workload("swm", "102.swim", "fp",
             "shallow-water stencil updates with periodic bounds",
             _swim_inputs),
)

_BY_NAME = {workload.name: workload for workload in SUITE}
_BY_NAME.update({workload.spec_name: workload for workload in SUITE})


def get_workload(name: str) -> Workload:
    """Look a workload up by short name or SPEC name.

    Names starting with ``gen:`` resolve to synthesized workloads
    (:mod:`repro.gen`): the name encodes ``(preset, seed, knobs)``, so
    resolution works in any process — pool workers rebuild the same
    program from the name alone.
    """
    if name.startswith("gen:"):
        from repro.gen.workload import generated_workload

        try:
            return generated_workload(name)
        except ValueError as exc:
            raise KeyError(str(exc)) from None
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: "
            f"{', '.join(sorted(w.name for w in SUITE))} "
            "(or gen:<preset>@<seed>)"
        ) from None


def integer_workloads() -> tuple[Workload, ...]:
    return tuple(w for w in SUITE if w.kind == "int")


def float_workloads() -> tuple[Workload, ...]:
    return tuple(w for w in SUITE if w.kind == "fp")
