"""Operand-text parsing helpers for the assembler."""

from __future__ import annotations

import re

from repro.errors import AsmError
from repro.isa.registers import register_number

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_SYM_OFFSET_RE = re.compile(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*([+-]\s*\d+)?$")
_HILO_RE = re.compile(r"^%(hi|lo)\((.+)\)$")
_MEM_RE = re.compile(r"^(.*)\(\s*(\$[A-Za-z0-9]+)\s*\)$")


def split_operands(text: str) -> list[str]:
    """Split an operand string on top-level commas."""
    text = text.strip()
    if not text:
        return []
    return [part.strip() for part in text.split(",")]


def is_register(text: str) -> bool:
    """Return True if ``text`` looks like a register operand."""
    if not text.startswith("$"):
        return False
    try:
        register_number(text)
    except KeyError:
        return False
    return True


def parse_register(text: str, line: int | None = None) -> int:
    """Parse a register operand, raising :class:`AsmError` on failure."""
    try:
        return register_number(text)
    except KeyError:
        raise AsmError(f"invalid register: {text!r}", line) from None


def unescape_char(body: str, line: int | None = None) -> str:
    """Decode the body of a character literal (without quotes)."""
    if len(body) == 1:
        return body
    if len(body) == 2 and body[0] == "\\":
        try:
            return _ESCAPES[body[1]]
        except KeyError:
            raise AsmError(f"unknown escape: {body!r}", line) from None
    raise AsmError(f"invalid character literal: {body!r}", line)


def unescape_string(body: str, line: int | None = None) -> str:
    """Decode the body of a string literal (without quotes)."""
    out = []
    index = 0
    while index < len(body):
        char = body[index]
        if char == "\\":
            if index + 1 >= len(body):
                raise AsmError("dangling escape in string", line)
            out.append(unescape_char(body[index : index + 2], line))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def try_parse_int(text: str) -> int | None:
    """Parse an integer literal; return None if ``text`` is not one."""
    text = text.strip()
    if not text:
        return None
    if len(text) >= 3 and text[0] == "'" and text[-1] == "'":
        try:
            return ord(unescape_char(text[1:-1]))
        except AsmError:
            return None
    try:
        return int(text, 0)
    except ValueError:
        return None


def parse_int(text: str, line: int | None = None) -> int:
    """Parse an integer literal, raising :class:`AsmError` on failure."""
    value = try_parse_int(text)
    if value is None:
        raise AsmError(f"invalid integer literal: {text!r}", line)
    return value


def is_label(text: str) -> bool:
    """Return True if ``text`` is a valid label/symbol name."""
    return bool(_LABEL_RE.match(text)) and not text.startswith("$")


def parse_symbol_ref(text: str, line: int | None = None) -> tuple[str, int]:
    """Parse ``sym`` or ``sym+offset`` into (name, offset)."""
    match = _SYM_OFFSET_RE.match(text.strip())
    if not match or not is_label(match.group(1)):
        raise AsmError(f"invalid symbol reference: {text!r}", line)
    offset_text = match.group(2)
    offset = int(offset_text.replace(" ", "")) if offset_text else 0
    return match.group(1), offset


def parse_hilo(text: str) -> tuple[str, str] | None:
    """Parse ``%hi(expr)`` / ``%lo(expr)``; return (which, expr) or None."""
    match = _HILO_RE.match(text.strip())
    if not match:
        return None
    return match.group(1), match.group(2)


def parse_mem_operand(
    text: str, line: int | None = None
) -> tuple[str | int, int] | None:
    """Parse a register-relative memory operand ``disp($base)``.

    Returns (displacement, base register number), where the
    displacement may be an int or a ``%lo(...)`` string kept for later
    relocation.  Returns None when ``text`` has no ``($reg)`` part
    (i.e. it is a bare symbol needing pseudo expansion).
    """
    match = _MEM_RE.match(text.strip())
    if not match:
        return None
    disp_text = match.group(1).strip()
    base = parse_register(match.group(2), line)
    if not disp_text:
        return 0, base
    if parse_hilo(disp_text) is not None:
        return disp_text, base
    return parse_int(disp_text, line), base
