"""Assembled program representation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction


@dataclass(frozen=True, slots=True)
class DataItem:
    """One initialised cell in the static data segment.

    Attributes:
        addr: byte address of the cell.
        size: cell size in bytes (1, 2, 4 or 8).
        value: initial value; ints for integer cells, float for doubles.
        is_float: True when the cell holds a floating-point value.
    """

    addr: int
    size: int
    value: int | float
    is_float: bool = False


@dataclass(slots=True)
class Program:
    """A fully assembled program.

    Attributes:
        instructions: decoded instructions; the program counter is an
            index into this list.
        data: initialised data-segment cells (loaded as ``D`` values).
        labels: text labels mapped to instruction indices.
        symbols: data labels mapped to byte addresses.
        entry: instruction index where execution starts.
        source: the original assembly source, for diagnostics.
    """

    instructions: list[Instruction]
    data: list[DataItem] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = 0
    source: str = field(default="", repr=False)

    def __len__(self) -> int:
        return len(self.instructions)

    def listing(self) -> str:
        """Return a human-readable listing with instruction indices."""
        index_to_label = {index: name for name, index in self.labels.items()}
        lines = []
        for index, instr in enumerate(self.instructions):
            label = index_to_label.get(index)
            if label is not None:
                lines.append(f"{label}:")
            lines.append(f"  {index:5d}  {instr.render()}")
        return "\n".join(lines)
