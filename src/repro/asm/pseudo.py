"""Pseudo-instruction expansion.

Expansion happens before label resolution, so expanded operands may
contain symbolic pieces such as ``%hi(sym)`` / ``%lo(sym)`` which the
second assembler pass resolves.  Expansion must be deterministic in
instruction count (pass one assigns label addresses), which is why
``la`` always expands to two instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AsmError
from repro.asm.operands import (
    is_register,
    parse_int,
    parse_symbol_ref,
)

#: Register reserved for assembler temporaries ($at).
AT = "$at"
ZERO = "$zero"


@dataclass(slots=True)
class RawInstr:
    """An unresolved instruction: mnemonic plus operand strings."""

    op: str
    operands: list[str]
    line: int | None = None
    text: str = field(default="")


def _raw(op: str, *operands: str, line: int | None = None) -> RawInstr:
    return RawInstr(op, list(operands), line=line)


def _expand_li(instr: RawInstr) -> list[RawInstr]:
    if len(instr.operands) != 2:
        raise AsmError("li expects 2 operands", instr.line)
    dest, literal = instr.operands
    value = parse_int(literal, instr.line) & 0xFFFF_FFFF
    signed = value - 0x1_0000_0000 if value & 0x8000_0000 else value
    line = instr.line
    if -32768 <= signed <= 32767:
        return [_raw("addiu", dest, ZERO, str(signed), line=line)]
    if 0 <= value <= 0xFFFF:
        return [_raw("ori", dest, ZERO, str(value), line=line)]
    high = (value >> 16) & 0xFFFF
    low = value & 0xFFFF
    expansion = [_raw("lui", dest, str(high), line=line)]
    if low:
        expansion.append(_raw("ori", dest, dest, str(low), line=line))
    return expansion


def _expand_la(instr: RawInstr) -> list[RawInstr]:
    if len(instr.operands) != 2:
        raise AsmError("la expects 2 operands", instr.line)
    dest, ref = instr.operands
    parse_symbol_ref(ref, instr.line)  # validate early
    return [
        _raw("lui", dest, f"%hi({ref})", line=instr.line),
        _raw("ori", dest, dest, f"%lo({ref})", line=instr.line),
    ]


def _expand_move(instr: RawInstr) -> list[RawInstr]:
    if len(instr.operands) != 2:
        raise AsmError("move expects 2 operands", instr.line)
    dest, src = instr.operands
    return [_raw("addu", dest, src, ZERO, line=instr.line)]


def _expand_b(instr: RawInstr) -> list[RawInstr]:
    if len(instr.operands) != 1:
        raise AsmError("b expects 1 operand", instr.line)
    return [_raw("beq", ZERO, ZERO, instr.operands[0], line=instr.line)]


def _expand_beqz(instr: RawInstr) -> list[RawInstr]:
    src, label = instr.operands
    return [_raw("beq", src, ZERO, label, line=instr.line)]


def _expand_bnez(instr: RawInstr) -> list[RawInstr]:
    src, label = instr.operands
    return [_raw("bne", src, ZERO, label, line=instr.line)]


def _compare_branch(slt_args, branch_op):
    def expand(instr: RawInstr) -> list[RawInstr]:
        if len(instr.operands) != 3:
            raise AsmError(f"{instr.op} expects 3 operands", instr.line)
        lhs, rhs, label = instr.operands
        operands = [lhs if arg == "l" else rhs for arg in slt_args]
        return [
            _raw("slt", AT, *operands, line=instr.line),
            _raw(branch_op, AT, ZERO, label, line=instr.line),
        ]

    return expand


def _expand_neg(instr: RawInstr) -> list[RawInstr]:
    dest, src = instr.operands
    return [_raw("sub", dest, ZERO, src, line=instr.line)]


def _expand_not(instr: RawInstr) -> list[RawInstr]:
    dest, src = instr.operands
    return [_raw("nor", dest, src, ZERO, line=instr.line)]


_MEM_OPS = {"lw", "lb", "lbu", "lh", "lhu", "sw", "sb", "sh", "l.d", "s.d"}

_EXPANSIONS = {
    "li": _expand_li,
    "la": _expand_la,
    "move": _expand_move,
    "b": _expand_b,
    "beqz": _expand_beqz,
    "bnez": _expand_bnez,
    "blt": _compare_branch("lr", "bne"),
    "bge": _compare_branch("lr", "beq"),
    "bgt": _compare_branch("rl", "bne"),
    "ble": _compare_branch("rl", "beq"),
    "neg": _expand_neg,
    "not": _expand_not,
}


def _expand_symbolic_mem(instr: RawInstr) -> list[RawInstr] | None:
    """Expand ``lw $t0, sym`` into ``la $at, sym`` + register form."""
    if instr.op not in _MEM_OPS or len(instr.operands) != 2:
        return None
    address = instr.operands[1]
    if "(" in address or is_register(address):
        return None
    expansion = _expand_la(_raw("la", AT, address, line=instr.line))
    expansion.append(
        _raw(instr.op, instr.operands[0], f"0({AT})", line=instr.line)
    )
    return expansion


def expand(instr: RawInstr) -> list[RawInstr]:
    """Expand ``instr`` into real instructions (possibly itself)."""
    handler = _EXPANSIONS.get(instr.op)
    if handler is not None:
        return handler(instr)
    symbolic = _expand_symbolic_mem(instr)
    if symbolic is not None:
        return symbolic
    return [instr]
