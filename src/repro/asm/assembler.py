"""Two-pass assembler driver.

Pass one parses lines, expands pseudo-instructions, lays out the data
segment and binds labels.  Pass two resolves symbols and decodes each
instruction into a :class:`repro.isa.Instruction`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.operands import (
    parse_hilo,
    parse_int,
    parse_mem_operand,
    parse_register,
    parse_symbol_ref,
    split_operands,
    try_parse_int,
    unescape_string,
)
from repro.asm.program import DataItem, Program
from repro.asm.pseudo import RawInstr, expand
from repro.errors import AsmError
from repro.isa.instruction import Instruction
from repro.isa.layout import DATA_BASE
from repro.isa.opcodes import OPCODES, Format
from repro.isa.registers import REG_RA, is_fp_reg

_SHIFT_OPS = {"sll", "srl", "sra"}
_SIGNED_IMM_OPS = {"addi", "addiu", "slti"}
_UNSIGNED_IMM_OPS = {"andi", "ori", "xori", "sltiu", "lui"}


@dataclass(slots=True)
class _PendingData:
    addr: int
    size: int
    value: object  # int, float, or symbol-reference string
    is_float: bool
    line: int | None


class _Assembler:
    def __init__(self, source: str, entry_label: str):
        self.source = source
        self.entry_label = entry_label
        self.raw: list[RawInstr] = []
        self.labels: dict[str, int] = {}
        self.symbols: dict[str, int] = {}
        self.pending_data: list[_PendingData] = []
        self.segment = "text"
        self.cursor = DATA_BASE
        self.pending_labels: list[tuple[str, int | None]] = []

    # ------------------------------------------------------------------
    # Pass one: parse, expand, lay out.
    # ------------------------------------------------------------------

    def run(self) -> Program:
        for line_no, line in enumerate(self.source.splitlines(), start=1):
            self._parse_line(line, line_no)
        self._bind_pending(self.cursor)
        instructions = [self._decode(raw) for raw in self.raw]
        data = [self._resolve_data(item) for item in self.pending_data]
        entry = self.labels.get(self.entry_label)
        if entry is None:
            entry = self.labels.get("main", 0)
        return Program(
            instructions=instructions,
            data=data,
            labels=dict(self.labels),
            symbols=dict(self.symbols),
            entry=entry,
            source=self.source,
        )

    def _parse_line(self, line: str, line_no: int) -> None:
        line = _strip_comment(line)
        while True:
            line = line.strip()
            colon = _label_split(line)
            if colon is None:
                break
            name, line = colon
            self._define_label(name, line_no)
        if not line:
            return
        if line.startswith("."):
            self._directive(line, line_no)
            return
        parts = line.split(None, 1)
        op = parts[0]
        operand_text = parts[1] if len(parts) > 1 else ""
        raw = RawInstr(op, split_operands(operand_text), line=line_no, text=line)
        if op not in OPCODES:
            expanded = expand(raw)
            if len(expanded) == 1 and expanded[0] is raw:
                raise AsmError(f"unknown opcode: {op!r}", line_no)
            self.raw.extend(expanded)
        else:
            self.raw.extend(expand(raw))

    def _define_label(self, name: str, line_no: int) -> None:
        if name in self.labels or name in self.symbols:
            raise AsmError(f"duplicate label: {name!r}", line_no)
        if self.segment == "text":
            self.labels[name] = len(self.raw)
        else:
            self.pending_labels.append((name, line_no))

    def _bind_pending(self, addr: int) -> None:
        for name, line_no in self.pending_labels:
            if name in self.symbols or name in self.labels:
                raise AsmError(f"duplicate label: {name!r}", line_no)
            self.symbols[name] = addr
        self.pending_labels.clear()

    def _align(self, boundary: int) -> None:
        remainder = self.cursor % boundary
        if remainder:
            self.cursor += boundary - remainder

    def _emit_data(self, size, value, is_float, line_no) -> None:
        self._align(size)
        self._bind_pending(self.cursor)
        self.pending_data.append(
            _PendingData(self.cursor, size, value, is_float, line_no)
        )
        self.cursor += size

    def _directive(self, line: str, line_no: int) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        if name == ".text":
            self.segment = "text"
        elif name == ".data":
            self.segment = "data"
        elif name in (".word", ".half", ".byte"):
            size = {".word": 4, ".half": 2, ".byte": 1}[name]
            for item in split_operands(rest):
                value = try_parse_int(item)
                self._emit_data(size, value if value is not None else item,
                                False, line_no)
        elif name == ".double":
            for item in split_operands(rest):
                try:
                    value = float(item)
                except ValueError:
                    raise AsmError(
                        f"invalid float literal: {item!r}", line_no
                    ) from None
                self._emit_data(8, value, True, line_no)
        elif name == ".space":
            self._bind_pending(self.cursor)
            self.cursor += parse_int(rest, line_no)
        elif name == ".align":
            self._align(1 << parse_int(rest, line_no))
            self._bind_pending(self.cursor)
        elif name in (".asciiz", ".ascii"):
            if len(rest) < 2 or rest[0] != '"' or rest[-1] != '"':
                raise AsmError("string directive needs a quoted string", line_no)
            text = unescape_string(rest[1:-1], line_no)
            if name == ".asciiz":
                text += "\0"
            for char in text:
                self._emit_data(1, ord(char), False, line_no)
        elif name in (".globl", ".global", ".ent", ".end", ".set"):
            pass  # accepted and ignored
        else:
            raise AsmError(f"unknown directive: {name!r}", line_no)

    # ------------------------------------------------------------------
    # Pass two: resolution and decoding.
    # ------------------------------------------------------------------

    def _symbol_value(self, name: str, line: int | None) -> int:
        if name in self.symbols:
            return self.symbols[name]
        if name in self.labels:
            return self.labels[name]
        raise AsmError(f"undefined symbol: {name!r}", line)

    def _resolve_imm(self, text: str, line: int | None) -> int:
        value = try_parse_int(text)
        if value is not None:
            return value
        hilo = parse_hilo(text)
        if hilo is not None:
            which, expr = hilo
            name, offset = parse_symbol_ref(expr, line)
            address = self._symbol_value(name, line) + offset
            return (address >> 16) & 0xFFFF if which == "hi" else address & 0xFFFF
        raise AsmError(f"invalid immediate: {text!r}", line)

    def _resolve_data(self, item: _PendingData) -> DataItem:
        value = item.value
        if isinstance(value, str):
            name, offset = parse_symbol_ref(value, item.line)
            value = self._symbol_value(name, item.line) + offset
        return DataItem(item.addr, item.size, value, item.is_float)

    def _target(self, label: str, line: int | None) -> int:
        if label not in self.labels:
            raise AsmError(f"undefined branch target: {label!r}", line)
        return self.labels[label]

    def _check_imm(self, op: str, imm: int, line: int | None) -> None:
        if op in _SHIFT_OPS:
            if not 0 <= imm <= 31:
                raise AsmError(f"shift amount out of range: {imm}", line)
        elif op in _SIGNED_IMM_OPS:
            if not -32768 <= imm <= 32767:
                raise AsmError(f"immediate out of range for {op}: {imm}", line)
        elif op in _UNSIGNED_IMM_OPS:
            if not 0 <= imm <= 0xFFFF:
                raise AsmError(f"immediate out of range for {op}: {imm}", line)
        else:  # memory displacement
            if not -32768 <= imm <= 0xFFFF:
                raise AsmError(f"displacement out of range: {imm}", line)

    def _want(self, raw: RawInstr, count: int) -> list[str]:
        if len(raw.operands) != count:
            raise AsmError(
                f"{raw.op} expects {count} operand(s), got {len(raw.operands)}",
                raw.line,
            )
        return raw.operands

    def _reg(self, text: str, line, fp: bool | None = None) -> int:
        number = parse_register(text, line)
        if fp is True and not is_fp_reg(number):
            raise AsmError(f"expected fp register, got {text!r}", line)
        if fp is False and is_fp_reg(number):
            raise AsmError(f"expected integer register, got {text!r}", line)
        return number

    def _decode(self, raw: RawInstr) -> Instruction:
        spec = OPCODES.get(raw.op)
        if spec is None:
            raise AsmError(f"unknown opcode: {raw.op!r}", raw.line)
        line = raw.line
        fmt = spec.fmt
        text = raw.text or f"{raw.op} " + ", ".join(raw.operands)
        if fmt is Format.RRR:
            dest, lhs, rhs = self._want(raw, 3)
            return Instruction(
                raw.op,
                dest=self._reg(dest, line, fp=False),
                src1=self._reg(lhs, line, fp=False),
                src2=self._reg(rhs, line, fp=False),
                text=text,
            )
        if fmt is Format.RRI:
            dest, src, imm_text = self._want(raw, 3)
            imm = self._resolve_imm(imm_text, line)
            self._check_imm(raw.op, imm, line)
            return Instruction(
                raw.op,
                dest=self._reg(dest, line, fp=False),
                src1=self._reg(src, line, fp=False),
                imm=imm,
                text=text,
            )
        if fmt is Format.LUI:
            dest, imm_text = self._want(raw, 2)
            imm = self._resolve_imm(imm_text, line)
            self._check_imm(raw.op, imm, line)
            return Instruction(
                raw.op, dest=self._reg(dest, line, fp=False), imm=imm, text=text
            )
        if fmt in (Format.MEM, Format.FMEM):
            reg_text, mem_text = self._want(raw, 2)
            parsed = parse_mem_operand(mem_text, line)
            if parsed is None:
                raise AsmError(f"invalid memory operand: {mem_text!r}", line)
            disp, base = parsed
            if isinstance(disp, str):
                disp = self._resolve_imm(disp, line)
            self._check_imm(raw.op, disp, line)
            data_reg = self._reg(reg_text, line, fp=(fmt is Format.FMEM))
            if spec.writes_dest:  # load
                return Instruction(
                    raw.op, dest=data_reg, src1=base, imm=disp, text=text
                )
            return Instruction(  # store: src1=base, src2=data
                raw.op, src1=base, src2=data_reg, imm=disp, text=text
            )
        if fmt is Format.BRANCH2:
            lhs, rhs, label = self._want(raw, 3)
            return Instruction(
                raw.op,
                src1=self._reg(lhs, line, fp=False),
                src2=self._reg(rhs, line, fp=False),
                target=self._target(label, line),
                text=text,
            )
        if fmt is Format.BRANCH1:
            src, label = self._want(raw, 2)
            return Instruction(
                raw.op,
                src1=self._reg(src, line, fp=False),
                target=self._target(label, line),
                text=text,
            )
        if fmt is Format.JUMP:
            (label,) = self._want(raw, 1)
            dest = REG_RA if spec.writes_dest else None
            return Instruction(
                raw.op, dest=dest, target=self._target(label, line), text=text
            )
        if fmt in (Format.JR, Format.JALR):
            (src,) = self._want(raw, 1)
            dest = REG_RA if spec.writes_dest else None
            return Instruction(
                raw.op, dest=dest, src1=self._reg(src, line, fp=False), text=text
            )
        if fmt is Format.FRRR:
            dest, lhs, rhs = self._want(raw, 3)
            return Instruction(
                raw.op,
                dest=self._reg(dest, line, fp=True),
                src1=self._reg(lhs, line, fp=True),
                src2=self._reg(rhs, line, fp=True),
                text=text,
            )
        if fmt is Format.FRR:
            dest, src = self._want(raw, 2)
            return Instruction(
                raw.op,
                dest=self._reg(dest, line, fp=True),
                src1=self._reg(src, line, fp=True),
                text=text,
            )
        if fmt is Format.FCMP:
            dest, lhs, rhs = self._want(raw, 3)
            return Instruction(
                raw.op,
                dest=self._reg(dest, line, fp=False),
                src1=self._reg(lhs, line, fp=True),
                src2=self._reg(rhs, line, fp=True),
                text=text,
            )
        if fmt is Format.ITOF:
            dest, src = self._want(raw, 2)
            return Instruction(
                raw.op,
                dest=self._reg(dest, line, fp=True),
                src1=self._reg(src, line, fp=False),
                text=text,
            )
        if fmt is Format.FTOI:
            dest, src = self._want(raw, 2)
            return Instruction(
                raw.op,
                dest=self._reg(dest, line, fp=False),
                src1=self._reg(src, line, fp=True),
                text=text,
            )
        if fmt is Format.NONE:
            self._want(raw, 0)
            return Instruction(raw.op, text=text)
        raise AsmError(f"unhandled format for {raw.op!r}", line)


def _strip_comment(line: str) -> str:
    """Remove ``#`` comments, respecting quoted strings."""
    in_string = False
    escaped = False
    for index, char in enumerate(line):
        if escaped:
            escaped = False
            continue
        if char == "\\" and in_string:
            escaped = True
        elif char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _label_split(line: str) -> tuple[str, str] | None:
    """If ``line`` starts with ``name:``, return (name, remainder)."""
    for index, char in enumerate(line):
        if char == ":":
            name = line[:index].strip()
            if name and all(
                part.isalnum() or part in "._$" for part in name
            ) and not name[0].isdigit():
                return name, line[index + 1 :]
            return None
        if char in ' \t"#':
            return None
    return None


def assemble(source: str, entry_label: str = "__start") -> Program:
    """Assemble ``source`` into a :class:`Program`.

    Args:
        source: assembly text.
        entry_label: label where execution starts; falls back to
            ``main`` and then instruction 0 when absent.

    Raises:
        AsmError: on any syntax, range, or resolution error.
    """
    return _Assembler(source, entry_label).run()
