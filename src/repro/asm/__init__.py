"""Two-pass assembler for the MIPS-like ISA.

The assembler turns assembly text (as produced by :mod:`repro.minic`
or written by hand) into a :class:`repro.asm.program.Program`: a list
of decoded :class:`repro.isa.Instruction` records plus an initialised
data segment.  It supports labels, the usual data directives, and a
small set of pseudo-instructions (``li``, ``la``, ``move``, ``b``,
``blt``/``bge``/``bgt``/``ble``, ``beqz``/``bnez``, ``neg``, ``not``).
"""

from repro.asm.assembler import assemble
from repro.asm.program import DataItem, Program
from repro.errors import AsmError

__all__ = ["AsmError", "DataItem", "Program", "assemble"]
