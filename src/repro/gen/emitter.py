"""Grammar-directed emission of valid, terminating mini-C.

The emitter walks a statement/expression grammar with every choice
drawn from the repo's deterministic :class:`~repro.workloads.inputs.Rng`
— no :mod:`random`, no iteration-order dependence — so the output is a
pure function of ``(knobs, seed)``.

Validity and termination are guaranteed *by construction* rather than
checked after the fact:

* every loop is counted (``for (i = 0; i < trip; i++)``) with a trip
  count that is either a small emitted constant or the scale word
  ``input_word(0)``; loop counters are reserved names never assigned
  inside bodies, and ``continue`` is only emitted inside ``for`` loops
  (where the step still runs);
* array indices are always masked with the power-of-two array size;
* division and modulus denominators are forced non-zero
  (``| 1`` / ``+ 1`` after masking), shift amounts are literal 1..7;
* helper calls form a DAG (``f0 -> f1 -> ...``), so no recursion;
* every variable is initialised at declaration.

The produced programs therefore differ only in the *structure* the
knobs dial in — which is the point: they are probes for the
predictability model, not fuzz inputs (the fuzzer feeds the toolchain
broken source on purpose; see tests/gen/test_fuzz.py).
"""

from __future__ import annotations

from dataclasses import fields

from repro.gen.knobs import GenKnobs
from repro.workloads.inputs import Rng

#: Every generated data array has this many elements; indices are
#: masked with ``ARRAY_MASK`` so any int expression is a safe index.
ARRAY_SIZE = 256
ARRAY_MASK = ARRAY_SIZE - 1

#: Integer scratch variables available to expressions in main.
_N_VARS = 4

_INT_OPS = ("+", "-", "*", "&", "|", "^")
_FLOAT_OPS = ("+", "-", "*")


def generate_source(knobs: GenKnobs, seed: int, name: str = "") -> str:
    """Emit a complete mini-C program for ``(knobs, seed)``.

    ``name`` is recorded in the provenance header only; it does not
    influence generation, so the same ``(knobs, seed)`` pair yields the
    same program body under any name.
    """
    knobs.validate()
    return _Emitter(knobs, seed, name).emit()


def input_layout(knobs: GenKnobs) -> tuple[int, int]:
    """(input words needed after the scale word, input floats needed).

    The word stream seeds the integer arrays; the float stream seeds
    the float array when ``float_ops`` is nonzero.
    """
    words = knobs.arrays * ARRAY_SIZE
    floats = ARRAY_SIZE if knobs.float_ops else 0
    return words, floats


class _Emitter:
    def __init__(self, knobs: GenKnobs, seed: int, name: str):
        self.knobs = knobs
        self.rng = Rng(seed ^ 0x5EED_C0DE)
        self.name = name
        self.seed = seed
        self.lines: list[str] = []
        self.indent = 0
        #: structural nesting budget: loops + branches + switches.
        self.max_depth = knobs.loop_depth + 2

    # -- low-level emission helpers ------------------------------------

    def _put(self, text: str) -> None:
        self.lines.append("    " * self.indent + text if text else "")

    def _chance(self, eighths: int) -> bool:
        return self.rng.below(8) < eighths

    # -- expressions ---------------------------------------------------

    def _imm(self) -> str:
        kind = self.rng.below(4)
        if kind == 0:
            return str(self.rng.below(16))
        if kind == 1:
            return str(self.rng.word(16, 4095))
        if kind == 2:
            return str(self.rng.word(4096, 65535))
        return hex(self.rng.word(0x10000, 0xFFFFF))

    def _leaf(self, ints: list[str]) -> str:
        if self._chance(self.knobs.imm_mix) or not ints:
            return self._imm()
        if self.rng.below(8) < 2:
            return self._array_read(ints)
        return ints[self.rng.below(len(ints))]

    def _array_read(self, ints: list[str]) -> str:
        array = self.rng.below(self.knobs.arrays)
        index = self._leaf([v for v in ints if not v.startswith("arr")])
        return f"arr{array}[({index}) & {ARRAY_MASK}]"

    def _int_expr(self, ints: list[str], depth: int = 2) -> str:
        if depth <= 0 or self.rng.below(8) < 2:
            return self._leaf(ints)
        roll = self.rng.below(10)
        lhs = self._int_expr(ints, depth - 1)
        if roll < 6:
            op = _INT_OPS[self.rng.below(len(_INT_OPS))]
            rhs = self._int_expr(ints, depth - 1)
            return f"({lhs} {op} {rhs})"
        if roll < 7:
            return f"({lhs} << {self.rng.word(1, 7)})"
        if roll < 8:
            return f"({lhs} >> {self.rng.word(1, 7)})"
        if roll < 9:
            rhs = self._leaf(ints)
            return f"({lhs} / (({rhs} & {ARRAY_MASK}) | 1))"
        rhs = self._leaf(ints)
        return f"({lhs} % ((({rhs}) & 63) + 1))"

    def _float_expr(self, floats: list[str], ints: list[str],
                    depth: int = 2) -> str:
        if depth <= 0 or self.rng.below(8) < 3:
            kind = self.rng.below(3)
            if kind == 0 and floats:
                return floats[self.rng.below(len(floats))]
            if kind == 1:
                index = self._leaf(ints)
                return f"farr0[({index}) & {ARRAY_MASK}]"
            return f"{self.rng.word(1, 9999) / 1000.0:.3f}"
        op = _FLOAT_OPS[self.rng.below(len(_FLOAT_OPS))]
        lhs = self._float_expr(floats, ints, depth - 1)
        rhs = self._float_expr(floats, ints, depth - 1)
        return f"({lhs} {op} {rhs})"

    def _cond_expr(self, ints: list[str]) -> str:
        lhs = self._int_expr(ints, 1)
        op = ("<", ">", "<=", ">=", "==", "!=")[self.rng.below(6)]
        rhs = self._imm() if self._chance(5) else self._leaf(ints)
        return f"({lhs} & {ARRAY_MASK}) {op} (({rhs}) & {ARRAY_MASK})"

    # -- statements ----------------------------------------------------

    def _simple_stmt(self, ints: list[str], floats: list[str],
                     targets: list[str]) -> None:
        knobs = self.knobs
        if knobs.float_ops and floats and self._chance(knobs.float_ops):
            target = floats[self.rng.below(len(floats))]
            self._put(f"{target} = {self._float_expr(floats, ints)};")
            return
        if knobs.chase_ratio and self._chance(knobs.chase_ratio):
            array = self.rng.below(knobs.arrays)
            self._put(f"cur = arr{array}[cur & {ARRAY_MASK}]"
                      f" & {ARRAY_MASK};")
            return
        roll = self.rng.below(8)
        if roll < 2:
            array = self.rng.below(knobs.arrays)
            index = self._leaf(ints)
            value = self._int_expr(ints)
            self._put(f"arr{array}[({index}) & {ARRAY_MASK}]"
                      f" = {value};")
            return
        target = targets[self.rng.below(len(targets))]
        if roll < 4:
            op = ("+=", "-=", "^=", "|=", "&=")[self.rng.below(5)]
            self._put(f"{target} {op} {self._int_expr(ints, 1)};")
            return
        if roll < 5 and knobs.call_depth and knobs.funcs:
            callee = self.rng.below(min(knobs.funcs, 2))
            a = self._int_expr(ints, 1)
            b = self._leaf(ints)
            self._put(f"{target} = f{callee}({a}, {b});")
            return
        self._put(f"{target} = {self._int_expr(ints)};")

    def _if_stmt(self, depth: int, loop_level: int, ints: list[str],
                 floats: list[str], targets: list[str],
                 in_for: bool) -> None:
        self._put(f"if ({self._cond_expr(ints)}) {{")
        self.indent += 1
        if in_for and self.rng.below(8) == 0:
            self._put("continue;")
        else:
            self._block(depth + 1, loop_level, ints, floats, targets,
                        in_for, count=2)
        self.indent -= 1
        if self._chance(4):
            self._put("} else {")
            self.indent += 1
            self._block(depth + 1, loop_level, ints, floats, targets,
                        in_for, count=2)
            self.indent -= 1
        self._put("}")

    def _switch_stmt(self, depth: int, loop_level: int, ints: list[str],
                     floats: list[str], targets: list[str]) -> None:
        arms = self.rng.word(2, 4)
        self._put(f"switch (({self._int_expr(ints, 1)}) & 3) {{")
        for value in range(arms):
            self._put(f"case {value}:")
            self.indent += 1
            self._simple_stmt(ints, floats, targets)
            self._put("break;")
            self.indent -= 1
        self._put("default:")
        self.indent += 1
        self._simple_stmt(ints, floats, targets)
        self._put("break;")
        self.indent -= 1
        self._put("}")

    def _loop_stmt(self, depth: int, loop_level: int, ints: list[str],
                   floats: list[str], targets: list[str]) -> None:
        counter = f"i{loop_level}"
        trip = self.rng.word(2, 4) if loop_level > 1 else self.rng.word(3, 6)
        body_ints = ints + [counter]
        if self._chance(6):
            self._put(f"for ({counter} = 0; {counter} < {trip}; "
                      f"{counter}++) {{")
            self.indent += 1
            self._block(depth + 1, loop_level + 1, body_ints, floats,
                        targets, in_for=True)
            self.indent -= 1
            self._put("}")
        else:
            self._put(f"{counter} = 0;")
            self._put(f"do {{")
            self.indent += 1
            self._block(depth + 1, loop_level + 1, body_ints, floats,
                        targets, in_for=False)
            self._put(f"{counter}++;")
            self.indent -= 1
            self._put(f"}} while ({counter} < {trip});")

    def _block(self, depth: int, loop_level: int, ints: list[str],
               floats: list[str], targets: list[str], in_for: bool,
               count: int | None = None) -> None:
        knobs = self.knobs
        statements = count if count is not None else knobs.stmts_per_block
        loop_done = False
        for __ in range(statements):
            if depth < self.max_depth and self._chance(knobs.branch_density):
                self._if_stmt(depth, loop_level, ints, floats, targets,
                              in_for)
                continue
            if depth < self.max_depth and self._chance(knobs.switch_density):
                self._switch_stmt(depth, loop_level, ints, floats, targets)
                continue
            if (not loop_done and loop_level < knobs.loop_depth
                    and depth < self.max_depth and self._chance(3)):
                self._loop_stmt(depth, loop_level, ints, floats, targets)
                loop_done = True
                continue
            self._simple_stmt(ints, floats, targets)

    # -- helper functions ----------------------------------------------

    def _helper(self, index: int) -> None:
        knobs = self.knobs
        self._put(f"int f{index}(int a, int b) {{")
        self.indent += 1
        ints = ["a", "b", "t0"]
        self._put(f"int t0 = {self._int_expr(['a', 'b'], 1)};")
        self._put(f"int t1 = {self._int_expr(['a', 'b', 't0'], 1)};")
        for __ in range(self.rng.word(1, 3)):
            if self._chance(knobs.branch_density):
                self._put(f"if ({self._cond_expr(ints)}) {{")
                self.indent += 1
                self._put(f"t1 = {self._int_expr(ints, 1)};")
                self.indent -= 1
                self._put("} else {")
                self.indent += 1
                self._put(f"t1 ^= {self._int_expr(ints, 1)};")
                self.indent -= 1
                self._put("}")
            else:
                op = ("+=", "^=", "-=")[self.rng.below(3)]
                self._put(f"t1 {op} {self._int_expr(ints, 1)};")
        chains = index + 1 < min(knobs.funcs, knobs.call_depth)
        if chains:
            a = self._int_expr(ints, 1)
            self._put(f"return t1 + f{index + 1}(({a}) & 65535, t0);")
        else:
            self._put(f"return (t1 ^ t0) & 0xFFFFFF;")
        self.indent -= 1
        self._put("}")
        self._put("")

    # -- top level -----------------------------------------------------

    def emit(self) -> str:
        knobs = self.knobs
        self._header()
        for array in range(knobs.arrays):
            self._put(f"int arr{array}[{ARRAY_SIZE}];")
        if knobs.float_ops:
            self._put(f"float farr0[{ARRAY_SIZE}];")
        self._put("")
        if knobs.call_depth:
            for index in reversed(range(knobs.funcs)):
                self._helper(index)
        self._main()
        return "\n".join(self.lines) + "\n"

    def _header(self) -> None:
        knobs_desc = " ".join(
            f"{f.name}={getattr(self.knobs, f.name)}"
            for f in fields(self.knobs)
        )
        self._put("// synthesized by repro.gen -- do not edit;")
        self._put("// regenerate from the provenance line below.")
        if self.name:
            self._put(f"// name: {self.name}")
        self._put(f"// seed: {self.seed}")
        self._put(f"// knobs: {knobs_desc}")
        self._put("")

    def _main(self) -> None:
        knobs = self.knobs
        self._put("int main(void) {")
        self.indent += 1
        self._put("int n = input_word(0);")
        self._put("int acc = 0;")
        self._put(f"int cur = input_word(1) & {ARRAY_MASK};")
        for var in range(_N_VARS):
            self._put(f"int v{var} = input_word({var + 2}) & 65535;")
        for counter in range(max(1, knobs.loop_depth)):
            self._put(f"int i{counter} = 0;")
        floats: list[str] = []
        if knobs.float_ops:
            floats = ["x0", "x1"]
            self._put("float x0 = 0.25;")
            self._put("float x1 = 1.5;")
        self._put("")
        for array in range(knobs.arrays):
            base = 1 + array * ARRAY_SIZE
            self._put(f"for (i0 = 0; i0 < {ARRAY_SIZE}; i0++) {{")
            self.indent += 1
            self._put(f"arr{array}[i0] = input_word({base} + i0)"
                      " & 65535;")
            self.indent -= 1
            self._put("}")
        if knobs.float_ops:
            self._put(f"for (i0 = 0; i0 < {ARRAY_SIZE}; i0++) {{")
            self.indent += 1
            self._put("farr0[i0] = input_float(i0);")
            self.indent -= 1
            self._put("}")
        self._put("")
        ints = ["cur"] + [f"v{v}" for v in range(_N_VARS)]
        targets = [f"v{v}" for v in range(_N_VARS)] + ["acc"]
        self._put("for (i0 = 0; i0 < n; i0++) {")
        self.indent += 1
        self._block(1, 1, ints + ["i0"], floats, targets, in_for=True)
        self._put("acc += (v0 ^ v1) + (v2 ^ v3) + cur;")
        self.indent -= 1
        self._put("}")
        self._put("")
        self._put("print_int(acc ^ ((v0 + v2) & 0xFFFFFF));")
        if knobs.float_ops:
            self._put("print_float(x0 + x1);")
        self._put("return 0;")
        self.indent -= 1
        self._put("}")
