"""Seeded synthesis of mini-C workloads.

The paper studies predictability over a fixed SPEC95 suite; this
package provides the complementary axis: *families* of programs whose
structural properties — loop-nest depth, branch density, immediate
mix, pointer-chase intensity, call depth — are knobs rather than
accidents of the benchmark set.  Every program is produced by a
grammar-directed emitter driven entirely by the repo's deterministic
:class:`repro.workloads.inputs.Rng`, so a ``(preset, seed, overrides)``
triple reproduces the same source text byte for byte, on any machine,
in any process.

Generated programs are first-class workloads: the name
``gen:<preset>@<seed>`` (optionally ``:knob=value,...``) resolves
through :func:`repro.workloads.get_workload` like any suite member,
which means the two-tier runner cache, the parallel pool workers and
the campaign engine all work on them unchanged.

Entry points:

* :func:`generate_source` — knobs + seed -> mini-C text.
* :func:`generated_workload` — ``gen:`` name -> a registered-style
  :class:`~repro.workloads.suite.Workload`.
* :func:`parse_gen_name` / :func:`canonical_gen_name` — the name
  grammar.
* :func:`shrink` / :func:`save_triage` — minimise and persist sources
  that expose toolchain bugs (used by the fuzz harness).
"""

from repro.gen.knobs import (
    GenKnobs,
    PRESETS,
    canonical_gen_name,
    knobs_for,
    parse_gen_name,
)
from repro.gen.emitter import generate_source
from repro.gen.shrink import save_triage, shrink
from repro.gen.workload import GeneratedWorkload, generated_workload

__all__ = [
    "GenKnobs",
    "GeneratedWorkload",
    "PRESETS",
    "canonical_gen_name",
    "generate_source",
    "generated_workload",
    "knobs_for",
    "parse_gen_name",
    "save_triage",
    "shrink",
]
