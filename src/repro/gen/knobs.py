"""Generator knobs, presets and the ``gen:`` name grammar.

A generated workload is identified by a name of the form::

    gen:<preset>@<seed>
    gen:<preset>@<seed>:knob=value,knob=value

The canonical form sorts override keys, so two names describing the
same program compare equal after :func:`canonical_gen_name`.  The name
*is* the provenance: everything needed to rebuild the program byte for
byte is in it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields, replace

#: (lo, hi) inclusive bounds per knob; densities are eighths.
_KNOB_BOUNDS: dict[str, tuple[int, int]] = {
    "loop_depth": (1, 4),
    "branch_density": (0, 8),
    "imm_mix": (0, 8),
    "chase_ratio": (0, 8),
    "call_depth": (0, 3),
    "arrays": (1, 4),
    "stmts_per_block": (2, 12),
    "float_ops": (0, 8),
    "switch_density": (0, 8),
    "funcs": (1, 4),
}


@dataclass(frozen=True, slots=True)
class GenKnobs:
    """Structural parameters of a synthesized program.

    Densities (``branch_density``, ``imm_mix``, ``chase_ratio``,
    ``float_ops``, ``switch_density``) are eighths: 0 = never,
    8 = always, matching the bias convention of
    :func:`repro.workloads.inputs.bytes_with_runs`.
    """

    #: maximum loop-nest depth (1..4)
    loop_depth: int = 2
    #: probability/8 that a block statement is an ``if``
    branch_density: int = 3
    #: probability/8 that a binary operand is an immediate
    imm_mix: int = 4
    #: probability/8 that an array access is a pointer chase step
    chase_ratio: int = 0
    #: depth of the helper-function call chain (0..3)
    call_depth: int = 1
    #: number of global data arrays (1..4)
    arrays: int = 2
    #: statements per generated block (2..12)
    stmts_per_block: int = 5
    #: probability/8 that arithmetic is floating point
    float_ops: int = 0
    #: probability/8 that a block statement is a ``switch``
    switch_density: int = 0
    #: number of helper functions to draw calls from (1..4)
    funcs: int = 2

    def validate(self) -> None:
        for name, (lo, hi) in _KNOB_BOUNDS.items():
            value = getattr(self, name)
            if not isinstance(value, int) or not lo <= value <= hi:
                raise ValueError(
                    f"knob {name}={value!r} out of range [{lo}, {hi}]"
                )

    def overrides_from(self, base: "GenKnobs") -> dict[str, int]:
        """The knobs on which ``self`` differs from ``base``."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) != getattr(base, f.name)
        }


#: Named starting points covering the structural corners the paper's
#: workload taxonomy cares about.  ``graph-walk`` and ``pointer-chase``
#: stress the hardest-to-predict load-address behaviour; ``arith`` is
#: the immediate-heavy, highly predictable opposite corner.
PRESETS: dict[str, GenKnobs] = {
    "loopy": GenKnobs(loop_depth=4, branch_density=1, imm_mix=5,
                      stmts_per_block=4),
    "branchy": GenKnobs(loop_depth=2, branch_density=7, switch_density=3,
                        imm_mix=3),
    "arith": GenKnobs(loop_depth=1, branch_density=1, imm_mix=8,
                      stmts_per_block=10, call_depth=0, funcs=1),
    "pointer-chase": GenKnobs(loop_depth=1, branch_density=1, chase_ratio=8,
                              imm_mix=2, arrays=2, call_depth=0, funcs=1),
    "graph-walk": GenKnobs(loop_depth=2, branch_density=5, chase_ratio=6,
                           imm_mix=2, arrays=3),
    "callgraph": GenKnobs(loop_depth=2, branch_density=3, call_depth=3,
                          funcs=4, stmts_per_block=4),
    "float-kernel": GenKnobs(loop_depth=3, branch_density=2, float_ops=8,
                             imm_mix=4, call_depth=0, funcs=1),
    "mixed": GenKnobs(loop_depth=3, branch_density=4, imm_mix=4,
                      chase_ratio=3, switch_density=2),
}

_NAME_RE = re.compile(
    r"^gen:(?P<preset>[a-z][a-z0-9-]*)@(?P<seed>\d+)"
    r"(?::(?P<overrides>[a-z_]+=\d+(?:,[a-z_]+=\d+)*))?$"
)

#: Generated seeds live in a bounded space so names stay short and the
#: campaign grid axes are enumerable.
MAX_SEED = 10**9


def parse_gen_name(name: str) -> tuple[str, int, dict[str, int]]:
    """Split ``gen:<preset>@<seed>[:k=v,...]`` into its parts.

    Raises:
        ValueError: malformed name, unknown preset or knob, seed or
            knob value out of range.
    """
    match = _NAME_RE.match(name)
    if match is None:
        raise ValueError(
            f"malformed generated-workload name {name!r}; expected "
            "gen:<preset>@<seed>[:knob=value,...]"
        )
    preset = match.group("preset")
    if preset not in PRESETS:
        raise ValueError(
            f"unknown preset {preset!r}; known: "
            f"{', '.join(sorted(PRESETS))}"
        )
    seed = int(match.group("seed"))
    if seed >= MAX_SEED:
        raise ValueError(f"seed {seed} out of range [0, {MAX_SEED})")
    overrides: dict[str, int] = {}
    raw = match.group("overrides")
    if raw:
        for pair in raw.split(","):
            key, value = pair.split("=")
            if key not in _KNOB_BOUNDS:
                raise ValueError(
                    f"unknown knob {key!r}; known: "
                    f"{', '.join(sorted(_KNOB_BOUNDS))}"
                )
            if key in overrides:
                raise ValueError(f"duplicate knob {key!r} in {name!r}")
            overrides[key] = int(value)
    knobs_for(preset, overrides)  # bounds-check the combination
    return preset, seed, overrides


def knobs_for(preset: str, overrides: dict[str, int] | None = None
              ) -> GenKnobs:
    """The effective :class:`GenKnobs` for a preset plus overrides."""
    try:
        base = PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset!r}; known: "
            f"{', '.join(sorted(PRESETS))}"
        ) from None
    for key in overrides or {}:
        if key not in _KNOB_BOUNDS:
            raise ValueError(
                f"unknown knob {key!r}; known: "
                f"{', '.join(sorted(_KNOB_BOUNDS))}"
            )
    knobs = replace(base, **(overrides or {}))
    knobs.validate()
    return knobs


def canonical_gen_name(preset: str, seed: int,
                       overrides: dict[str, int] | None = None) -> str:
    """The canonical ``gen:`` name (override keys sorted).

    Overrides equal to the preset's own value are dropped, so the
    canonical name is minimal as well as sorted.
    """
    base = PRESETS.get(preset)
    if base is None:
        raise ValueError(f"unknown preset {preset!r}")
    if not 0 <= seed < MAX_SEED:
        raise ValueError(f"seed {seed} out of range [0, {MAX_SEED})")
    knobs_for(preset, overrides)  # key + bounds check before getattr
    effective = {
        key: value for key, value in sorted((overrides or {}).items())
        if getattr(base, key) != value
    }
    name = f"gen:{preset}@{seed}"
    if effective:
        pairs = ",".join(f"{k}={v}" for k, v in effective.items())
        name = f"{name}:{pairs}"
    return name
