"""Minimise mini-C sources that expose toolchain bugs.

When the fuzz harness finds a source on which the toolchain violates
its error contract (anything escaping that is not a
:class:`~repro.errors.MinicError`), the interesting artefact is the
*smallest* such source.  :func:`shrink` is a line-granular
delta-debugger: it repeatedly removes chunks of lines, halving the
chunk size when no removal reproduces, until the source is 1-minimal
with respect to whole lines.  :func:`save_triage` persists the result
where a human will find it (``reports/triage/``).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Callable

#: Hard cap on predicate evaluations, so shrinking a pathological
#: input cannot hang a fuzz run.
MAX_PROBES = 2000


def shrink(source: str, predicate: Callable[[str], bool]) -> str:
    """Return a smaller source on which ``predicate`` still holds.

    ``predicate(source)`` must be True on entry; the result is
    guaranteed to satisfy it too.  The predicate must be deterministic
    (compile attempts are; anything time-dependent is not).
    """
    if not predicate(source):
        raise ValueError("predicate does not hold on the input source")
    lines = source.split("\n")
    probes = 0
    chunk = max(1, len(lines) // 2)
    while chunk >= 1 and probes < MAX_PROBES:
        removed_any = False
        start = 0
        while start < len(lines) and probes < MAX_PROBES:
            candidate = lines[:start] + lines[start + chunk:]
            probes += 1
            if candidate and predicate("\n".join(candidate)):
                lines = candidate
                removed_any = True
                # re-test the same start: the next chunk slid into it
            else:
                start += chunk
        if not removed_any:
            chunk //= 2
    return "\n".join(lines)


def save_triage(source: str, error: BaseException,
                directory: str | Path = "reports/triage") -> Path:
    """Write a failing source (plus the error) for later triage.

    The file name is content-derived, so re-running the fuzzer on the
    same failure overwrites rather than accumulates.  Returns the path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    digest = hashlib.sha256(source.encode()).hexdigest()[:12]
    path = directory / f"minic-{digest}.mc"
    header = (
        f"// triage: {type(error).__name__}: {error}\n"
        "// minimised by repro.gen.shrink; reproduce with\n"
        "//   repro.minic.compile_program(path.read_text())\n"
    )
    path.write_text(header + source)
    return path
