"""Generated programs as first-class workloads.

A :class:`GeneratedWorkload` is a :class:`~repro.workloads.suite.Workload`
whose source text comes from the emitter instead of a ``.mc`` file.
Because the runner's job and trace keys hash ``source_hash()`` and the
input streams — never a file path — a generated workload flows through
the two-tier cache, the parallel pool and the campaign engine exactly
like a suite member.  The name (``gen:<preset>@<seed>[:k=v,...]``)
carries the full provenance, so a pool worker in a fresh process can
rebuild the identical program from the name alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.gen.emitter import generate_source, input_layout
from repro.gen.knobs import (
    GenKnobs,
    canonical_gen_name,
    knobs_for,
    parse_gen_name,
)
from repro.workloads import inputs
from repro.workloads.suite import Workload

#: Outer-loop trips per unit of ``scale``; sized so a scale-1 run lands
#: in the same 1e5-dynamic-instruction regime as the fixed suite.
TRIPS_PER_SCALE = 24


@dataclass
class GeneratedWorkload(Workload):
    """A workload synthesized from ``(preset, seed, overrides)``."""

    preset: str = ""
    seed: int = 0
    knobs: GenKnobs = field(default_factory=GenKnobs)
    _source_text: str | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def source_path(self) -> Path:
        raise NotImplementedError(
            f"{self.name} is synthesized; it has no source file "
            "(use .source())"
        )

    def source(self) -> str:
        """The generated mini-C text (emitted once, then cached)."""
        if self._source_text is None:
            self._source_text = generate_source(
                self.knobs, self.seed, name=self.name
            )
        return self._source_text


def _make_input_maker(knobs: GenKnobs, seed: int):
    words_needed, floats_needed = input_layout(knobs)

    def make_inputs(scale: int):
        trips = TRIPS_PER_SCALE * scale
        stream = inputs.words(words_needed, 0, 0xFFFF, seed=seed ^ 0xDA7A)
        fps = (
            inputs.floats(floats_needed, -1.0, 1.0, seed=seed ^ 0xF10A7)
            if floats_needed else []
        )
        return [trips] + stream, fps

    return make_inputs


_MEMO: dict[str, GeneratedWorkload] = {}


def generated_workload(name: str) -> GeneratedWorkload:
    """Resolve a ``gen:`` name to a (memoised) workload.

    Raises:
        ValueError: malformed name / unknown preset / bad knobs.
    """
    preset, seed, overrides = parse_gen_name(name)
    canonical = canonical_gen_name(preset, seed, overrides)
    cached = _MEMO.get(canonical)
    if cached is not None:
        return cached
    knobs = knobs_for(preset, overrides)
    workload = GeneratedWorkload(
        name=canonical,
        spec_name=canonical,
        kind="fp" if knobs.float_ops else "int",
        description=f"synthesized {preset} program, seed {seed}",
        make_inputs=_make_input_maker(knobs, seed),
        preset=preset,
        seed=seed,
        knobs=knobs,
    )
    _MEMO[canonical] = workload
    return workload
