"""Register-file naming for the MIPS-like ISA.

Integer registers occupy numbers 0..31 and floating-point registers
32..63.  A single flat numbering keeps dependence tracking in the
simulator uniform: every producer/consumer slot is just an integer.
"""

from __future__ import annotations

#: Number of architectural registers (32 integer + 32 floating point).
NUM_REGS = 64

#: First floating-point register number in the flat numbering.
FP_REG_BASE = 32

# Conventional MIPS integer register assignments.
REG_ZERO = 0
REG_AT = 1
REG_V0 = 2
REG_V1 = 3
REG_A0 = 4
REG_A1 = 5
REG_A2 = 6
REG_A3 = 7
REG_GP = 28
REG_SP = 29
REG_FP = 30
REG_RA = 31

_INT_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

_NAME_TO_NUMBER = {name: index for index, name in enumerate(_INT_NAMES)}
# Numeric aliases: $0 .. $31.
_NAME_TO_NUMBER.update({str(index): index for index in range(32)})
# Floating-point registers: $f0 .. $f31.
_NAME_TO_NUMBER.update({f"f{index}": FP_REG_BASE + index for index in range(32)})


def register_number(name: str) -> int:
    """Return the flat register number for ``name``.

    ``name`` may include the leading ``$`` and may be a symbolic name
    (``$t0``), a plain number (``$8``), or a floating-point register
    (``$f2``).

    Raises:
        KeyError: if the name is not a valid register.
    """
    stripped = name[1:] if name.startswith("$") else name
    return _NAME_TO_NUMBER[stripped]


def register_name(number: int) -> str:
    """Return the canonical ``$``-prefixed name for register ``number``."""
    if 0 <= number < FP_REG_BASE:
        return "$" + _INT_NAMES[number]
    if FP_REG_BASE <= number < NUM_REGS:
        return f"$f{number - FP_REG_BASE}"
    raise ValueError(f"register number out of range: {number}")


def is_fp_reg(number: int) -> bool:
    """Return True if ``number`` names a floating-point register."""
    return FP_REG_BASE <= number < NUM_REGS


def fp_reg(index: int) -> int:
    """Return the flat number of floating-point register ``$f<index>``."""
    if not 0 <= index < 32:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_REG_BASE + index
