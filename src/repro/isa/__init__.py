"""Instruction-set definition for the MIPS-like tracing substrate.

The paper's model consumes a dynamic dependence trace produced by a
SimpleScalar (PISA) simulator.  This package defines the equivalent ISA
used by :mod:`repro.asm`, :mod:`repro.cpu` and :mod:`repro.minic`: a
32-bit RISC instruction set with 32 integer registers, 32 floating-point
registers, immediate-form ALU operations, loads/stores, conditional
branches, and direct/indirect jumps.
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    Category,
    OpSpec,
    OPCODES,
    opcode_spec,
)
from repro.isa.registers import (
    FP_REG_BASE,
    NUM_REGS,
    REG_A0,
    REG_AT,
    REG_FP,
    REG_GP,
    REG_RA,
    REG_SP,
    REG_V0,
    REG_ZERO,
    fp_reg,
    is_fp_reg,
    register_name,
    register_number,
)

__all__ = [
    "Category",
    "FP_REG_BASE",
    "Instruction",
    "NUM_REGS",
    "OPCODES",
    "OpSpec",
    "REG_A0",
    "REG_AT",
    "REG_FP",
    "REG_GP",
    "REG_RA",
    "REG_SP",
    "REG_V0",
    "REG_ZERO",
    "fp_reg",
    "is_fp_reg",
    "opcode_spec",
    "register_name",
    "register_number",
]
