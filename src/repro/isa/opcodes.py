"""Opcode table for the MIPS-like ISA.

Each opcode carries an :class:`OpSpec` describing its assembly format
and its dynamic category.  The category drives both the executor
dispatch and the predictability model's special-case rules (memory
instructions and register-indirect jumps pass predictability through;
conditional branches are predicted by gshare; direct jumps carry no
predictable output).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Category(enum.IntEnum):
    """Dynamic instruction category."""

    ALU = 0        #: register/immediate computation producing a register value
    LOAD = 1       #: memory read; output passes through the memory data input
    STORE = 2      #: memory write; "output" is the stored value (pass-through)
    BRANCH = 3     #: conditional branch; output is the taken/not-taken direction
    JUMP = 4       #: direct unconditional jump; no predictable output
    CALL = 5       #: direct call (jal); produces the link address
    JUMP_REG = 6   #: register-indirect jump (jr/jalr); target passes through
    SYSCALL = 7    #: system call; consumer-only node (prints, input, exit)
    NOP = 8        #: no effect; still a trace node


class Format(enum.Enum):
    """Assembly operand format, used by the assembler parser."""

    RRR = "rd, rs, rt"            # add $1,$2,$3
    RRI = "rt, rs, imm"           # addiu $1,$2,100 / sll $1,$2,5
    LUI = "rt, imm"               # lui $1,0x1000
    MEM = "rt, off(rs)"           # lw / sw and byte/half variants
    BRANCH2 = "rs, rt, label"     # beq / bne
    BRANCH1 = "rs, label"         # blez / bgtz / bltz / bgez
    JUMP = "label"                # j / jal
    JR = "rs"                     # jr
    JALR = "rs"                   # jalr (writes $ra)
    FRRR = "fd, fs, ft"           # add.d
    FRR = "fd, fs"                # neg.d / mov.d / sqrt.d
    FCMP = "rd, fs, ft"           # fslt (int result)
    ITOF = "fd, rs"               # int -> float convert
    FTOI = "rd, fs"               # float -> int convert (truncate)
    FMEM = "ft, off(rs)"          # l.d / s.d
    NONE = ""                     # nop / halt / syscall


@dataclass(frozen=True, slots=True)
class OpSpec:
    """Static description of one opcode."""

    name: str
    fmt: Format
    category: Category
    #: True when the instruction writes a destination register.
    writes_dest: bool = True
    #: True when the *semantics* use the immediate field.
    uses_imm: bool = False


def _spec(name, fmt, category, writes_dest=True, uses_imm=False):
    return OpSpec(name, fmt, category, writes_dest, uses_imm)


_SPEC_LIST = [
    # Integer three-register ALU.
    _spec("add", Format.RRR, Category.ALU),
    _spec("addu", Format.RRR, Category.ALU),
    _spec("sub", Format.RRR, Category.ALU),
    _spec("subu", Format.RRR, Category.ALU),
    _spec("and", Format.RRR, Category.ALU),
    _spec("or", Format.RRR, Category.ALU),
    _spec("xor", Format.RRR, Category.ALU),
    _spec("nor", Format.RRR, Category.ALU),
    _spec("slt", Format.RRR, Category.ALU),
    _spec("sltu", Format.RRR, Category.ALU),
    _spec("sllv", Format.RRR, Category.ALU),
    _spec("srlv", Format.RRR, Category.ALU),
    _spec("srav", Format.RRR, Category.ALU),
    _spec("mul", Format.RRR, Category.ALU),
    _spec("div", Format.RRR, Category.ALU),
    _spec("divu", Format.RRR, Category.ALU),
    _spec("rem", Format.RRR, Category.ALU),
    _spec("remu", Format.RRR, Category.ALU),
    # Integer register-immediate ALU (includes shift-by-amount forms).
    _spec("addi", Format.RRI, Category.ALU, uses_imm=True),
    _spec("addiu", Format.RRI, Category.ALU, uses_imm=True),
    _spec("andi", Format.RRI, Category.ALU, uses_imm=True),
    _spec("ori", Format.RRI, Category.ALU, uses_imm=True),
    _spec("xori", Format.RRI, Category.ALU, uses_imm=True),
    _spec("slti", Format.RRI, Category.ALU, uses_imm=True),
    _spec("sltiu", Format.RRI, Category.ALU, uses_imm=True),
    _spec("sll", Format.RRI, Category.ALU, uses_imm=True),
    _spec("srl", Format.RRI, Category.ALU, uses_imm=True),
    _spec("sra", Format.RRI, Category.ALU, uses_imm=True),
    _spec("lui", Format.LUI, Category.ALU, uses_imm=True),
    # Memory.
    _spec("lw", Format.MEM, Category.LOAD, uses_imm=True),
    _spec("lb", Format.MEM, Category.LOAD, uses_imm=True),
    _spec("lbu", Format.MEM, Category.LOAD, uses_imm=True),
    _spec("lh", Format.MEM, Category.LOAD, uses_imm=True),
    _spec("lhu", Format.MEM, Category.LOAD, uses_imm=True),
    _spec("sw", Format.MEM, Category.STORE, writes_dest=False, uses_imm=True),
    _spec("sb", Format.MEM, Category.STORE, writes_dest=False, uses_imm=True),
    _spec("sh", Format.MEM, Category.STORE, writes_dest=False, uses_imm=True),
    # Conditional branches.
    _spec("beq", Format.BRANCH2, Category.BRANCH, writes_dest=False),
    _spec("bne", Format.BRANCH2, Category.BRANCH, writes_dest=False),
    _spec("blez", Format.BRANCH1, Category.BRANCH, writes_dest=False),
    _spec("bgtz", Format.BRANCH1, Category.BRANCH, writes_dest=False),
    _spec("bltz", Format.BRANCH1, Category.BRANCH, writes_dest=False),
    _spec("bgez", Format.BRANCH1, Category.BRANCH, writes_dest=False),
    # Jumps.
    _spec("j", Format.JUMP, Category.JUMP, writes_dest=False),
    _spec("jal", Format.JUMP, Category.CALL),
    _spec("jr", Format.JR, Category.JUMP_REG, writes_dest=False),
    _spec("jalr", Format.JALR, Category.JUMP_REG),
    # Floating point (double precision model; registers hold Python floats).
    _spec("add.d", Format.FRRR, Category.ALU),
    _spec("sub.d", Format.FRRR, Category.ALU),
    _spec("mul.d", Format.FRRR, Category.ALU),
    _spec("div.d", Format.FRRR, Category.ALU),
    _spec("neg.d", Format.FRR, Category.ALU),
    _spec("mov.d", Format.FRR, Category.ALU),
    _spec("abs.d", Format.FRR, Category.ALU),
    _spec("sqrt.d", Format.FRR, Category.ALU),
    _spec("fslt", Format.FCMP, Category.ALU),
    _spec("fsle", Format.FCMP, Category.ALU),
    _spec("fseq", Format.FCMP, Category.ALU),
    _spec("itof", Format.ITOF, Category.ALU),
    _spec("ftoi", Format.FTOI, Category.ALU),
    _spec("l.d", Format.FMEM, Category.LOAD, uses_imm=True),
    _spec("s.d", Format.FMEM, Category.STORE, writes_dest=False, uses_imm=True),
    # System.
    _spec("nop", Format.NONE, Category.NOP, writes_dest=False),
    _spec("halt", Format.NONE, Category.SYSCALL, writes_dest=False),
    _spec("syscall", Format.NONE, Category.SYSCALL, writes_dest=False),
]

#: Mapping of opcode mnemonic to its :class:`OpSpec`.
OPCODES: dict[str, OpSpec] = {spec.name: spec for spec in _SPEC_LIST}


def opcode_spec(name: str) -> OpSpec:
    """Return the :class:`OpSpec` for ``name``.

    Raises:
        KeyError: if the mnemonic is unknown.
    """
    return OPCODES[name]
