"""The decoded instruction record produced by the assembler.

Instructions are stored fully decoded: register operands as flat
register numbers (see :mod:`repro.isa.registers`), branch and jump
targets as absolute instruction indices, and immediates as plain Python
integers.  The simulator addresses instructions by index, so the
"program counter" in this codebase is an instruction index rather than
a byte address.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Category, OpSpec, opcode_spec
from repro.isa.registers import register_name


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded instruction.

    Attributes:
        op: opcode mnemonic (key into :data:`repro.isa.opcodes.OPCODES`).
        dest: destination register number, or None.
        src1: first source register number, or None.
        src2: second source register number, or None.  For stores this is
            the data register and ``src1`` is the address base register.
        imm: immediate value (ALU immediate, shift amount, or memory
            displacement), or None.
        target: absolute instruction index for branches and direct
            jumps, or None.
        text: original assembly text, for diagnostics and listings.
    """

    op: str
    dest: int | None = None
    src1: int | None = None
    src2: int | None = None
    imm: int | None = None
    target: int | None = None
    text: str = field(default="", compare=False)

    @property
    def spec(self) -> OpSpec:
        """The static :class:`OpSpec` for this opcode."""
        return opcode_spec(self.op)

    @property
    def category(self) -> Category:
        """Dynamic category of this instruction."""
        return opcode_spec(self.op).category

    def sources(self) -> tuple[int, ...]:
        """Register numbers read by this instruction, in operand order."""
        srcs = []
        if self.src1 is not None:
            srcs.append(self.src1)
        if self.src2 is not None:
            srcs.append(self.src2)
        return tuple(srcs)

    def render(self) -> str:
        """Render a canonical assembly string (ignores ``text``)."""
        spec = self.spec
        parts: list[str] = []
        if self.dest is not None and spec.category is not Category.STORE:
            parts.append(register_name(self.dest))
        if spec.category in (Category.LOAD, Category.STORE):
            data_reg = self.dest if spec.category is Category.LOAD else self.src2
            base = register_name(self.src1) if self.src1 is not None else "?"
            return f"{self.op} {register_name(data_reg)}, {self.imm}({base})"
        if self.src1 is not None:
            parts.append(register_name(self.src1))
        if self.src2 is not None:
            parts.append(register_name(self.src2))
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"@{self.target}")
        operands = ", ".join(parts)
        return f"{self.op} {operands}" if operands else self.op
