"""Memory layout and ABI conventions for the simulated machine.

The layout mirrors a classic MIPS user-space process image: a static
data segment, a downward-growing stack, and a dedicated region where
the harness places *program input data*.  Values read from the input
region (and static-data initial values) have no producing instruction,
so they appear in the dynamic prediction graph as ``D`` nodes.
"""

from __future__ import annotations

#: Base byte address of the static data segment (.data).
DATA_BASE = 0x1000_0000

#: Initial stack pointer; the stack grows down from here.
STACK_TOP = 0x7FFF_FFF0

#: Base byte address of the program-input region.  The machine loads
#: the workload's synthetic input words here before execution starts.
INPUT_BASE = 0x2000_0000

#: Word at this address holds the number of input words (also D data).
INPUT_LEN_ADDR = INPUT_BASE - 4

#: Base byte address of the floating-point program-input region
#: (8-byte cells).  Lets FP workloads scan genuine ``D`` data the way
#: the paper's FP benchmarks scan their input arrays.
INPUT_FLOAT_BASE = 0x2100_0000

#: Word holding the number of floating-point input values (also D data).
INPUT_FLOAT_LEN_ADDR = INPUT_FLOAT_BASE - 4

#: Syscall codes, passed in $v0.
SYS_PRINT_INT = 1
SYS_PRINT_FLOAT = 3
SYS_EXIT = 10
SYS_PRINT_CHAR = 11

#: Mask and helpers for 32-bit two's-complement arithmetic.
WORD_MASK = 0xFFFF_FFFF
SIGN_BIT = 0x8000_0000


def to_signed(word: int) -> int:
    """Interpret a 32-bit word as a signed integer."""
    word &= WORD_MASK
    return word - 0x1_0000_0000 if word & SIGN_BIT else word


def to_unsigned(value: int) -> int:
    """Wrap a Python integer to its 32-bit unsigned representation."""
    return value & WORD_MASK
