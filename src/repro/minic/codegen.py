"""Code generation for mini-C.

Emits assembly text for :mod:`repro.asm`.  The generated code has the
shape of optimised compiler output: scalar locals live in callee-saved
registers, immediates are folded into ALU instructions (``addiu``,
``andi``, ``slti``, shift-by-constant, constant displacements), loops
are bottom-tested, and expression temporaries live in caller-saved
``$t`` registers that are spilled only around calls.

Calling convention: up to four integer/pointer arguments in $a0–$a3 and
two float arguments in $f12/$f14; integer results in $v0, float results
in $f0; $ra/$fp plus any used $s/$f20+ registers saved in the frame.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.isa.layout import (
    INPUT_BASE,
    INPUT_FLOAT_BASE,
    INPUT_FLOAT_LEN_ADDR,
    INPUT_LEN_ADDR,
    STACK_TOP,
    SYS_EXIT,
    SYS_PRINT_CHAR,
    SYS_PRINT_FLOAT,
    SYS_PRINT_INT,
)
from repro.isa.registers import register_name
from repro.minic import astnodes as ast
from repro.minic.sema import BUILTINS, FuncInfo, SemaResult, Symbol
from repro.minic.types import CHAR, FLOAT, INT, Type

#: Caller-saved integer temporaries ($t0..$t9).
INT_TEMPS = (8, 9, 10, 11, 12, 13, 14, 15, 24, 25)
#: Caller-saved floating-point temporaries.
FP_TEMPS = (36, 38, 40, 42, 48, 50)  # $f4 $f6 $f8 $f10 $f16 $f18

_A0, _A1, _A2, _A3 = 4, 5, 6, 7
_V0, _V1 = 2, 3
_F0, _F12, _F14 = 32, 44, 46

_INT_BINOPS = {
    "+": "addu", "-": "subu", "*": "mul", "/": "div", "%": "rem",
    "&": "and", "|": "or", "^": "xor", "<<": "sllv", ">>": "srav",
}
_FLOAT_BINOPS = {"+": "add.d", "-": "sub.d", "*": "mul.d", "/": "div.d"}
#: op -> (immediate mnemonic, unsigned-range immediate?) for folding.
_IMM_BINOPS = {
    "+": ("addiu", False), "&": ("andi", True), "|": ("ori", True),
    "^": ("xori", True),
}


class _Location:
    """Where an lvalue lives: a register, a frame slot, a global label,
    or a computed memory address held in a temp register."""

    __slots__ = ("kind", "reg", "offset", "label", "ty")

    def __init__(self, kind, ty, reg=None, offset=None, label=None):
        self.kind = kind        # "reg" | "frame" | "global" | "mem"
        self.ty = ty            # type of the stored value
        self.reg = reg          # register (reg) or address register (mem)
        self.offset = offset    # frame offset, or displacement for mem
        self.label = label


class FunctionCodegen:
    """Generates assembly for one function."""

    def __init__(self, module: "ModuleCodegen", info: FuncInfo):
        self.module = module
        self.info = info
        self.lines: list[str] = []
        self._int_pool = list(INT_TEMPS)
        self._fp_pool = list(FP_TEMPS)
        self._live: list[int] = []
        self._label_count = 0
        self._loop_stack: list[tuple[str, str]] = []  # (continue, break)

    # ------------------------------------------------------------------
    # Emission helpers.
    # ------------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("        " + text)

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str = "L") -> str:
        self._label_count += 1
        return f".{self.info.name}_{hint}{self._label_count}"

    # ------------------------------------------------------------------
    # Temporary registers.
    # ------------------------------------------------------------------

    def alloc(self, is_float: bool) -> int:
        pool = self._fp_pool if is_float else self._int_pool
        if not pool:
            raise CompileError(
                f"{self.info.name}: expression too deep "
                "(out of temporary registers)"
            )
        reg = pool.pop(0)
        self._live.append(reg)
        return reg

    def free(self, reg: int | None) -> None:
        if reg is None:
            return
        self._live.remove(reg)
        if reg in FP_TEMPS:
            self._fp_pool.insert(0, reg)
        elif reg in INT_TEMPS:
            self._int_pool.insert(0, reg)
        else:
            raise AssertionError(f"freeing non-temporary register {reg}")

    def _is_fp(self, reg: int) -> bool:
        return reg >= 32

    # ------------------------------------------------------------------
    # Function body.
    # ------------------------------------------------------------------

    def run(self) -> list[str]:
        self._prologue()
        for stmt in self.info.node.body.stmts:
            self.gen_stmt(stmt)
        if self.info.name == "main" and not self.info.ret.is_void:
            self.emit("li $v0, 0")  # implicit return 0 from main
        self.emit_label(self._return_label())
        self._epilogue()
        return self.lines

    def _return_label(self) -> str:
        return f".{self.info.name}_ret"

    def _save_slots(self):
        """(register, frame offset, is_float) for the frame's save area."""
        frame = self.info.frame_size
        slots = [(31, frame - 4, False), (30, frame - 8, False)]  # $ra, $fp
        cursor = frame - 8
        for reg in self.info.used_s_regs:
            cursor -= 4
            slots.append((reg, cursor, False))
        cursor -= cursor & 4  # 8-align the fp save slots
        for reg in self.info.used_f_regs:
            cursor -= 8
            slots.append((reg, cursor, True))
        return slots

    def _prologue(self) -> None:
        self.emit_label(self.info.name)
        frame = self.info.frame_size
        self.emit(f"addiu $sp, $sp, -{frame}")
        for reg, offset, is_float in self._save_slots():
            op = "s.d" if is_float else "sw"
            self.emit(f"{op} {register_name(reg)}, {offset}($sp)")
        self.emit("move $fp, $sp")
        for key, reg in self.info.const_regs.items():
            kind = key[0]
            name = register_name(reg)
            if kind == "ga":
                self.emit(f"la {name}, {key[1]}")
            elif kind == "int":
                self.emit(f"li {name}, {key[1]}")
            else:  # float
                self.emit(f"l.d {name}, {self.module.float_label(key[1])}")
        int_index = 0
        float_index = 0
        for symbol in self.info.params:
            if symbol.ty.is_float:
                src = (_F12, _F14)[float_index]
                float_index += 1
            else:
                src = (_A0, _A1, _A2, _A3)[int_index]
                int_index += 1
            self._store_location(self._symbol_location(symbol), src)

    def _epilogue(self) -> None:
        for reg, offset, is_float in self._save_slots():
            op = "l.d" if is_float else "lw"
            self.emit(f"{op} {register_name(reg)}, {offset}($sp)")
        self.emit(f"addiu $sp, $sp, {self.info.frame_size}")
        self.emit("jr $ra")

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self.gen_stmt(child)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self.gen_stmt(decl)
        elif isinstance(stmt, ast.Decl):
            if stmt.init is not None:
                value = self.gen_expr(stmt.init)
                value = self._coerce(value, stmt.init.ty, stmt.ty)
                self._store_location(self._symbol_location(stmt.sym), value)
                self.free(value)
        elif isinstance(stmt, ast.ExprStmt):
            self.free(self.gen_expr(stmt.expr, want_value=False))
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, ast.Break):
            self.emit(f"b {self._loop_stack[-1][1]}")
        elif isinstance(stmt, ast.Continue):
            target = next(
                cont for cont, __ in reversed(self._loop_stack)
                if cont is not None
            )
            self.emit(f"b {target}")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.gen_expr(stmt.value)
                value = self._coerce(value, stmt.value.ty, self.info.ret)
                if self.info.ret.is_float:
                    self.emit(f"mov.d $f0, {register_name(value)}")
                else:
                    self.emit(f"move $v0, {register_name(value)}")
                self.free(value)
            self.emit(f"b {self._return_label()}")
        else:
            raise CompileError(
                f"unhandled statement {type(stmt).__name__}", stmt.line
            )

    def _branch_if_false(self, cond: ast.Expr, label: str) -> None:
        self._gen_branch(cond, label, when_true=False)

    def _branch_if_true(self, cond: ast.Expr, label: str) -> None:
        self._gen_branch(cond, label, when_true=True)

    def _gen_branch(self, cond: ast.Expr, label: str,
                    when_true: bool) -> None:
        """Branch to ``label`` on ``cond``'s truth value.

        Integer equality tests fuse into a two-register beq/bne, the
        way an optimising compiler emits them (and the way the paper's
        SPEC traces contain branches with two data inputs); everything
        else materialises the condition and tests it against $zero.
        """
        if (
            isinstance(cond, ast.Binary)
            and cond.op in ("==", "!=")
            and not cond.lhs.ty.is_float
            and not cond.rhs.ty.is_float
        ):
            # `x == y` branches with beq/bne directly; the polarity
            # combines the operator with the branch sense.
            take_on_equal = (cond.op == "==") == when_true
            mnemonic = "beq" if take_on_equal else "bne"
            lhs, lhs_borrowed = self._operand(cond.lhs)
            rhs, rhs_borrowed = self._operand(cond.rhs)
            self.emit(
                f"{mnemonic} {register_name(lhs)}, {register_name(rhs)}, "
                f"{label}"
            )
            self._free_operand(rhs, rhs_borrowed)
            self._free_operand(lhs, lhs_borrowed)
            return
        reg = self.gen_expr(cond)
        if cond.ty.is_float:
            reg = self._coerce(reg, FLOAT, INT)
        mnemonic = "bne" if when_true else "beq"
        self.emit(f"{mnemonic} {register_name(reg)}, $zero, {label}")
        self.free(reg)

    def _gen_if(self, stmt: ast.If) -> None:
        end = self.new_label("endif")
        target = self.new_label("else") if stmt.orelse is not None else end
        self._branch_if_false(stmt.cond, target)
        self.gen_stmt(stmt.then)
        if stmt.orelse is not None:
            self.emit(f"b {end}")
            self.emit_label(target)
            self.gen_stmt(stmt.orelse)
        self.emit_label(end)

    def _gen_while(self, stmt: ast.While) -> None:
        cond_label = self.new_label("wcond")
        body_label = self.new_label("wbody")
        end_label = self.new_label("wend")
        self.emit(f"b {cond_label}")
        self.emit_label(body_label)
        self._loop_stack.append((cond_label, end_label))
        self.gen_stmt(stmt.body)
        self._loop_stack.pop()
        self.emit_label(cond_label)
        self._branch_if_true(stmt.cond, body_label)
        self.emit_label(end_label)

    def _gen_do_while(self, stmt: ast.DoWhile) -> None:
        body_label = self.new_label("dbody")
        cond_label = self.new_label("dcond")
        end_label = self.new_label("dend")
        self.emit_label(body_label)
        self._loop_stack.append((cond_label, end_label))
        self.gen_stmt(stmt.body)
        self._loop_stack.pop()
        self.emit_label(cond_label)
        self._branch_if_true(stmt.cond, body_label)
        self.emit_label(end_label)

    def _gen_for(self, stmt: ast.For) -> None:
        cond_label = self.new_label("fcond")
        body_label = self.new_label("fbody")
        step_label = self.new_label("fstep")
        end_label = self.new_label("fend")
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        self.emit(f"b {cond_label}")
        self.emit_label(body_label)
        self._loop_stack.append((step_label, end_label))
        self.gen_stmt(stmt.body)
        self._loop_stack.pop()
        self.emit_label(step_label)
        if stmt.step is not None:
            self.free(self.gen_expr(stmt.step, want_value=False))
        self.emit_label(cond_label)
        if stmt.cond is not None:
            self._branch_if_true(stmt.cond, body_label)
        else:
            self.emit(f"b {body_label}")
        self.emit_label(end_label)

    #: A switch becomes a jump table when it has at least this many
    #: cases and the value range is no sparser than 3x the case count.
    MIN_TABLE_CASES = 4
    MAX_TABLE_SPAN = 256

    def _gen_switch(self, stmt: ast.Switch) -> None:
        """Dispatch via a .data jump table (dense value sets) or a
        compare chain (sparse), then fall-through case bodies."""
        end_label = self.new_label("swend")
        case_labels = [self.new_label("case") for __ in stmt.cases]
        default_label = end_label
        values: list[tuple[int, str]] = []
        for case, label in zip(stmt.cases, case_labels):
            if case.value is None:
                default_label = label
            else:
                values.append((case.value, label))
        cond = self.gen_expr(stmt.cond)
        if self._switch_is_dense(values):
            self._emit_jump_table(cond, values, default_label)
        else:
            self._emit_compare_chain(cond, values, default_label)
        self.free(cond)
        self._loop_stack.append((None, end_label))
        for case, label in zip(stmt.cases, case_labels):
            self.emit_label(label)
            for child in case.stmts:
                self.gen_stmt(child)
        self._loop_stack.pop()
        self.emit_label(end_label)

    def _switch_is_dense(self, values) -> bool:
        if len(values) < self.MIN_TABLE_CASES:
            return False
        span = max(v for v, __ in values) - min(v for v, __ in values) + 1
        return span <= self.MAX_TABLE_SPAN and span <= 3 * len(values)

    def _emit_jump_table(self, cond, values, default_label) -> None:
        low = min(v for v, __ in values)
        span = max(v for v, __ in values) - low + 1
        targets = [default_label] * span
        for value, label in values:
            targets[value - low] = label
        table_label = self.module.jump_table(targets)
        name = register_name(cond)
        if low:
            self.emit(f"addiu {name}, {name}, {-low}")
        guard = self.alloc(False)
        self.emit(f"sltiu {register_name(guard)}, {name}, {span}")
        self.emit(f"beq {register_name(guard)}, $zero, {default_label}")
        self.free(guard)
        self.emit(f"sll {name}, {name}, 2")
        base = self.alloc(False)
        self.emit(f"la {register_name(base)}, {table_label}")
        self.emit(f"addu {name}, {register_name(base)}, {name}")
        self.free(base)
        self.emit(f"lw {name}, 0({name})")
        self.emit(f"jr {name}")

    def _emit_compare_chain(self, cond, values, default_label) -> None:
        name = register_name(cond)
        for value, label in values:
            if value == 0:
                self.emit(f"beq {name}, $zero, {label}")
            else:
                temp = self.alloc(False)
                self.emit(f"li {register_name(temp)}, {value}")
                self.emit(f"beq {name}, {register_name(temp)}, {label}")
                self.free(temp)
        self.emit(f"b {default_label}")

    # ------------------------------------------------------------------
    # Expressions.  gen_expr returns a freshly allocated temp register
    # holding the value (caller frees), or None for void expressions.
    # ------------------------------------------------------------------

    def gen_expr(self, expr: ast.Expr, want_value: bool = True) -> int | None:
        if isinstance(expr, ast.IntLit):
            reg = self.alloc(False)
            promoted = self._int_const_reg(expr.value)
            if promoted is not None:
                self.emit(f"move {register_name(reg)}, "
                          f"{register_name(promoted)}")
            else:
                self.emit(f"li {register_name(reg)}, {expr.value}")
            return reg
        if isinstance(expr, ast.FloatLit):
            return self._load_float_const(expr.value)
        if isinstance(expr, ast.StrLit):
            reg = self.alloc(False)
            label = self.module.string_label(expr.value)
            self.emit(f"la {register_name(reg)}, {label}")
            return reg
        if isinstance(expr, ast.Var):
            if expr.sym.is_array:
                return self._array_address(expr.sym, expr.line)
            return self._load_location(self._var_location(expr))
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Deref):
            addr = self.gen_expr(expr.operand)
            location = _Location("mem", expr.ty, reg=addr, offset=0)
            value = self._load_location(location)
            self.free(addr)
            return value
        if isinstance(expr, ast.AddrOf):
            return self._gen_addr_of(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Conditional):
            return self._gen_conditional(expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr, want_value)
        if isinstance(expr, ast.IncDec):
            return self._gen_incdec(expr, want_value)
        if isinstance(expr, ast.Index):
            location = self._index_location(expr)
            value = self._load_location(location)
            self._free_location(location)
            return value
        if isinstance(expr, ast.Call):
            return self._gen_call(expr, want_value)
        raise CompileError(
            f"unhandled expression {type(expr).__name__}", expr.line
        )

    # -- locations ---------------------------------------------------------

    def _int_const_reg(self, value: int) -> int | None:
        return self.info.const_regs.get(("int", value & 0xFFFFFFFF))

    def _global_reg(self, label: str) -> int | None:
        return self.info.const_regs.get(("ga", label))

    def _float_const_reg(self, value: float) -> int | None:
        return self.info.const_regs.get(("float", value))

    def _array_address(self, symbol: Symbol, line: int) -> int:
        """Materialise the address an array symbol decays to."""
        dest = self.alloc(False)
        if symbol.storage == "frame":
            self.emit(f"addiu {register_name(dest)}, $fp, {symbol.offset}")
        elif symbol.storage == "global":
            promoted = self._global_reg(symbol.label)
            if promoted is not None:
                self.emit(f"move {register_name(dest)}, "
                          f"{register_name(promoted)}")
            else:
                self.emit(f"la {register_name(dest)}, {symbol.label}")
        else:
            raise CompileError(
                f"array {symbol.name!r} has no address", line
            )
        return dest

    def _symbol_location(self, symbol: Symbol) -> _Location:
        ty = symbol.ty
        if symbol.storage == "reg":
            return _Location("reg", ty, reg=symbol.reg)
        if symbol.storage == "frame":
            return _Location("frame", ty, offset=symbol.offset)
        return _Location("global", ty, label=symbol.label)

    def _var_location(self, expr: ast.Var) -> _Location:
        symbol = expr.sym
        if symbol.is_array:
            raise CompileError(
                f"array {symbol.name!r} used as a value", expr.line
            )
        return self._symbol_location(symbol)

    def _index_location(self, expr: ast.Index) -> _Location:
        """Compute the address of ``base[index]`` into a temp."""
        element = expr.ty
        size = element.size()
        base = self.gen_expr(expr.base)
        index = expr.index
        if isinstance(index, ast.IntLit):
            displacement = index.value * size
            if -32768 <= displacement <= 32767:
                return _Location("mem", element, reg=base,
                                 offset=displacement)
        index_reg = self.gen_expr(index)
        if size > 1:
            shift = {4: 2, 8: 3}[size]
            self.emit(
                f"sll {register_name(index_reg)}, "
                f"{register_name(index_reg)}, {shift}"
            )
        self.emit(
            f"addu {register_name(index_reg)}, {register_name(base)}, "
            f"{register_name(index_reg)}"
        )
        self.free(base)
        return _Location("mem", element, reg=index_reg, offset=0)

    def _free_location(self, location: _Location) -> None:
        if location.kind == "mem":
            self.free(location.reg)

    def _mem_ops(self, ty: Type) -> tuple[str, str]:
        """(load op, store op) for a scalar of type ``ty``."""
        if ty.is_float:
            return "l.d", "s.d"
        if ty == CHAR:
            return "lbu", "sb"
        return "lw", "sw"

    def _load_location(self, location: _Location) -> int:
        ty = location.ty
        is_float = ty.is_float
        dest = self.alloc(is_float)
        name = register_name(dest)
        if location.kind == "reg":
            if is_float:
                self.emit(f"mov.d {name}, {register_name(location.reg)}")
            else:
                self.emit(f"move {name}, {register_name(location.reg)}")
        elif location.kind == "frame":
            load_op = self._mem_ops(ty)[0]
            self.emit(f"{load_op} {name}, {location.offset}($fp)")
        elif location.kind == "global":
            load_op = self._mem_ops(ty)[0]
            promoted = self._global_reg(location.label)
            if promoted is not None:
                self.emit(f"{load_op} {name}, 0({register_name(promoted)})")
            else:
                self.emit(f"{load_op} {name}, {location.label}")
        else:  # mem
            load_op = self._mem_ops(ty)[0]
            self.emit(
                f"{load_op} {name}, {location.offset}"
                f"({register_name(location.reg)})"
            )
        return dest

    def _store_location(self, location: _Location, value: int) -> None:
        ty = location.ty
        name = register_name(value)
        if location.kind == "reg":
            if ty.is_float:
                self.emit(f"mov.d {register_name(location.reg)}, {name}")
            else:
                self.emit(f"move {register_name(location.reg)}, {name}")
        elif location.kind == "frame":
            store_op = self._mem_ops(ty)[1]
            self.emit(f"{store_op} {name}, {location.offset}($fp)")
        elif location.kind == "global":
            store_op = self._mem_ops(ty)[1]
            promoted = self._global_reg(location.label)
            if promoted is not None:
                self.emit(f"{store_op} {name}, 0({register_name(promoted)})")
            else:
                self.emit(f"{store_op} {name}, {location.label}")
        else:  # mem
            store_op = self._mem_ops(ty)[1]
            self.emit(
                f"{store_op} {name}, {location.offset}"
                f"({register_name(location.reg)})"
            )

    def _lvalue_location(self, expr: ast.Expr) -> _Location:
        if isinstance(expr, ast.Var):
            return self._var_location(expr)
        if isinstance(expr, ast.Deref):
            addr = self.gen_expr(expr.operand)
            return _Location("mem", expr.ty, reg=addr, offset=0)
        if isinstance(expr, ast.Index):
            return self._index_location(expr)
        raise CompileError("not an lvalue", expr.line)

    # -- conversions ---------------------------------------------------------

    def _coerce(self, reg: int, from_ty: Type, to_ty: Type) -> int:
        """Convert ``reg`` to ``to_ty``, returning the (possibly new)
        register; the old register is freed on conversion."""
        if from_ty.is_float == to_ty.is_float:
            return reg
        dest = self.alloc(to_ty.is_float)
        if to_ty.is_float:
            self.emit(f"itof {register_name(dest)}, {register_name(reg)}")
        else:
            self.emit(f"ftoi {register_name(dest)}, {register_name(reg)}")
        self.free(reg)
        return dest

    # -- operators ---------------------------------------------------------

    def _gen_unary(self, expr: ast.Unary) -> int:
        op = expr.op
        if op == "-":
            operand = self.gen_expr(expr.operand)
            if expr.ty.is_float:
                operand = self._coerce(operand, expr.operand.ty, FLOAT)
                dest = self.alloc(True)
                self.emit(
                    f"neg.d {register_name(dest)}, {register_name(operand)}"
                )
            else:
                dest = self.alloc(False)
                self.emit(
                    f"neg {register_name(dest)}, {register_name(operand)}"
                )
            self.free(operand)
            return dest
        if op == "~":
            operand = self.gen_expr(expr.operand)
            dest = self.alloc(False)
            self.emit(f"not {register_name(dest)}, {register_name(operand)}")
            self.free(operand)
            return dest
        if op == "!":
            operand = self.gen_expr(expr.operand)
            if expr.operand.ty.is_float:
                operand = self._coerce(operand, FLOAT, INT)
            dest = self.alloc(False)
            self.emit(
                f"sltiu {register_name(dest)}, {register_name(operand)}, 1"
            )
            self.free(operand)
            return dest
        raise CompileError(f"unknown unary operator {op!r}", expr.line)

    def _gen_addr_of(self, expr: ast.AddrOf) -> int:
        operand = expr.operand
        if isinstance(operand, ast.Var):
            symbol = operand.sym
            dest = self.alloc(False)
            if symbol.storage == "frame":
                self.emit(
                    f"addiu {register_name(dest)}, $fp, {symbol.offset}"
                )
            elif symbol.storage == "global":
                promoted = self._global_reg(symbol.label)
                if promoted is not None:
                    self.emit(f"move {register_name(dest)}, "
                              f"{register_name(promoted)}")
                else:
                    self.emit(f"la {register_name(dest)}, {symbol.label}")
            else:
                raise CompileError(
                    f"cannot take the address of register variable "
                    f"{symbol.name!r}",
                    expr.line,
                )
            return dest
        if isinstance(operand, ast.Index):
            location = self._index_location(operand)
            if location.offset:
                self.emit(
                    f"addiu {register_name(location.reg)}, "
                    f"{register_name(location.reg)}, {location.offset}"
                )
            return location.reg
        if isinstance(operand, ast.Deref):
            return self.gen_expr(operand.operand)
        raise CompileError("& needs an lvalue", expr.line)

    def _const_operand(self, expr: ast.Expr) -> int | None:
        """Return the integer literal value of ``expr``, if it is one."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if (
            isinstance(expr, ast.Unary)
            and expr.op == "-"
            and isinstance(expr.operand, ast.IntLit)
        ):
            return -expr.operand.value
        return None

    def _operand(self, expr: ast.Expr) -> tuple[int, bool]:
        """Evaluate ``expr`` as an operand.

        Register-resident variables are *borrowed* (returned directly,
        not copied); everything else is materialised into a temp.
        Returns (register, borrowed).
        """
        if isinstance(expr, ast.Var):
            if expr.sym.storage == "reg":
                return expr.sym.reg, True
            if expr.sym.is_array and expr.sym.storage == "global":
                promoted = self._global_reg(expr.sym.label)
                if promoted is not None:
                    return promoted, True
        if isinstance(expr, ast.IntLit):
            if expr.value == 0:
                return 0, True  # the hard-wired zero register
            promoted = self._int_const_reg(expr.value)
            if promoted is not None:
                return promoted, True
        return self.gen_expr(expr), False

    def _free_operand(self, reg: int, borrowed: bool) -> None:
        if not borrowed:
            self.free(reg)

    def _gen_binary(self, expr: ast.Binary) -> int:
        op = expr.op
        if op in ("&&", "||"):
            return self._gen_logical(expr)
        lhs_ty, rhs_ty = expr.lhs.ty, expr.rhs.ty
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._gen_compare(expr)
        if lhs_ty.is_pointer or rhs_ty.is_pointer:
            return self._gen_pointer_arith(expr)
        if expr.ty.is_float:
            return self._gen_float_binary(expr)
        return self._gen_int_binary(expr)

    def _gen_int_binary(self, expr: ast.Binary) -> int:
        op = expr.op
        lhs, lhs_borrowed = self._operand(expr.lhs)
        const = self._const_operand(expr.rhs)
        dest = None
        if const is not None:
            dest = self._int_imm_op(op, lhs, const)
        if dest is None:
            rhs, rhs_borrowed = self._operand(expr.rhs)
            dest = self.alloc(False)
            mnemonic = _INT_BINOPS[op]
            self.emit(
                f"{mnemonic} {register_name(dest)}, {register_name(lhs)}, "
                f"{register_name(rhs)}"
            )
            self._free_operand(rhs, rhs_borrowed)
        self._free_operand(lhs, lhs_borrowed)
        return dest

    def _int_imm_op(self, op: str, lhs: int, const: int) -> int | None:
        """Emit an immediate-form ALU op if the constant allows it."""
        if op in ("<<", ">>") and 0 <= const <= 31:
            dest = self.alloc(False)
            mnemonic = "sll" if op == "<<" else "sra"
            self.emit(
                f"{mnemonic} {register_name(dest)}, {register_name(lhs)}, "
                f"{const}"
            )
            return dest
        if op == "*" and const > 0 and const & (const - 1) == 0:
            # Strength reduction: multiply by a power of two is a shift.
            dest = self.alloc(False)
            self.emit(
                f"sll {register_name(dest)}, {register_name(lhs)}, "
                f"{const.bit_length() - 1}"
            )
            return dest
        if op == "-":
            op, const = "+", -const
        folding = _IMM_BINOPS.get(op)
        if folding is None:
            return None
        mnemonic, unsigned = folding
        if unsigned and not 0 <= const <= 0xFFFF:
            return None
        if not unsigned and not -32768 <= const <= 32767:
            return None
        dest = self.alloc(False)
        self.emit(
            f"{mnemonic} {register_name(dest)}, {register_name(lhs)}, {const}"
        )
        return dest

    def _gen_float_binary(self, expr: ast.Binary) -> int:
        lhs = self.gen_expr(expr.lhs)
        lhs = self._coerce(lhs, expr.lhs.ty, FLOAT)
        rhs = self.gen_expr(expr.rhs)
        rhs = self._coerce(rhs, expr.rhs.ty, FLOAT)
        dest = self.alloc(True)
        mnemonic = _FLOAT_BINOPS[expr.op]
        self.emit(
            f"{mnemonic} {register_name(dest)}, {register_name(lhs)}, "
            f"{register_name(rhs)}"
        )
        self.free(lhs)
        self.free(rhs)
        return dest

    def _gen_pointer_arith(self, expr: ast.Binary) -> int:
        op = expr.op
        lhs_ty, rhs_ty = expr.lhs.ty, expr.rhs.ty
        if lhs_ty.is_pointer and rhs_ty.is_pointer:  # p - q
            size = lhs_ty.element().size()
            lhs, lb = self._operand(expr.lhs)
            rhs, rb = self._operand(expr.rhs)
            dest = self.alloc(False)
            self.emit(
                f"subu {register_name(dest)}, {register_name(lhs)}, "
                f"{register_name(rhs)}"
            )
            if size > 1:
                shift = {4: 2, 8: 3}[size]
                self.emit(
                    f"sra {register_name(dest)}, {register_name(dest)}, "
                    f"{shift}"
                )
            self._free_operand(lhs, lb)
            self._free_operand(rhs, rb)
            return dest
        # pointer ± integer (in either order for +).
        pointer_expr, int_expr = expr.lhs, expr.rhs
        if rhs_ty.is_pointer:
            pointer_expr, int_expr = expr.rhs, expr.lhs
        size = expr.ty.element().size()
        pointer, pb = self._operand(pointer_expr)
        const = self._const_operand(int_expr)
        if const is not None and -32768 <= const * size <= 32767:
            displacement = const * size if op == "+" else -const * size
            dest = self.alloc(False)
            self.emit(
                f"addiu {register_name(dest)}, {register_name(pointer)}, "
                f"{displacement}"
            )
            self._free_operand(pointer, pb)
            return dest
        offset = self.gen_expr(int_expr)
        if size > 1:
            shift = {4: 2, 8: 3}[size]
            self.emit(
                f"sll {register_name(offset)}, {register_name(offset)}, "
                f"{shift}"
            )
        dest = self.alloc(False)
        mnemonic = "addu" if op == "+" else "subu"
        self.emit(
            f"{mnemonic} {register_name(dest)}, {register_name(pointer)}, "
            f"{register_name(offset)}"
        )
        self.free(offset)
        self._free_operand(pointer, pb)
        return dest

    def _gen_compare(self, expr: ast.Binary) -> int:
        op = expr.op
        lhs_ty, rhs_ty = expr.lhs.ty, expr.rhs.ty
        if lhs_ty.is_float or rhs_ty.is_float:
            return self._gen_float_compare(expr)
        unsigned = lhs_ty.is_pointer or rhs_ty.is_pointer
        lhs, lb = self._operand(expr.lhs)
        if op in ("<", ">", "<=", ">="):
            const = self._const_operand(expr.rhs)
            if (
                op == "<" and not unsigned and const is not None
                and -32768 <= const <= 32767
            ):
                dest = self.alloc(False)
                self.emit(
                    f"slti {register_name(dest)}, {register_name(lhs)}, "
                    f"{const}"
                )
                self._free_operand(lhs, lb)
                return dest
            rhs, rb = self._operand(expr.rhs)
            slt = "sltu" if unsigned else "slt"
            first, second = (lhs, rhs) if op in ("<", ">=") else (rhs, lhs)
            dest = self.alloc(False)
            self.emit(
                f"{slt} {register_name(dest)}, {register_name(first)}, "
                f"{register_name(second)}"
            )
            if op in ("<=", ">="):
                self.emit(
                    f"xori {register_name(dest)}, {register_name(dest)}, 1"
                )
            self._free_operand(rhs, rb)
            self._free_operand(lhs, lb)
            return dest
        # == and !=
        rhs, rb = self._operand(expr.rhs)
        dest = self.alloc(False)
        self.emit(
            f"xor {register_name(dest)}, {register_name(lhs)}, "
            f"{register_name(rhs)}"
        )
        if op == "==":
            self.emit(f"sltiu {register_name(dest)}, {register_name(dest)}, 1")
        else:
            self.emit(
                f"sltu {register_name(dest)}, $zero, {register_name(dest)}"
            )
        self._free_operand(rhs, rb)
        self._free_operand(lhs, lb)
        return dest

    def _gen_float_compare(self, expr: ast.Binary) -> int:
        op = expr.op
        lhs = self._coerce(self.gen_expr(expr.lhs), expr.lhs.ty, FLOAT)
        rhs = self._coerce(self.gen_expr(expr.rhs), expr.rhs.ty, FLOAT)
        dest = self.alloc(False)
        table = {
            "<": ("fslt", lhs, rhs, False),
            ">": ("fslt", rhs, lhs, False),
            "<=": ("fsle", lhs, rhs, False),
            ">=": ("fsle", rhs, lhs, False),
            "==": ("fseq", lhs, rhs, False),
            "!=": ("fseq", lhs, rhs, True),
        }
        mnemonic, first, second, negate = table[op]
        self.emit(
            f"{mnemonic} {register_name(dest)}, {register_name(first)}, "
            f"{register_name(second)}"
        )
        if negate:
            self.emit(f"xori {register_name(dest)}, {register_name(dest)}, 1")
        self.free(lhs)
        self.free(rhs)
        return dest

    def _gen_logical(self, expr: ast.Binary) -> int:
        dest = self.alloc(False)
        short_label = self.new_label("sc")
        end_label = self.new_label("scend")
        is_and = expr.op == "&&"
        for operand in (expr.lhs, expr.rhs):
            reg = self.gen_expr(operand)
            if operand.ty.is_float:
                reg = self._coerce(reg, FLOAT, INT)
            branch = "beq" if is_and else "bne"
            self.emit(f"{branch} {register_name(reg)}, $zero, {short_label}")
            self.free(reg)
        self.emit(f"li {register_name(dest)}, {1 if is_and else 0}")
        self.emit(f"b {end_label}")
        self.emit_label(short_label)
        self.emit(f"li {register_name(dest)}, {0 if is_and else 1}")
        self.emit_label(end_label)
        return dest

    def _gen_conditional(self, expr: ast.Conditional) -> int:
        """``cond ? a : b`` as a diamond writing one destination temp."""
        dest = self.alloc(expr.ty.is_float)
        else_label = self.new_label("celse")
        end_label = self.new_label("cend")
        self._branch_if_false(expr.cond, else_label)
        then_reg = self._coerce(self.gen_expr(expr.then), expr.then.ty,
                                expr.ty)
        move = "mov.d" if expr.ty.is_float else "move"
        self.emit(f"{move} {register_name(dest)}, "
                  f"{register_name(then_reg)}")
        self.free(then_reg)
        self.emit(f"b {end_label}")
        self.emit_label(else_label)
        else_reg = self._coerce(self.gen_expr(expr.orelse), expr.orelse.ty,
                                expr.ty)
        self.emit(f"{move} {register_name(dest)}, "
                  f"{register_name(else_reg)}")
        self.free(else_reg)
        self.emit_label(end_label)
        return dest

    # -- assignment -----------------------------------------------------------

    def _gen_assign(self, expr: ast.Assign, want_value: bool) -> int | None:
        target_ty = expr.target.ty
        if expr.op == "=":
            location = self._lvalue_location(expr.target)
            value = self.gen_expr(expr.value)
            value = self._coerce(value, expr.value.ty, target_ty)
            self._store_location(location, value)
            self._free_location(location)
            if want_value:
                return value
            self.free(value)
            return None
        # Compound assignment: load, combine, store.
        base_op = expr.op[:-1]
        location = self._lvalue_location(expr.target)
        current = self._load_location(location)
        if target_ty.is_pointer:
            updated = self._pointer_step(current, expr.value, base_op,
                                         target_ty)
        elif target_ty.is_float:
            rhs = self._coerce(self.gen_expr(expr.value), expr.value.ty,
                               FLOAT)
            updated = self.alloc(True)
            self.emit(
                f"{_FLOAT_BINOPS[base_op]} {register_name(updated)}, "
                f"{register_name(current)}, {register_name(rhs)}"
            )
            self.free(rhs)
        else:
            const = self._const_operand(expr.value)
            updated = None
            if const is not None and not expr.value.ty.is_float:
                updated = self._int_imm_op(base_op, current, const)
            if updated is None:
                rhs = self.gen_expr(expr.value)
                rhs = self._coerce(rhs, expr.value.ty, INT)
                updated = self.alloc(False)
                self.emit(
                    f"{_INT_BINOPS[base_op]} {register_name(updated)}, "
                    f"{register_name(current)}, {register_name(rhs)}"
                )
                self.free(rhs)
        self.free(current)
        self._store_location(location, updated)
        self._free_location(location)
        if want_value:
            return updated
        self.free(updated)
        return None

    def _pointer_step(self, current: int, step_expr: ast.Expr, op: str,
                      pointer_ty: Type) -> int:
        size = pointer_ty.element().size()
        const = self._const_operand(step_expr)
        if const is not None and -32768 <= const * size <= 32767:
            displacement = const * size if op == "+" else -const * size
            dest = self.alloc(False)
            self.emit(
                f"addiu {register_name(dest)}, {register_name(current)}, "
                f"{displacement}"
            )
            return dest
        step = self.gen_expr(step_expr)
        if size > 1:
            shift = {4: 2, 8: 3}[size]
            self.emit(
                f"sll {register_name(step)}, {register_name(step)}, {shift}"
            )
        dest = self.alloc(False)
        mnemonic = "addu" if op == "+" else "subu"
        self.emit(
            f"{mnemonic} {register_name(dest)}, {register_name(current)}, "
            f"{register_name(step)}"
        )
        self.free(step)
        return dest

    def _gen_incdec(self, expr: ast.IncDec, want_value: bool) -> int | None:
        ty = expr.ty
        location = self._lvalue_location(expr.target)
        current = self._load_location(location)
        step = ty.element().size() if ty.is_pointer else 1
        if expr.op == "--":
            step = -step
        updated = self.alloc(False)
        self.emit(
            f"addiu {register_name(updated)}, {register_name(current)}, "
            f"{step}"
        )
        self._store_location(location, updated)
        self._free_location(location)
        if not want_value:
            self.free(current)
            self.free(updated)
            return None
        if expr.prefix:
            self.free(current)
            return updated
        self.free(updated)
        return current

    # -- calls -----------------------------------------------------------------

    def _gen_call(self, expr: ast.Call, want_value: bool) -> int | None:
        builtin = BUILTINS.get(expr.name)
        if builtin is not None:
            return self._gen_builtin(expr, builtin, want_value)
        signature = self.module.sema.functions[expr.name]
        # Evaluate arguments into temps.
        arg_regs: list[int] = []
        for arg, param in zip(expr.args, signature.params):
            reg = self.gen_expr(arg)
            reg = self._coerce(reg, arg.ty, param.ty)
            arg_regs.append(reg)
        # Move into argument registers and release the temps.
        int_index = 0
        float_index = 0
        for reg, param in zip(arg_regs, signature.params):
            if param.ty.is_float:
                target = (_F12, _F14)[float_index]
                float_index += 1
                self.emit(f"mov.d {register_name(target)}, "
                          f"{register_name(reg)}")
            else:
                target = (_A0, _A1, _A2, _A3)[int_index]
                int_index += 1
                self.emit(f"move {register_name(target)}, "
                          f"{register_name(reg)}")
            self.free(reg)
        # Spill any still-live temporaries around the call.
        live = list(self._live)
        spill_bytes = 0
        for reg in live:
            spill_bytes += 8 if self._is_fp(reg) else 4
        spill_bytes = (spill_bytes + 7) & ~7
        if spill_bytes:
            self.emit(f"addiu $sp, $sp, -{spill_bytes}")
            cursor = 0
            for reg in live:
                if self._is_fp(reg):
                    cursor = (cursor + 7) & ~7
                    self.emit(f"s.d {register_name(reg)}, {cursor}($sp)")
                    cursor += 8
                else:
                    self.emit(f"sw {register_name(reg)}, {cursor}($sp)")
                    cursor += 4
        self.emit(f"jal {expr.name}")
        if spill_bytes:
            cursor = 0
            for reg in live:
                if self._is_fp(reg):
                    cursor = (cursor + 7) & ~7
                    self.emit(f"l.d {register_name(reg)}, {cursor}($sp)")
                    cursor += 8
                else:
                    self.emit(f"lw {register_name(reg)}, {cursor}($sp)")
                    cursor += 4
            self.emit(f"addiu $sp, $sp, {spill_bytes}")
        ret = signature.ret
        if ret.is_void or not want_value:
            return None
        dest = self.alloc(ret.is_float)
        if ret.is_float:
            self.emit(f"mov.d {register_name(dest)}, $f0")
        else:
            self.emit(f"move {register_name(dest)}, $v0")
        return dest

    def _gen_builtin(self, expr: ast.Call, builtin, want_value):
        name = expr.name
        if name in ("print_int", "print_char", "exit"):
            value = self.gen_expr(expr.args[0])
            value = self._coerce(value, expr.args[0].ty, INT)
            self.emit(f"move $a0, {register_name(value)}")
            self.free(value)
            code = {
                "print_int": SYS_PRINT_INT,
                "print_char": SYS_PRINT_CHAR,
                "exit": SYS_EXIT,
            }[name]
            self.emit(f"li $v0, {code}")
            self.emit("syscall")
            return None
        if name == "print_float":
            value = self.gen_expr(expr.args[0])
            value = self._coerce(value, expr.args[0].ty, FLOAT)
            self.emit(f"mov.d $f12, {register_name(value)}")
            self.free(value)
            self.emit(f"li $v0, {SYS_PRINT_FLOAT}")
            self.emit("syscall")
            return None
        if name in ("input_count", "input_float_count"):
            address = (INPUT_LEN_ADDR if name == "input_count"
                       else INPUT_FLOAT_LEN_ADDR)
            dest = self.alloc(False)
            promoted = self._int_const_reg(address)
            if promoted is not None:
                self.emit(f"lw {register_name(dest)}, "
                          f"0({register_name(promoted)})")
            else:
                self.emit(f"li {register_name(dest)}, {address}")
                self.emit(
                    f"lw {register_name(dest)}, 0({register_name(dest)})"
                )
            return dest if want_value else self._discard(dest)
        if name == "input_word":
            index = self.gen_expr(expr.args[0])
            self.emit(f"sll {register_name(index)}, "
                      f"{register_name(index)}, 2")
            promoted = self._int_const_reg(INPUT_BASE)
            base = self.alloc(False)
            if promoted is not None:
                self.emit(
                    f"addu {register_name(base)}, "
                    f"{register_name(promoted)}, {register_name(index)}"
                )
            else:
                self.emit(f"li {register_name(base)}, {INPUT_BASE}")
                self.emit(
                    f"addu {register_name(base)}, {register_name(base)},"
                    f" {register_name(index)}"
                )
            self.free(index)
            dest = self.alloc(False)
            self.emit(f"lw {register_name(dest)}, 0({register_name(base)})")
            self.free(base)
            return dest if want_value else self._discard(dest)
        if name == "input_float":
            index = self.gen_expr(expr.args[0])
            self.emit(f"sll {register_name(index)}, "
                      f"{register_name(index)}, 3")
            promoted = self._int_const_reg(INPUT_FLOAT_BASE)
            base = self.alloc(False)
            if promoted is not None:
                self.emit(
                    f"addu {register_name(base)}, "
                    f"{register_name(promoted)}, {register_name(index)}"
                )
            else:
                self.emit(f"li {register_name(base)}, {INPUT_FLOAT_BASE}")
                self.emit(
                    f"addu {register_name(base)}, {register_name(base)},"
                    f" {register_name(index)}"
                )
            self.free(index)
            dest = self.alloc(True)
            self.emit(f"l.d {register_name(dest)}, 0({register_name(base)})")
            self.free(base)
            return dest if want_value else self._discard(dest)
        raise CompileError(f"unhandled builtin {name!r}", expr.line)

    def _discard(self, reg: int) -> None:
        self.free(reg)
        return None

    # -- constants ---------------------------------------------------------

    def _load_float_const(self, value: float) -> int:
        dest = self.alloc(True)
        promoted = self._float_const_reg(value)
        if promoted is not None:
            self.emit(f"mov.d {register_name(dest)}, "
                      f"{register_name(promoted)}")
        else:
            label = self.module.float_label(value)
            self.emit(f"l.d {register_name(dest)}, {label}")
        return dest


class ModuleCodegen:
    """Generates the whole assembly module."""

    def __init__(self, sema: SemaResult):
        self.sema = sema
        self._floats: dict[float, str] = {}
        self._strings: dict[str, str] = {}
        self._jump_tables: list[tuple[str, list[str]]] = []

    def float_label(self, value: float) -> str:
        label = self._floats.get(value)
        if label is None:
            label = f".fc{len(self._floats)}"
            self._floats[value] = label
        return label

    def string_label(self, value: str) -> str:
        label = self._strings.get(value)
        if label is None:
            label = f".str{len(self._strings)}"
            self._strings[value] = label
        return label

    def jump_table(self, targets: list[str]) -> str:
        """Register a switch jump table; returns its data label."""
        label = f".jt{len(self._jump_tables)}"
        self._jump_tables.append((label, list(targets)))
        return label

    def run(self) -> str:
        lines: list[str] = [
            "# generated by repro.minic",
            "        .text",
            "__start:",
            f"        li $sp, {STACK_TOP}",
            "        move $fp, $sp",
            "        jal main",
            "        move $a0, $v0",
            f"        li $v0, {SYS_EXIT}",
            "        syscall",
        ]
        for info in self.sema.functions.values():
            lines.extend(FunctionCodegen(self, info).run())
        lines.append("        .data")
        self._emit_globals(lines)
        for label, targets in self._jump_tables:
            lines.append(f"{label}: .word " + ", ".join(targets))
        for value, label in self._floats.items():
            lines.append(f"{label}: .double {value!r}")
        for value, label in self._strings.items():
            escaped = (
                value.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\t", "\\t")
                .replace("\r", "\\r")
                .replace("\0", "\\0")
            )
            lines.append(f'{label}: .asciiz "{escaped}"')
        return "\n".join(lines) + "\n"

    def _emit_globals(self, lines: list[str]) -> None:
        for decl in self.sema.program.globals:
            symbol = decl.sym
            ty = symbol.ty
            count = symbol.array_len if symbol.is_array else 1
            inits = decl.init
            values = []
            for init in inits:
                values.append(self._const_value(init, ty))
            while len(values) < count:
                values.append(0.0 if ty.is_float else 0)
            if ty.is_float:
                rendered = ", ".join(repr(float(v)) for v in values)
                lines.append(f"{symbol.label}: .double {rendered}")
            elif ty == CHAR and not ty.is_pointer:
                rendered = ", ".join(str(int(v) & 0xFF) for v in values)
                lines.append(f"{symbol.label}: .byte {rendered}")
            else:
                rendered = ", ".join(str(v) for v in values)
                lines.append(f"{symbol.label}: .word {rendered}")

    def _const_value(self, expr: ast.Expr, ty: Type):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_value(expr.operand, ty)
        if isinstance(expr, ast.StrLit):
            return self.string_label(expr.value)
        raise CompileError("non-constant global initialiser", expr.line)


def generate(sema: SemaResult) -> str:
    """Generate assembly text for an analysed program."""
    return ModuleCodegen(sema).run()
