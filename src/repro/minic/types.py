"""Type system for mini-C.

Types are base scalars (``int``, ``char``, ``float``, ``void``) plus a
pointer depth.  Arrays exist only in declarations; in expressions they
decay to pointers, as in C.  ``char`` is a byte; ``float`` is the
machine's 8-byte floating-point cell (doubles, matching the FP
register file).
"""

from __future__ import annotations

from dataclasses import dataclass

_SIZES = {"int": 4, "char": 1, "float": 8, "void": 0}


@dataclass(frozen=True, slots=True)
class Type:
    """A mini-C type: base scalar plus pointer depth."""

    base: str
    ptr: int = 0

    def __post_init__(self):
        if self.base not in _SIZES:
            raise ValueError(f"unknown base type: {self.base!r}")

    @property
    def is_pointer(self) -> bool:
        return self.ptr > 0

    @property
    def is_float(self) -> bool:
        return self.base == "float" and self.ptr == 0

    @property
    def is_integral(self) -> bool:
        return self.base in ("int", "char") and self.ptr == 0

    @property
    def is_void(self) -> bool:
        return self.base == "void" and self.ptr == 0

    def size(self) -> int:
        """Byte size of a value of this type."""
        return 4 if self.ptr else _SIZES[self.base]

    def element(self) -> "Type":
        """The pointee type of a pointer."""
        if not self.ptr:
            raise ValueError(f"not a pointer: {self}")
        return Type(self.base, self.ptr - 1)

    def pointer(self) -> "Type":
        """A pointer to this type."""
        return Type(self.base, self.ptr + 1)

    def __str__(self) -> str:
        return self.base + "*" * self.ptr


INT = Type("int")
CHAR = Type("char")
FLOAT = Type("float")
VOID = Type("void")


def common_numeric(lhs: Type, rhs: Type) -> Type:
    """Usual arithmetic conversion: float wins, else int."""
    if lhs.is_float or rhs.is_float:
        return FLOAT
    return INT
