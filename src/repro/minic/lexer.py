"""Tokenizer for mini-C."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import CompileError

KEYWORDS = {
    "int", "float", "char", "void",
    "if", "else", "while", "for", "do",
    "switch", "case", "default",
    "break", "continue", "return",
}

#: Multi-character operators, longest first so the lexer is greedy.
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "?", ":",
    "(", ")", "{", "}", "[", "]", ";", ",",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>%s)
    """
    % "|".join(re.escape(op) for op in _OPERATORS),
    re.VERBOSE | re.DOTALL,
)

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0",
    "\\": "\\", "'": "'", '"': '"',
}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``"int"``, ``"float"``, ``"string"``, ``"name"``,
    ``"kw"``, ``"op"``, ``"eof"``; ``value`` is the decoded payload
    (int/float/str) and ``text`` the raw source text.
    """

    kind: str
    value: object
    text: str
    line: int


def _decode_escapes(body: str, line: int) -> str:
    out = []
    index = 0
    while index < len(body):
        char = body[index]
        if char == "\\":
            if index + 1 >= len(body):
                raise CompileError("dangling escape", line)
            escape = body[index + 1]
            if escape not in _ESCAPES:
                raise CompileError(f"unknown escape: \\{escape}", line)
            out.append(_ESCAPES[escape])
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def tokenize(source: str) -> list[Token]:
    """Tokenize mini-C ``source``; raises :class:`CompileError`."""
    tokens: list[Token] = []
    position = 0
    line = 1
    length = len(source)
    while position < length:
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise CompileError(
                f"unexpected character: {source[position]!r}", line
            )
        text = match.group()
        kind = match.lastgroup
        if kind == "ws" or kind == "comment":
            pass
        elif kind == "int":
            tokens.append(Token("int", int(text, 0), text, line))
        elif kind == "float":
            tokens.append(Token("float", float(text), text, line))
        elif kind == "char":
            decoded = _decode_escapes(text[1:-1], line)
            if len(decoded) != 1:
                raise CompileError(f"bad character literal: {text}", line)
            tokens.append(Token("int", ord(decoded), text, line))
        elif kind == "string":
            tokens.append(
                Token("string", _decode_escapes(text[1:-1], line), text, line)
            )
        elif kind == "name":
            token_kind = "kw" if text in KEYWORDS else "name"
            tokens.append(Token(token_kind, text, text, line))
        else:  # op
            tokens.append(Token("op", text, text, line))
        line += text.count("\n")
        position = match.end()
    tokens.append(Token("eof", None, "", line))
    return tokens
