"""Tokenizer for mini-C."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import CompileError

KEYWORDS = {
    "int", "float", "char", "void",
    "if", "else", "while", "for", "do",
    "switch", "case", "default",
    "break", "continue", "return",
}

#: Multi-character operators, longest first so the lexer is greedy.
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "?", ":",
    "(", ")", "{", "}", "[", "]", ";", ",",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>%s)
    """
    % "|".join(re.escape(op) for op in _OPERATORS),
    re.VERBOSE | re.DOTALL,
)

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0",
    "\\": "\\", "'": "'", '"': '"',
}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``"int"``, ``"float"``, ``"string"``, ``"name"``,
    ``"kw"``, ``"op"``, ``"eof"``; ``value`` is the decoded payload
    (int/float/str) and ``text`` the raw source text.
    """

    kind: str
    value: object
    text: str
    line: int
    #: 1-based column of the token's first character.
    col: int = 1


def _decode_escapes(body: str, line: int, col: int | None = None) -> str:
    out = []
    index = 0
    while index < len(body):
        char = body[index]
        if char == "\\":
            if index + 1 >= len(body):
                raise CompileError("dangling escape", line, col)
            escape = body[index + 1]
            if escape not in _ESCAPES:
                raise CompileError(f"unknown escape: \\{escape}", line, col)
            out.append(_ESCAPES[escape])
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def tokenize(source: str) -> list[Token]:
    """Tokenize mini-C ``source``; raises :class:`CompileError`."""
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(source)
    while position < length:
        col = position - line_start + 1
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise CompileError(
                f"unexpected character: {source[position]!r}", line, col
            )
        text = match.group()
        kind = match.lastgroup
        if kind == "ws" or kind == "comment":
            pass
        elif kind == "int":
            tokens.append(Token("int", int(text, 0), text, line, col))
        elif kind == "float":
            tokens.append(Token("float", float(text), text, line, col))
        elif kind == "char":
            decoded = _decode_escapes(text[1:-1], line, col)
            if len(decoded) != 1:
                raise CompileError(f"bad character literal: {text}",
                                   line, col)
            tokens.append(Token("int", ord(decoded), text, line, col))
        elif kind == "string":
            tokens.append(
                Token("string", _decode_escapes(text[1:-1], line, col),
                      text, line, col)
            )
        elif kind == "name":
            token_kind = "kw" if text in KEYWORDS else "name"
            tokens.append(Token(token_kind, text, text, line, col))
        else:  # op
            tokens.append(Token("op", text, text, line, col))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rindex("\n") + 1
        position = match.end()
    tokens.append(Token("eof", None, "", line, length - line_start + 1))
    return tokens
