"""Mini-C compiler targeting the MIPS-like ISA.

The paper analyses SPEC95 binaries compiled with gcc ``-O3``; the
predictability phenomena it studies (immediate-heavy instruction mixes,
loop induction code, filtering branches, register-resident scalars)
come from *compiled* code.  This package provides the equivalent
substrate: a small C subset — ``int`` / ``float`` / ``char`` scalars,
arrays, pointers, functions, the usual statements and operators — with
a code generator that keeps scalar locals in callee-saved registers,
so the emitted code has the shape of optimised compiler output.

Builtins: ``print_int``, ``print_char``, ``print_float``, ``exit``,
and the program-input accessors ``input_word(i)``, ``input_count()``,
``input_float(i)``, ``input_float_count()`` which read the machine's
``D``-tagged input regions.

Entry points: :func:`compile_source` (to assembly text) and
:func:`compile_program` (straight to an assembled
:class:`repro.asm.Program`).
"""

from repro.errors import CompileError, InternalCompilerError, MinicError
from repro.minic.compiler import compile_program, compile_source

__all__ = [
    "CompileError",
    "InternalCompilerError",
    "MinicError",
    "compile_program",
    "compile_source",
]
