"""Compiler driver: source text -> assembly -> assembled program."""

from __future__ import annotations

from repro.asm import Program, assemble
from repro.minic.codegen import generate
from repro.minic.parser import parse
from repro.minic.sema import analyze


def compile_source(source: str) -> str:
    """Compile mini-C ``source`` to assembly text.

    Raises:
        CompileError: on any lexical, syntactic or semantic error.
    """
    return generate(analyze(parse(source)))


def compile_program(source: str) -> Program:
    """Compile mini-C ``source`` straight to an assembled
    :class:`repro.asm.Program` ready to run on the machine."""
    return assemble(compile_source(source))
