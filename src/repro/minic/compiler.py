"""Compiler driver: source text -> assembly -> assembled program."""

from __future__ import annotations

from repro.asm import Program, assemble
from repro.errors import InternalCompilerError, MinicError
from repro.minic.codegen import generate
from repro.minic.parser import parse
from repro.minic.sema import analyze


def compile_source(source: str) -> str:
    """Compile mini-C ``source`` to assembly text.

    Raises:
        CompileError: on any lexical, syntactic or semantic error.

    Any other exception escaping a compiler pass is a bug in the
    compiler, not the program; it is re-raised as
    :class:`InternalCompilerError` (with the original chained as
    ``__cause__``) so callers only ever see :class:`MinicError`.
    """
    try:
        return generate(analyze(parse(source)))
    except (MinicError, RecursionError, MemoryError, KeyboardInterrupt):
        raise
    except Exception as exc:
        raise InternalCompilerError(
            f"internal error: {type(exc).__name__}: {exc}"
        ) from exc


def compile_program(source: str) -> Program:
    """Compile mini-C ``source`` straight to an assembled
    :class:`repro.asm.Program` ready to run on the machine."""
    return assemble(compile_source(source))
