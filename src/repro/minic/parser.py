"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from repro.errors import CompileError
from repro.minic import astnodes as ast
from repro.minic.lexer import Token, tokenize
from repro.minic.types import Type

#: Binary operator precedence levels, loosest first.
_BINARY_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_ASSIGN_OPS = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
}

_BASE_TYPES = {"int", "float", "char", "void"}


class Parser:
    """Parses a token stream into a :class:`repro.minic.astnodes.Program`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers.
    # ------------------------------------------------------------------

    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, value=None) -> bool:
        token = self._tok
        return token.kind == kind and (value is None or token.value == value)

    def _accept(self, kind: str, value=None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value=None) -> Token:
        token = self._tok
        if not self._check(kind, value):
            want = value if value is not None else kind
            raise CompileError(
                f"expected {want!r}, got {token.text!r}", token.line, token.col
            )
        return self._advance()

    def _error(self, message: str) -> CompileError:
        return CompileError(message, self._tok.line, self._tok.col)

    # ------------------------------------------------------------------
    # Top level.
    # ------------------------------------------------------------------

    def parse(self) -> ast.Program:
        program = ast.Program(line=1)
        while not self._check("eof"):
            self._parse_top_level(program)
        return program

    def _at_type(self) -> bool:
        return self._tok.kind == "kw" and self._tok.value in _BASE_TYPES

    def _parse_type(self) -> Type:
        token = self._expect("kw")
        if token.value not in _BASE_TYPES:
            raise CompileError(
                f"expected a type, got {token.text!r}", token.line,
                token.col
            )
        ptr = 0
        while self._accept("op", "*"):
            ptr += 1
        return Type(token.value, ptr)

    def _parse_top_level(self, program: ast.Program) -> None:
        if not self._at_type():
            raise self._error(f"expected declaration, got {self._tok.text!r}")
        line, col = self._tok.line, self._tok.col
        ty = self._parse_type()
        name = self._expect("name").value
        if self._check("op", "("):
            program.funcs.append(self._parse_func(ty, name, line, col))
        else:
            self._parse_global(program, ty, name, line, col)

    def _parse_global(self, program, ty: Type, name: str, line: int,
                      col: int = 0) -> None:
        while True:
            array_len = None
            if self._accept("op", "["):
                array_len = self._expect("int").value
                self._expect("op", "]")
            init: list[ast.Expr] = []
            if self._accept("op", "="):
                if self._accept("op", "{"):
                    if not self._check("op", "}"):
                        init.append(self._parse_assignment())
                        while self._accept("op", ","):
                            init.append(self._parse_assignment())
                    self._expect("op", "}")
                else:
                    init.append(self._parse_assignment())
            program.globals.append(
                ast.GlobalDecl(
                    name=name, ty=ty, array_len=array_len, init=init,
                    line=line, col=col
                )
            )
            if self._accept("op", ","):
                name = self._expect("name").value
                continue
            self._expect("op", ";")
            return

    def _parse_func(self, ret: Type, name: str, line: int,
                    col: int = 0) -> ast.FuncDef:
        self._expect("op", "(")
        params: list[ast.Param] = []
        if not self._check("op", ")"):
            is_void = self._check("kw", "void")
            if is_void and self._tokens[self._pos + 1].value == ")":
                self._advance()
            else:
                while True:
                    param_line = self._tok.line
                    param_col = self._tok.col
                    param_ty = self._parse_type()
                    param_name = self._expect("name").value
                    params.append(
                        ast.Param(name=param_name, ty=param_ty,
                                  line=param_line, col=param_col)
                    )
                    if not self._accept("op", ","):
                        break
        self._expect("op", ")")
        body = self._parse_block()
        return ast.FuncDef(name=name, ret=ret, params=params, body=body,
                           line=line, col=col)

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        line, col = self._tok.line, self._tok.col
        self._expect("op", "{")
        stmts: list[ast.Stmt] = []
        while not self._check("op", "}"):
            if self._check("eof"):
                raise self._error("unterminated block")
            stmts.append(self._parse_stmt())
        self._expect("op", "}")
        return ast.Block(stmts=stmts, line=line, col=col)

    def _parse_stmt(self) -> ast.Stmt:
        token = self._tok
        line, col = token.line, token.col
        if self._check("op", "{"):
            return self._parse_block()
        if self._check("op", ";"):
            self._advance()
            return ast.Block(stmts=[], line=line, col=col)
        if token.kind == "kw":
            keyword = token.value
            if keyword == "if":
                return self._parse_if()
            if keyword == "while":
                return self._parse_while()
            if keyword == "do":
                return self._parse_do_while()
            if keyword == "for":
                return self._parse_for()
            if keyword == "switch":
                return self._parse_switch()
            if keyword == "break":
                self._advance()
                self._expect("op", ";")
                return ast.Break(line=line, col=col)
            if keyword == "continue":
                self._advance()
                self._expect("op", ";")
                return ast.Continue(line=line, col=col)
            if keyword == "return":
                self._advance()
                value = None
                if not self._check("op", ";"):
                    value = self._parse_expr()
                self._expect("op", ";")
                return ast.Return(value=value, line=line, col=col)
            if keyword in _BASE_TYPES:
                return self._parse_decl()
        expr = self._parse_expr()
        self._expect("op", ";")
        return ast.ExprStmt(expr=expr, line=line, col=col)

    def _parse_decl(self) -> ast.Stmt:
        line, col = self._tok.line, self._tok.col
        base = self._expect("kw").value
        decls: list[ast.Stmt] = []
        while True:
            ptr = 0
            while self._accept("op", "*"):
                ptr += 1
            ty = Type(base, ptr)
            name = self._expect("name").value
            array_len = None
            if self._accept("op", "["):
                array_len = self._expect("int").value
                self._expect("op", "]")
            init = None
            if self._accept("op", "="):
                init = self._parse_assignment()
            decls.append(
                ast.Decl(name=name, ty=ty, array_len=array_len, init=init,
                         line=line, col=col)
            )
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        if len(decls) == 1:
            return decls[0]
        return ast.DeclGroup(decls=decls, line=line, col=col)

    def _parse_switch(self) -> ast.Switch:
        start = self._advance()
        line, col = start.line, start.col
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        self._expect("op", "{")
        cases: list[ast.SwitchCase] = []
        while not self._check("op", "}"):
            token = self._tok
            if self._accept("kw", "case"):
                negative = self._accept("op", "-") is not None
                value_token = self._expect("int")
                value = -value_token.value if negative else value_token.value
                self._expect("op", ":")
                cases.append(ast.SwitchCase(
                    value=value, line=token.line, col=token.col
                ))
            elif self._accept("kw", "default"):
                self._expect("op", ":")
                cases.append(ast.SwitchCase(
                    value=None, line=token.line, col=token.col
                ))
            else:
                if not cases:
                    raise CompileError(
                        "statement before the first case label", token.line,
                        token.col
                    )
                cases[-1].stmts.append(self._parse_stmt())
        self._expect("op", "}")
        return ast.Switch(cond=cond, cases=cases, line=line, col=col)

    def _parse_if(self) -> ast.If:
        start = self._advance()
        line, col = start.line, start.col
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        then = self._parse_stmt()
        orelse = None
        if self._accept("kw", "else"):
            orelse = self._parse_stmt()
        return ast.If(cond=cond, then=then, orelse=orelse, line=line,
                      col=col)

    def _parse_while(self) -> ast.While:
        start = self._advance()
        line, col = start.line, start.col
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        body = self._parse_stmt()
        return ast.While(cond=cond, body=body, line=line, col=col)

    def _parse_do_while(self) -> ast.DoWhile:
        start = self._advance()
        line, col = start.line, start.col
        body = self._parse_stmt()
        self._expect("kw", "while")
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.DoWhile(body=body, cond=cond, line=line, col=col)

    def _parse_for(self) -> ast.For:
        start = self._advance()
        line, col = start.line, start.col
        self._expect("op", "(")
        init: ast.Stmt | None = None
        if not self._check("op", ";"):
            if self._at_type():
                init = self._parse_decl()
                # _parse_decl consumed the ';'
            else:
                init = ast.ExprStmt(expr=self._parse_expr(), line=line,
                                    col=col)
                self._expect("op", ";")
        else:
            self._advance()
        cond = None
        if not self._check("op", ";"):
            cond = self._parse_expr()
        self._expect("op", ";")
        step = None
        if not self._check("op", ")"):
            step = self._parse_expr()
        self._expect("op", ")")
        body = self._parse_stmt()
        return ast.For(init=init, cond=cond, step=step, body=body,
                       line=line, col=col)

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_conditional()
        token = self._tok
        if token.kind == "op" and token.value in _ASSIGN_OPS:
            self._advance()
            rhs = self._parse_assignment()
            return ast.Assign(op=token.value, target=lhs, value=rhs,
                              line=token.line, col=token.col)
        return lhs

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        question = self._accept("op", "?")
        if question is None:
            return cond
        then = self._parse_expr()
        self._expect("op", ":")
        orelse = self._parse_conditional()
        return ast.Conditional(cond=cond, then=then, orelse=orelse,
                               line=question.line, col=question.col)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        lhs = self._parse_binary(level + 1)
        while self._tok.kind == "op" and self._tok.value in ops:
            token = self._advance()
            rhs = self._parse_binary(level + 1)
            lhs = ast.Binary(op=token.value, lhs=lhs, rhs=rhs,
                             line=token.line, col=token.col)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        token = self._tok
        if token.kind == "op":
            op = token.value
            if op in ("-", "!", "~"):
                self._advance()
                return ast.Unary(op=op, operand=self._parse_unary(),
                                 line=token.line, col=token.col)
            if op == "*":
                self._advance()
                return ast.Deref(operand=self._parse_unary(),
                                 line=token.line, col=token.col)
            if op == "&":
                self._advance()
                return ast.AddrOf(operand=self._parse_unary(),
                                  line=token.line, col=token.col)
            if op in ("++", "--"):
                self._advance()
                return ast.IncDec(op=op, target=self._parse_unary(),
                                  prefix=True, line=token.line, col=token.col)
            if op == "+":
                self._advance()
                return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._tok
            if self._accept("op", "["):
                index = self._parse_expr()
                self._expect("op", "]")
                expr = ast.Index(base=expr, index=index,
                                 line=token.line, col=token.col)
            elif self._check("op", "(") and isinstance(expr, ast.Var):
                self._advance()
                args: list[ast.Expr] = []
                if not self._check("op", ")"):
                    args.append(self._parse_assignment())
                    while self._accept("op", ","):
                        args.append(self._parse_assignment())
                self._expect("op", ")")
                expr = ast.Call(name=expr.name, args=args,
                                line=token.line, col=token.col)
            elif self._check("op", "++") or self._check("op", "--"):
                op_token = self._advance()
                expr = ast.IncDec(op=op_token.value, target=expr,
                                  prefix=False, line=op_token.line,
                                  col=op_token.col)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._tok
        if token.kind == "int":
            self._advance()
            return ast.IntLit(value=token.value, line=token.line,
                              col=token.col)
        if token.kind == "float":
            self._advance()
            return ast.FloatLit(value=token.value, line=token.line,
                                col=token.col)
        if token.kind == "string":
            self._advance()
            return ast.StrLit(value=token.value, line=token.line,
                              col=token.col)
        if token.kind == "name":
            self._advance()
            return ast.Var(name=token.value, line=token.line,
                           col=token.col)
        if self._accept("op", "("):
            expr = self._parse_expr()
            self._expect("op", ")")
            return expr
        raise self._error(f"unexpected token: {token.text!r}")


def parse(source: str) -> ast.Program:
    """Parse mini-C ``source`` into an AST."""
    return Parser(tokenize(source)).parse()
