"""Semantic analysis for mini-C.

Resolves names, checks types, and assigns storage.  Scalar locals and
parameters that never have their address taken are allocated to
callee-saved registers ($s0–$s7 for integers and pointers, $f20–$f27
for floats) so the generated code has the register-resident loop
variables of optimised compiler output; everything else lives in the
stack frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.minic import astnodes as ast
from repro.minic.types import CHAR, FLOAT, INT, Type, VOID, common_numeric

#: Callee-saved integer registers available for scalar locals.
S_REGS = tuple(range(16, 24))  # $s0 .. $s7
#: Callee-saved floating-point registers (flat numbering).
F_REGS = tuple(range(32 + 20, 32 + 28))  # $f20 .. $f27

#: Maximum register arguments: 4 integer/pointer ($a0..$a3), 2 float.
MAX_INT_ARGS = 4
MAX_FLOAT_ARGS = 2


@dataclass(slots=True)
class Symbol:
    """A resolved variable."""

    name: str
    ty: Type
    kind: str                      # "local" | "param" | "global"
    array_len: int | None = None
    address_taken: bool = False
    storage: str = ""              # "reg" | "frame" | "global"
    reg: int | None = None         # register number when storage == "reg"
    offset: int | None = None      # $fp-relative when storage == "frame"
    label: str | None = None       # data label when storage == "global"
    param_index: int | None = None

    @property
    def is_array(self) -> bool:
        return self.array_len is not None

    def value_type(self) -> Type:
        """Type of this symbol when used in an expression (arrays decay)."""
        return self.ty.pointer() if self.is_array else self.ty


@dataclass(slots=True)
class Builtin:
    """A built-in function provided by the runtime."""

    name: str
    ret: Type
    params: tuple[Type, ...]


BUILTINS = {
    b.name: b
    for b in (
        Builtin("print_int", VOID, (INT,)),
        Builtin("print_char", VOID, (INT,)),
        Builtin("print_float", VOID, (FLOAT,)),
        Builtin("exit", VOID, (INT,)),
        Builtin("input_word", INT, (INT,)),
        Builtin("input_count", INT, ()),
        Builtin("input_float", FLOAT, (INT,)),
        Builtin("input_float_count", INT, ()),
    )
}


@dataclass(slots=True)
class FuncInfo:
    """Everything the code generator needs about one function."""

    name: str
    ret: Type
    params: list[Symbol] = field(default_factory=list)
    node: ast.FuncDef | None = None
    symbols: list[Symbol] = field(default_factory=list)
    used_s_regs: list[int] = field(default_factory=list)
    used_f_regs: list[int] = field(default_factory=list)
    frame_size: int = 0
    save_area: int = 0             # bytes at the frame top for ra/fp/saves
    has_call: bool = False
    #: promoted constants: ("ga", label) | ("int", v) | ("float", v) -> reg
    const_regs: dict = field(default_factory=dict)


@dataclass(slots=True)
class SemaResult:
    """Output of semantic analysis."""

    program: ast.Program
    globals: dict[str, Symbol] = field(default_factory=dict)
    functions: dict[str, FuncInfo] = field(default_factory=dict)


def _align(value: int, boundary: int) -> int:
    remainder = value % boundary
    return value + (boundary - remainder) if remainder else value


def _children(node: ast.Node):
    """Yield the direct AST children of ``node``."""
    import dataclasses

    for field_info in dataclasses.fields(node):
        value = getattr(node, field_info.name)
        if isinstance(value, ast.Node):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node):
                    yield item


class _FunctionSema:
    """Per-function resolution, type checking and storage assignment."""

    def __init__(self, sema: "Sema", func: ast.FuncDef):
        self.sema = sema
        self.func = func
        self.info = FuncInfo(name=func.name, ret=func.ret, node=func)
        self.scopes: list[dict[str, Symbol]] = []
        self.loop_depth = 0       # gates `continue`
        self.break_depth = 0      # gates `break` (loops and switches)

    # -- scope handling -------------------------------------------------

    def _push(self) -> None:
        self.scopes.append({})

    def _pop(self) -> None:
        self.scopes.pop()

    def _declare(self, name, ty, kind, array_len, line,
                 col=0) -> Symbol:
        scope = self.scopes[-1]
        if name in scope:
            raise CompileError(f"duplicate declaration of {name!r}",
                               line, col)
        if ty.is_void and not ty.is_pointer:
            raise CompileError(f"variable {name!r} cannot be void",
                               line, col)
        symbol = Symbol(name=name, ty=ty, kind=kind, array_len=array_len)
        scope[name] = symbol
        self.info.symbols.append(symbol)
        return symbol

    def _lookup(self, name: str, line: int, col: int = 0) -> Symbol:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        symbol = self.sema.globals.get(name)
        if symbol is None:
            raise CompileError(f"undefined variable {name!r}", line, col)
        return symbol

    # -- driver ----------------------------------------------------------

    def run(self) -> FuncInfo:
        func = self.func
        self._push()
        int_args = 0
        float_args = 0
        for index, param in enumerate(func.params):
            if param.ty.is_float:
                float_args += 1
                if float_args > MAX_FLOAT_ARGS:
                    raise CompileError(
                        f"{func.name}: more than {MAX_FLOAT_ARGS} float "
                        "parameters are not supported",
                        param.line, param.col,
                    )
            else:
                int_args += 1
                if int_args > MAX_INT_ARGS:
                    raise CompileError(
                        f"{func.name}: more than {MAX_INT_ARGS} integer "
                        "parameters are not supported",
                        param.line, param.col,
                    )
            symbol = self._declare(param.name, param.ty, "param", None,
                                   param.line, param.col)
            symbol.param_index = index
            self.info.params.append(symbol)
        self._stmt(func.body)
        self._pop()
        self._assign_storage()
        return self.info

    # -- statements -------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._push()
            for child in stmt.stmts:
                self._stmt(child)
            self._pop()
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self._stmt(decl)
        elif isinstance(stmt, ast.Decl):
            if stmt.array_len is not None and stmt.array_len <= 0:
                raise CompileError("array length must be positive",
                                   stmt.line, stmt.col)
            if stmt.init is not None:
                if stmt.array_len is not None:
                    raise CompileError(
                        "local arrays cannot have initialisers",
                        stmt.line, stmt.col
                    )
                init_ty = self._expr(stmt.init)
                self._check_assignable(stmt.ty, init_ty, stmt.line, stmt.col)
            stmt.sym = self._declare(
                stmt.name, stmt.ty, "local", stmt.array_len,
                stmt.line, stmt.col
            )
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._condition(stmt.cond)
            self._stmt(stmt.then)
            if stmt.orelse is not None:
                self._stmt(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._condition(stmt.cond)
            self.loop_depth += 1
            self.break_depth += 1
            self._stmt(stmt.body)
            self.loop_depth -= 1
            self.break_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self.loop_depth += 1
            self.break_depth += 1
            self._stmt(stmt.body)
            self.loop_depth -= 1
            self.break_depth -= 1
            self._condition(stmt.cond)
        elif isinstance(stmt, ast.For):
            self._push()
            if stmt.init is not None:
                self._stmt(stmt.init)
            if stmt.cond is not None:
                self._condition(stmt.cond)
            if stmt.step is not None:
                self._expr(stmt.step)
            self.loop_depth += 1
            self.break_depth += 1
            self._stmt(stmt.body)
            self.loop_depth -= 1
            self.break_depth -= 1
            self._pop()
        elif isinstance(stmt, ast.Switch):
            self._switch(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.break_depth:
                raise CompileError("break outside a loop or switch",
                                   stmt.line, stmt.col)
        elif isinstance(stmt, ast.Continue):
            if not self.loop_depth:
                raise CompileError("continue outside a loop",
                                   stmt.line, stmt.col)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                if not self.info.ret.is_void:
                    raise CompileError(
                        f"{self.func.name} must return a value",
                        stmt.line, stmt.col
                    )
            else:
                if self.info.ret.is_void:
                    raise CompileError(
                        f"{self.func.name} returns void", stmt.line, stmt.col
                    )
                value_ty = self._expr(stmt.value)
                self._check_assignable(self.info.ret, value_ty,
                                       stmt.line, stmt.col)
        else:
            raise CompileError(f"unhandled statement {type(stmt).__name__}",
                               stmt.line, stmt.col)

    def _switch(self, stmt: ast.Switch) -> None:
        cond_ty = self._expr(stmt.cond)
        if not cond_ty.is_integral:
            raise CompileError("switch condition must be an integer",
                               stmt.line, stmt.col)
        seen_values: set[int] = set()
        defaults = 0
        for case in stmt.cases:
            if case.value is None:
                defaults += 1
                if defaults > 1:
                    raise CompileError("multiple default labels",
                                       case.line, case.col)
            else:
                if case.value in seen_values:
                    raise CompileError(
                        f"duplicate case value {case.value}",
                        case.line, case.col
                    )
                seen_values.add(case.value)
        self.break_depth += 1
        self._push()
        for case in stmt.cases:
            for child in case.stmts:
                self._stmt(child)
        self._pop()
        self.break_depth -= 1

    def _condition(self, expr: ast.Expr) -> None:
        ty = self._expr(expr)
        if ty.is_void:
            raise CompileError("condition cannot be void", expr.line, expr.col)

    # -- expressions -------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> Type:
        ty = self._expr_inner(expr)
        expr.ty = ty
        return ty

    def _expr_inner(self, expr: ast.Expr) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.StrLit):
            return CHAR.pointer()
        if isinstance(expr, ast.Var):
            symbol = self._lookup(expr.name, expr.line, expr.col)
            expr.sym = symbol
            return symbol.value_type()
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Deref):
            inner = self._expr(expr.operand)
            if not inner.is_pointer:
                raise CompileError("cannot dereference a non-pointer",
                                   expr.line, expr.col)
            element = inner.element()
            if element.is_void:
                raise CompileError("cannot dereference void*",
                                   expr.line, expr.col)
            return element
        if isinstance(expr, ast.AddrOf):
            return self._addr_of(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Conditional):
            return self._conditional(expr)
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        if isinstance(expr, ast.IncDec):
            target_ty = self._lvalue(expr.target)
            if not (target_ty.is_integral or target_ty.is_pointer):
                raise CompileError("++/-- needs an integer or pointer",
                                   expr.line, expr.col)
            return target_ty
        if isinstance(expr, ast.Index):
            base_ty = self._expr(expr.base)
            if not base_ty.is_pointer:
                raise CompileError("indexing a non-pointer",
                                   expr.line, expr.col)
            index_ty = self._expr(expr.index)
            if not index_ty.is_integral:
                raise CompileError("array index must be an integer",
                                   expr.line, expr.col)
            element = base_ty.element()
            if element.is_void:
                raise CompileError("cannot index void*", expr.line, expr.col)
            return element
        if isinstance(expr, ast.Call):
            return self._call(expr)
        raise CompileError(f"unhandled expression {type(expr).__name__}",
                           expr.line, expr.col)

    def _unary(self, expr: ast.Unary) -> Type:
        inner = self._expr(expr.operand)
        if expr.op == "-":
            if inner.is_float:
                return FLOAT
            if inner.is_integral:
                return INT
            raise CompileError("unary - needs a number", expr.line, expr.col)
        if expr.op == "!":
            if inner.is_void:
                raise CompileError("! needs a scalar", expr.line, expr.col)
            return INT
        if expr.op == "~":
            if not inner.is_integral:
                raise CompileError("~ needs an integer", expr.line, expr.col)
            return INT
        raise CompileError(f"unknown unary operator {expr.op!r}",
                           expr.line, expr.col)

    def _addr_of(self, expr: ast.AddrOf) -> Type:
        operand = expr.operand
        if isinstance(operand, ast.Var):
            symbol = self._lookup(operand.name, operand.line, operand.col)
            operand.sym = symbol
            symbol.address_taken = True
            if symbol.is_array:
                operand.ty = symbol.value_type()
                return symbol.value_type()
            operand.ty = symbol.ty
            return symbol.ty.pointer()
        if isinstance(operand, ast.Index):
            element = self._expr(operand)
            return element.pointer()
        if isinstance(operand, ast.Deref):
            return self._expr(operand.operand)
        raise CompileError("& needs an lvalue", expr.line, expr.col)

    def _binary(self, expr: ast.Binary) -> Type:
        op = expr.op
        lhs = self._expr(expr.lhs)
        rhs = self._expr(expr.rhs)
        if op in ("&&", "||"):
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lhs.is_pointer and rhs.is_pointer:
                return INT
            if (lhs.is_integral or lhs.is_float) and (
                rhs.is_integral or rhs.is_float
            ):
                return INT
            raise CompileError(f"cannot compare {lhs} and {rhs}",
                               expr.line, expr.col)
        if op in ("&", "|", "^", "<<", ">>", "%"):
            if not (lhs.is_integral and rhs.is_integral):
                raise CompileError(f"{op} needs integers", expr.line, expr.col)
            return INT
        if op in ("+", "-"):
            if lhs.is_pointer and rhs.is_integral:
                return lhs
            if op == "+" and lhs.is_integral and rhs.is_pointer:
                return rhs
            if op == "-" and lhs.is_pointer and rhs.is_pointer:
                if lhs != rhs:
                    raise CompileError("pointer subtraction of different "
                                       "types", expr.line, expr.col)
                return INT
        if op in ("+", "-", "*", "/"):
            if (lhs.is_integral or lhs.is_float) and (
                rhs.is_integral or rhs.is_float
            ):
                return common_numeric(lhs, rhs)
            raise CompileError(f"{op} needs numbers", expr.line, expr.col)
        raise CompileError(f"unknown binary operator {op!r}",
                           expr.line, expr.col)

    def _conditional(self, expr: ast.Conditional) -> Type:
        self._condition(expr.cond)
        then_ty = self._expr(expr.then)
        else_ty = self._expr(expr.orelse)
        if then_ty == else_ty:
            return then_ty
        if (then_ty.is_integral or then_ty.is_float) and (
            else_ty.is_integral or else_ty.is_float
        ):
            return common_numeric(then_ty, else_ty)
        raise CompileError(
            f"incompatible ?: arms: {then_ty} and {else_ty}",
            expr.line, expr.col
        )

    def _assign(self, expr: ast.Assign) -> Type:
        target_ty = self._lvalue(expr.target)
        value_ty = self._expr(expr.value)
        if expr.op == "=":
            self._check_assignable(target_ty, value_ty, expr.line, expr.col)
            return target_ty
        base_op = expr.op[:-1]
        if base_op in ("&", "|", "^", "<<", ">>", "%"):
            if not (target_ty.is_integral and value_ty.is_integral):
                raise CompileError(f"{expr.op} needs integers",
                                   expr.line, expr.col)
            return target_ty
        if target_ty.is_pointer:
            if base_op in ("+", "-") and value_ty.is_integral:
                return target_ty
            raise CompileError(f"{expr.op} invalid on a pointer",
                               expr.line, expr.col)
        if not (target_ty.is_integral or target_ty.is_float):
            raise CompileError(f"{expr.op} needs a numeric target",
                               expr.line, expr.col)
        if not (value_ty.is_integral or value_ty.is_float):
            raise CompileError(f"{expr.op} needs a numeric value",
                               expr.line, expr.col)
        return target_ty

    def _lvalue(self, expr: ast.Expr) -> Type:
        if isinstance(expr, ast.Var):
            ty = self._expr(expr)
            if expr.sym.is_array:
                raise CompileError("cannot assign to an array",
                                   expr.line, expr.col)
            return ty
        if isinstance(expr, (ast.Deref, ast.Index)):
            return self._expr(expr)
        raise CompileError("not an lvalue", expr.line, expr.col)

    def _check_assignable(self, target: Type, value: Type, line: int,
                          col: int = 0) -> None:
        if target == value:
            return
        if (target.is_integral or target.is_float) and (
            value.is_integral or value.is_float
        ):
            return  # implicit numeric conversion
        if target.is_pointer and value.is_pointer:
            if target.element().is_void or value.element().is_void:
                return
            if target.base == value.base and target.ptr == value.ptr:
                return
        raise CompileError(f"cannot assign {value} to {target}",
                           line, col)

    def _call(self, expr: ast.Call) -> Type:
        name = expr.name
        builtin = BUILTINS.get(name)
        if builtin is not None:
            self.info.has_call = True
            if len(expr.args) != len(builtin.params):
                raise CompileError(
                    f"{name} expects {len(builtin.params)} argument(s)",
                    expr.line, expr.col,
                )
            for arg, param_ty in zip(expr.args, builtin.params):
                arg_ty = self._expr(arg)
                self._check_assignable(param_ty, arg_ty, expr.line, expr.col)
            return builtin.ret
        signature = self.sema.signatures.get(name)
        if signature is None:
            raise CompileError(f"call to undefined function {name!r}",
                               expr.line, expr.col)
        ret, param_types = signature
        if len(expr.args) != len(param_types):
            raise CompileError(
                f"{name} expects {len(param_types)} argument(s)",
                expr.line, expr.col
            )
        for arg, param_ty in zip(expr.args, param_types):
            arg_ty = self._expr(arg)
            self._check_assignable(param_ty, arg_ty, expr.line, expr.col)
        self.info.has_call = True
        return ret

    # -- storage assignment -------------------------------------------------

    def _assign_storage(self) -> None:
        info = self.info
        s_pool = list(S_REGS)
        f_pool = list(F_REGS)
        self._promote_constants(s_pool, f_pool)
        frame_offset = 0
        for symbol in info.symbols:
            register_ok = (
                not symbol.is_array
                and not symbol.address_taken
            )
            if register_ok and symbol.ty.is_float and f_pool:
                symbol.storage = "reg"
                symbol.reg = f_pool.pop(0)
                info.used_f_regs.append(symbol.reg)
                continue
            if register_ok and not symbol.ty.is_float and s_pool:
                symbol.storage = "reg"
                symbol.reg = s_pool.pop(0)
                info.used_s_regs.append(symbol.reg)
                continue
            # Frame slot.
            if symbol.is_array:
                element_size = symbol.ty.size()
                size = element_size * symbol.array_len
                alignment = 8 if symbol.ty.is_float else 4
            else:
                size = max(symbol.ty.size(), 4)
                alignment = 8 if symbol.ty.is_float else 4
            frame_offset = _align(frame_offset, alignment)
            symbol.storage = "frame"
            symbol.offset = frame_offset
            frame_offset += size
        save = 8  # $ra + caller's $fp
        save += 4 * len(info.used_s_regs)
        save = _align(save, 8)
        save += 8 * len(info.used_f_regs)
        info.save_area = save
        info.frame_size = _align(frame_offset, 8) + save
        # Locals occupy [0, frame_size - save); saves sit at the top.

    # -- constant register promotion ------------------------------------------
    #
    # An optimising compiler keeps hot loop-invariant constants -- global
    # addresses, large literals, floating-point constants -- in registers
    # instead of re-materialising them on every use.  This matters for
    # the predictability model: a constant loaded once and *reused*
    # creates the repeated-use <n,p> generate arcs the paper attributes
    # to control flow, whereas per-use `li`/`la` sequences show up as
    # all-immediate node generates.  Constants are function-level
    # invariant by definition, so promotion needs no safety analysis.

    MAX_CONST_REGS = 4
    MIN_CONST_USES = 2

    def _promote_constants(self, s_pool: list[int], f_pool: list[int]) -> None:
        from collections import Counter

        counts: Counter = Counter()
        self._collect_consts(self.func.body, counts, 1)
        int_candidates = [
            (count, key) for key, count in counts.items()
            if key[0] != "float" and count >= self.MIN_CONST_USES
        ]
        float_candidates = [
            (count, key) for key, count in counts.items()
            if key[0] == "float" and count >= self.MIN_CONST_USES
        ]
        info = self.info
        for count, key in sorted(int_candidates, reverse=True)[
            : self.MAX_CONST_REGS
        ]:
            if not s_pool:
                break
            reg = s_pool.pop(0)
            info.const_regs[key] = reg
            info.used_s_regs.append(reg)
        for count, key in sorted(float_candidates, reverse=True)[
            : self.MAX_CONST_REGS
        ]:
            if not f_pool:
                break
            reg = f_pool.pop(0)
            info.const_regs[key] = reg
            info.used_f_regs.append(reg)

    #: Assumed trip count when weighting uses by loop depth.
    LOOP_WEIGHT = 8

    def _collect_consts(self, node, counts, weight: int) -> None:
        """Count promotable-constant uses below ``node``.

        Uses are weighted by loop depth (x8 per level, capped), the
        way a register allocator prioritises loop-resident values.
        """
        from repro.isa.layout import (
            INPUT_BASE,
            INPUT_FLOAT_BASE,
            INPUT_FLOAT_LEN_ADDR,
            INPUT_LEN_ADDR,
        )

        if node is None:
            return
        if isinstance(node, ast.Var):
            symbol = node.sym
            if symbol is not None and symbol.kind == "global":
                counts[("ga", symbol.label)] += weight
            return
        if isinstance(node, ast.IntLit):
            if not -32768 <= node.value <= 0xFFFF:
                counts[("int", node.value & 0xFFFFFFFF)] += weight
            return
        if isinstance(node, ast.FloatLit):
            counts[("float", node.value)] += weight
            return
        if isinstance(node, ast.Call):
            base = {
                "input_word": INPUT_BASE,
                "input_float": INPUT_FLOAT_BASE,
                "input_count": INPUT_LEN_ADDR,
                "input_float_count": INPUT_FLOAT_LEN_ADDR,
            }.get(node.name)
            if base is not None:
                counts[("int", base)] += weight
            for arg in node.args:
                self._collect_consts(arg, counts, weight)
            return
        if isinstance(node, (ast.While, ast.DoWhile, ast.For)):
            inner = min(weight * self.LOOP_WEIGHT, 1 << 20)
            if isinstance(node, ast.For) and node.init is not None:
                self._collect_consts(node.init, counts, weight)
            for child in _children(node):
                if isinstance(node, ast.For) and child is node.init:
                    continue
                self._collect_consts(child, counts, inner)
            return
        for child in _children(node):
            self._collect_consts(child, counts, weight)


class Sema:
    """Whole-program semantic analysis."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.globals: dict[str, Symbol] = {}
        self.signatures: dict[str, tuple[Type, tuple[Type, ...]]] = {}

    def run(self) -> SemaResult:
        program = self.program
        result = SemaResult(program=program)
        for decl in program.globals:
            self._global(decl)
        for func in program.funcs:
            if func.name in self.signatures or func.name in BUILTINS:
                raise CompileError(
                    f"duplicate function {func.name!r}", func.line, func.col
                )
            if func.name in self.globals:
                raise CompileError(
                    f"{func.name!r} is already a global variable",
                    func.line, func.col
                )
            self.signatures[func.name] = (
                func.ret,
                tuple(param.ty for param in func.params),
            )
        if "main" not in self.signatures:
            raise CompileError("program has no main function")
        for func in program.funcs:
            result.functions[func.name] = _FunctionSema(self, func).run()
        result.globals = self.globals
        return result

    def _global(self, decl: ast.GlobalDecl) -> None:
        if decl.name in self.globals or decl.name in BUILTINS:
            raise CompileError(f"duplicate global {decl.name!r}",
                               decl.line, decl.col)
        if decl.ty.is_void and not decl.ty.is_pointer:
            raise CompileError("global cannot be void", decl.line, decl.col)
        for init in decl.init:
            self._check_const(init, decl.ty, decl)
        if decl.array_len is None and len(decl.init) > 1:
            raise CompileError("scalar global with list initialiser",
                               decl.line, decl.col)
        if decl.array_len is not None and len(decl.init) > decl.array_len:
            raise CompileError("too many initialisers", decl.line, decl.col)
        symbol = Symbol(
            name=decl.name,
            ty=decl.ty,
            kind="global",
            array_len=decl.array_len,
            storage="global",
            label=f"g_{decl.name}",
        )
        decl.sym = symbol
        self.globals[decl.name] = symbol

    def _check_const(self, expr: ast.Expr, ty: Type, decl) -> None:
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            expr.ty = FLOAT if isinstance(expr, ast.FloatLit) else INT
            return
        if isinstance(expr, ast.Unary) and expr.op == "-" and isinstance(
            expr.operand, (ast.IntLit, ast.FloatLit)
        ):
            return
        if isinstance(expr, ast.StrLit) and ty.is_pointer:
            return
        raise CompileError(
            f"global {decl.name!r} initialiser must be a constant literal",
            decl.line, decl.col,
        )


def analyze(program: ast.Program) -> SemaResult:
    """Run semantic analysis over a parsed program."""
    return Sema(program).run()
