"""Abstract syntax tree for mini-C.

Nodes are plain dataclasses.  The semantic pass
(:mod:`repro.minic.sema`) annotates expression nodes with ``ty`` (a
:class:`repro.minic.types.Type`) and name references with their
resolved :class:`~repro.minic.sema.Symbol`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minic.types import Type


@dataclass(slots=True)
class Node:
    line: int = field(default=0, kw_only=True)
    #: 1-based source column (0 = unknown); carried into diagnostics.
    col: int = field(default=0, kw_only=True)


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------

@dataclass(slots=True)
class Expr(Node):
    #: filled in by sema
    ty: Type | None = field(default=None, kw_only=True)


@dataclass(slots=True)
class IntLit(Expr):
    value: int = 0


@dataclass(slots=True)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(slots=True)
class StrLit(Expr):
    value: str = ""


@dataclass(slots=True)
class Var(Expr):
    name: str = ""
    sym: object = field(default=None, kw_only=True)  # Symbol, from sema


@dataclass(slots=True)
class Unary(Expr):
    """Prefix operators: ``-``, ``!``, ``~``."""

    op: str = ""
    operand: Expr | None = None


@dataclass(slots=True)
class AddrOf(Expr):
    operand: Expr | None = None


@dataclass(slots=True)
class Deref(Expr):
    operand: Expr | None = None


@dataclass(slots=True)
class Binary(Expr):
    op: str = ""
    lhs: Expr | None = None
    rhs: Expr | None = None


@dataclass(slots=True)
class Conditional(Expr):
    """The ternary operator ``cond ? then : orelse``."""

    cond: Expr | None = None
    then: Expr | None = None
    orelse: Expr | None = None


@dataclass(slots=True)
class Assign(Expr):
    """``target op= value``; plain assignment has ``op == "="``."""

    op: str = "="
    target: Expr | None = None
    value: Expr | None = None


@dataclass(slots=True)
class IncDec(Expr):
    """``++x`` / ``x++`` / ``--x`` / ``x--``."""

    op: str = "++"
    target: Expr | None = None
    prefix: bool = True


@dataclass(slots=True)
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass(slots=True)
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------

@dataclass(slots=True)
class Stmt(Node):
    pass


@dataclass(slots=True)
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass(slots=True)
class Decl(Stmt):
    """A local variable declaration, possibly an array."""

    name: str = ""
    ty: Type | None = None
    array_len: int | None = None
    init: Expr | None = None
    sym: object = field(default=None, kw_only=True)


@dataclass(slots=True)
class DeclGroup(Stmt):
    """Several declarations from one statement (``int i, j = 0;``);
    unlike a Block, introduces no scope."""

    decls: list[Decl] = field(default_factory=list)


@dataclass(slots=True)
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    orelse: Stmt | None = None


@dataclass(slots=True)
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass(slots=True)
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass(slots=True)
class For(Stmt):
    init: Stmt | None = None       # ExprStmt, Decl or None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass(slots=True)
class SwitchCase(Node):
    """One ``case value:`` (or ``default:`` when value is None) arm;
    bodies fall through to the next arm unless they break."""

    value: int | None = None
    stmts: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class Switch(Stmt):
    cond: Expr | None = None
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass(slots=True)
class Break(Stmt):
    pass


@dataclass(slots=True)
class Continue(Stmt):
    pass


@dataclass(slots=True)
class Return(Stmt):
    value: Expr | None = None


# ----------------------------------------------------------------------
# Top level.
# ----------------------------------------------------------------------

@dataclass(slots=True)
class Param(Node):
    name: str = ""
    ty: Type | None = None


@dataclass(slots=True)
class FuncDef(Node):
    name: str = ""
    ret: Type | None = None
    params: list[Param] = field(default_factory=list)
    body: Block | None = None


@dataclass(slots=True)
class GlobalDecl(Node):
    name: str = ""
    ty: Type | None = None
    array_len: int | None = None
    init: list[Expr] = field(default_factory=list)  # scalar: one element
    sym: object = field(default=None, kw_only=True)


@dataclass(slots=True)
class Program(Node):
    globals: list[GlobalDecl] = field(default_factory=list)
    funcs: list[FuncDef] = field(default_factory=list)
