"""The span/counter recorder at the heart of :mod:`repro.obs`.

One process-wide *current recorder* is consulted by every
instrumented call site (:func:`get_recorder`).  By default it is the
:data:`NULL_RECORDER` — a no-op object whose ``span``/``count`` calls
cost one attribute lookup and one function call, so instrumentation
left in hot paths is free when observation is off.  Installing a real
:class:`Recorder` (directly, via :func:`recording`, or through
``repro.api.configure(observe=...)``) turns the same call sites into
live measurement.

Two primitives:

* **spans** — hierarchical wall + CPU timers.  ``rec.span("analyze")``
  is a context manager; nested spans build a tree.  The
  :func:`spanned` decorator wraps a whole function in a span and
  resolves the current recorder at *call* time, so decorated code
  observes whatever recorder is installed when it runs.
* **counters / gauges** — a flat registry of monotonically added
  counts (``rec.count("sim.instructions", n)``) and last-value gauges
  (``rec.gauge("store.bytes", size)``).

:meth:`Recorder.snapshot` freezes everything into a JSON-safe
*profile* dict (the structure the exporters in
:mod:`repro.obs.export` consume); :meth:`Recorder.merge` folds such a
snapshot back in, which is how profiles recorded inside pool worker
processes are combined into the parent's recorder.

**Thread-safety** (the analysis server runs the runner from concurrent
executor threads): counter/gauge updates, merges and snapshots are
guarded by a per-recorder lock, and each thread keeps its *own* span
stack — spans opened by different threads nest correctly within their
thread and land as separate roots/children rather than corrupting one
shared stack.  Installing/replacing the process-wide recorder
(:func:`set_recorder`) is an atomic swap under a module lock.  The one
caveat that remains: the current recorder is process-global, so enter
a :func:`recording` context *before* fanning work out to threads (the
threads then all report into it), not per-thread.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass

from repro.obs.export import encode_labels


@dataclass(frozen=True)
class ObsConfig:
    """How observation should run for a runner / facade session.

    Attributes:
        enabled: master switch; ``False`` behaves exactly like no
            observation at all.
        events_path: when set, every finished run appends its profile
            to this file as JSON-lines events
            (:func:`repro.obs.export.write_jsonl`).
    """

    enabled: bool = True
    events_path: str | None = None


class Span:
    """One timed region: name, wall/CPU seconds, child spans."""

    __slots__ = ("name", "wall", "cpu", "children", "_t0", "_c0")

    def __init__(self, name: str):
        self.name = name
        self.wall = 0.0
        self.cpu = 0.0
        self.children: list[Span] = []

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall": self.wall,
            "cpu": self.cpu,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(payload["name"])
        span.wall = payload.get("wall", 0.0)
        span.cpu = payload.get("cpu", 0.0)
        span.children = [
            cls.from_dict(child) for child in payload.get("children", ())
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, wall={self.wall:.6f}, "
                f"cpu={self.cpu:.6f}, children={len(self.children)})")


class _SpanHandle:
    """Context manager binding one :class:`Span` into a recorder."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "Recorder", name: str):
        self._recorder = recorder
        self._span = Span(name)

    def __enter__(self) -> Span:
        recorder = self._recorder
        span = self._span
        stack = recorder._stack
        parent = stack[-1] if stack else None
        if parent is not None:
            # The parent span is open on *this* thread's stack, so its
            # children list is only ever touched from here.
            parent.children.append(span)
        else:
            with recorder._lock:
                recorder.roots.append(span)
        stack.append(span)
        span._c0 = time.process_time()
        span._t0 = time.perf_counter()
        return span

    def __exit__(self, *exc) -> bool:
        span = self._span
        span.wall += time.perf_counter() - span._t0
        span.cpu += time.process_time() - span._c0
        stack = self._recorder._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # tolerate out-of-order exits (generators, error paths)
            try:
                stack.remove(span)
            except ValueError:
                pass
        return False


class _NullSpanHandle:
    """The do-nothing span handed out by the :class:`NullRecorder`."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpanHandle()


class NullRecorder:
    """No-op recorder: the process default when observation is off.

    Shares the :class:`Recorder` surface; every method is a stub, so
    instrumented call sites never need an ``if observing:`` guard.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str):
        return _NULL_SPAN

    def count(self, name: str, n: int | float = 1,
              labels: dict | None = None) -> None:
        pass

    def gauge(self, name: str, value, labels: dict | None = None) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "spans": []}

    def merge(self, profile: dict) -> None:
        pass


#: The shared no-op recorder (there is never a reason for a second).
NULL_RECORDER = NullRecorder()


class Recorder:
    """Live recorder: hierarchical spans plus counter/gauge registry.

    Safe to report into from multiple threads: counters/gauges/merges
    are lock-guarded and the span stack is thread-local (each thread
    nests its own spans; cross-thread spans become separate roots).
    """

    enabled = True

    def __init__(self):
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, float] = {}
        self.roots: list[Span] = []
        #: total primitive calls made against this recorder; the
        #: overhead-guard test uses it to bound disabled-mode cost.
        self.calls = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # Primitives.
    # ------------------------------------------------------------------

    def span(self, name: str) -> _SpanHandle:
        """A context manager timing ``name`` (wall + CPU, nested)."""
        self.calls += 1
        return _SpanHandle(self, name)

    def count(self, name: str, n: int | float = 1,
              labels: dict | None = None) -> None:
        """Add ``n`` to counter ``name`` (created at 0).

        ``labels`` folds into the stored name in the canonical
        ``name{key="value",...}`` form (sorted keys, escaped values —
        :func:`repro.obs.export.encode_labels`), giving the counter a
        per-label-set dimension in every exporter."""
        self.calls += 1
        if labels:
            name = encode_labels(name, labels)
        with self._lock:
            counters = self.counters
            counters[name] = counters.get(name, 0) + n

    def gauge(self, name: str, value, labels: dict | None = None) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.calls += 1
        if labels:
            name = encode_labels(name, labels)
        with self._lock:
            self.gauges[name] = value

    # ------------------------------------------------------------------
    # Snapshots.
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Freeze the recorded state into a JSON-safe profile dict."""
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "gauges": dict(sorted(self.gauges.items())),
                "spans": [span.to_dict() for span in self.roots],
            }

    def merge(self, profile: dict) -> None:
        """Fold a profile snapshot into this recorder.

        Counters add, gauges overwrite, and the snapshot's span trees
        attach under the calling thread's currently open span (or as
        new roots) — this is how worker-process profiles join the
        parent's timeline.
        """
        spans = [Span.from_dict(d) for d in profile.get("spans", ())]
        stack = self._stack
        with self._lock:
            for name, value in profile.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, value in profile.get("gauges", {}).items():
                self.gauges[name] = value
            if spans:
                target = stack[-1].children if stack else self.roots
                target.extend(spans)


# ----------------------------------------------------------------------
# The process-wide current recorder.
# ----------------------------------------------------------------------

_CURRENT: Recorder | NullRecorder = NULL_RECORDER

#: Guards the swap in :func:`set_recorder` so concurrent installers
#: each see a consistent "previous" recorder to restore.
_CURRENT_LOCK = threading.Lock()


def get_recorder() -> Recorder | NullRecorder:
    """The currently installed recorder (the no-op one by default)."""
    return _CURRENT


def set_recorder(recorder: Recorder | NullRecorder | None):
    """Install ``recorder`` (None = the no-op default); returns the
    previously installed one so callers can restore it.  The swap is
    atomic: two threads installing concurrently never read the same
    "previous" recorder (which would lose one of them on restore)."""
    global _CURRENT
    with _CURRENT_LOCK:
        previous = _CURRENT
        _CURRENT = recorder if recorder is not None else NULL_RECORDER
        return previous


class _RecordingContext:
    """Context manager installing a recorder for a dynamic extent."""

    __slots__ = ("_recorder", "_previous")

    def __init__(self, recorder):
        self._recorder = (recorder if recorder is not None
                          else NULL_RECORDER)

    def __enter__(self):
        self._previous = set_recorder(self._recorder)
        return self._recorder

    def __exit__(self, *exc) -> bool:
        set_recorder(self._previous)
        return False


def recording(recorder: Recorder | NullRecorder | None = None):
    """``with recording(Recorder()) as rec: ...`` — install ``rec``
    for the block (a fresh :class:`Recorder` when None is passed would
    be ambiguous, so None installs the no-op recorder instead)."""
    return _RecordingContext(recorder)


def spanned(name: str | None = None):
    """Decorator wrapping a function in a span on the *current*
    recorder — resolved per call, so it honours whatever
    :func:`recording` context the call runs under::

        @spanned("report.render")
        def render(...): ...
    """

    def decorate(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _CURRENT.span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
