"""Profile exporters and renderers.

A *profile* is the JSON-safe dict a :class:`repro.obs.Recorder`
snapshot produces::

    {"counters": {...}, "gauges": {...}, "spans": [<span tree>, ...]}

Three output forms:

* **JSON-lines events** (:func:`to_jsonl` / :func:`from_jsonl`) — one
  event object per line (counters, gauges, then spans in pre-order
  with an explicit ``depth``), loss-free in both directions so a
  profile can be shipped through a log pipeline and reconstructed;
* **Prometheus text** (:func:`to_prometheus`) — valid exposition
  format (text format 0.0.4, what ``GET /metrics`` must serve to be
  scrapeable): counters and gauges as ``repro_<name>`` samples with
  dots sanitised to underscores and ``# HELP``/``# TYPE`` lines per
  family, span time aggregated per span name into
  ``repro_span_wall_seconds`` / ``repro_span_cpu_seconds`` /
  ``repro_span_calls`` with an escaped ``{span="..."}`` label
  (``legacy=True`` reproduces the pre-service output: no HELP lines,
  profile-order counters, unescaped labels);
* **human text** (:func:`render_profile`) — the span tree with
  sibling spans of the same name aggregated, plus the counter table;
  what ``python -m repro stats`` and ``--profile`` print.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

#: Event-stream schema version (the ``meta`` line of a JSONL export).
EVENTS_VERSION = 1

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")

#: A counter/gauge name carrying encoded labels: ``base{k="v",...}``.
_LABELED_NAME = re.compile(r"^(?P<base>[^{]+)\{(?P<labels>.*)\}$")
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_.]*)="((?:[^"\\]|\\.)*)"')


# ----------------------------------------------------------------------
# Labelled metric names.
# ----------------------------------------------------------------------

def encode_labels(name: str, labels: dict | None = None) -> str:
    """Fold ``labels`` into a canonical metric name.

    ``encode_labels("qos.requests", {"tenant": "alice"})`` →
    ``'qos.requests{tenant="alice"}'``.  Keys are sorted and values
    escaped, so equal label sets always produce the same string — the
    recorder stores labelled counters under these names directly,
    which keeps the JSONL round trip free (labelled names are opaque
    there) while :func:`to_prometheus` splits them back into
    per-family samples.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_prom_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


def decode_labels(name: str) -> tuple[str, dict]:
    """Inverse of :func:`encode_labels`: ``(base name, labels)``.

    Unlabelled names come back untouched with an empty dict.
    """
    match = _LABELED_NAME.match(name)
    if match is None:
        return name, {}
    labels = {
        key: _prom_unescape(value)
        for key, value in _LABEL_PAIR.findall(match["labels"])
    }
    return match["base"], labels


def _prom_unescape(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


# ----------------------------------------------------------------------
# JSON-lines events.
# ----------------------------------------------------------------------

def iter_events(profile: dict):
    """Yield the profile as JSON-safe event dicts (see :func:`to_jsonl`)."""
    yield {"type": "meta", "version": EVENTS_VERSION}
    for name, value in profile.get("counters", {}).items():
        yield {"type": "counter", "name": name, "value": value}
    for name, value in profile.get("gauges", {}).items():
        yield {"type": "gauge", "name": name, "value": value}

    def walk(span: dict, depth: int):
        yield {
            "type": "span",
            "name": span["name"],
            "depth": depth,
            "wall": span.get("wall", 0.0),
            "cpu": span.get("cpu", 0.0),
        }
        for child in span.get("children", ()):
            yield from walk(child, depth + 1)

    for root in profile.get("spans", ()):
        yield from walk(root, 0)


def to_jsonl(profile: dict) -> str:
    """Serialise ``profile`` as one JSON event per line."""
    return "\n".join(
        json.dumps(event, sort_keys=True) for event in iter_events(profile)
    ) + "\n"


def from_jsonl(text: str) -> dict:
    """Rebuild a profile dict from :func:`to_jsonl` output.

    Exact inverse for any profile produced by a recorder snapshot:
    counters, gauges and the full span tree (reconstructed from the
    pre-order ``depth`` fields) survive the round trip.
    """
    profile: dict = {"counters": {}, "gauges": {}, "spans": []}
    stack: list[dict] = []  # open spans by depth
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        kind = event.get("type")
        if kind == "counter":
            name = event["name"]
            profile["counters"][name] = (
                profile["counters"].get(name, 0) + event["value"]
            )
        elif kind == "gauge":
            profile["gauges"][event["name"]] = event["value"]
        elif kind == "span":
            span = {
                "name": event["name"],
                "wall": event.get("wall", 0.0),
                "cpu": event.get("cpu", 0.0),
                "children": [],
            }
            depth = event.get("depth", 0)
            del stack[depth:]
            if depth == 0:
                profile["spans"].append(span)
            else:
                stack[depth - 1]["children"].append(span)
            stack.append(span)
    return profile


def write_jsonl(profile: dict, path, append: bool = True) -> Path:
    """Write (or append) the profile's event stream to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a" if append else "w") as handle:
        handle.write(to_jsonl(profile))
    return path


# ----------------------------------------------------------------------
# Prometheus-style text.
# ----------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """Sanitise a dotted counter/gauge name into a valid metric name.

    Dots (the obs namespace separator) and every other character
    outside ``[a-zA-Z0-9_]`` become underscores; the ``repro_`` prefix
    guarantees the result never starts with a digit.
    """
    return "repro_" + _PROM_BAD.sub("_", name)


def _prom_label(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _prom_value(value) -> str:
    """Render a sample value (integers stay integral)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


def aggregate_spans(spans, totals: dict | None = None) -> dict:
    """Flatten a span forest into ``name -> {wall, cpu, calls}``.

    Every span in the tree contributes to its own name's bucket;
    nesting is preserved elsewhere (this is the exporter view, where a
    flat per-name total is what a scraper wants).
    """
    if totals is None:
        totals = {}
    for span in spans:
        bucket = totals.setdefault(
            span["name"], {"wall": 0.0, "cpu": 0.0, "calls": 0}
        )
        bucket["wall"] += span.get("wall", 0.0)
        bucket["cpu"] += span.get("cpu", 0.0)
        bucket["calls"] += 1
        aggregate_spans(span.get("children", ()), totals)
    return totals


def to_prometheus(profile: dict, legacy: bool = False) -> str:
    """Render the profile in Prometheus exposition format.

    The default output is scrapeable text format 0.0.4: every metric
    family gets one ``# HELP`` and one ``# TYPE`` line, names are
    sanitised (dots → underscores), families are sorted, and label
    values are escaped.  ``legacy=True`` keeps the pre-service output
    (no HELP lines, counters in profile order, raw labels) for anything
    that parsed the old dump line-by-line.
    """
    if legacy:
        return _to_prometheus_legacy(profile)
    lines: list[str] = []

    def family(metric: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")

    def emit_registry(registry: dict, kind: str, suffix: str) -> None:
        # Group labelled names (``base{k="v"}``) into one family each:
        # HELP/TYPE once, then every label set as its own sample.
        families: dict[str, list[tuple[str, object]]] = {}
        bases: dict[str, str] = {}
        for name, value in registry.items():
            base, labels = decode_labels(name)
            metric = _prom_name(base) + suffix
            labelled = ""
            if labels:
                labelled = "{" + ",".join(
                    f'{_PROM_BAD.sub("_", key)}="{_prom_label(str(val))}"'
                    for key, val in sorted(labels.items())
                ) + "}"
            families.setdefault(metric, []).append((labelled, value))
            bases.setdefault(metric, base)
        for metric in sorted(families):
            family(metric, kind,
                   f"repro.obs {kind} {_prom_label(bases[metric])}.")
            for labelled, value in sorted(families[metric]):
                lines.append(f"{metric}{labelled} {_prom_value(value)}")

    emit_registry(profile.get("counters", {}), "counter", "_total")
    emit_registry(profile.get("gauges", {}), "gauge", "")
    totals = aggregate_spans(profile.get("spans", ()))
    if totals:
        span_families = (
            ("repro_span_wall_seconds", "Wall-clock seconds per span name.",
             lambda b: f"{b['wall']:.6f}"),
            ("repro_span_cpu_seconds", "CPU seconds per span name.",
             lambda b: f"{b['cpu']:.6f}"),
            ("repro_span_calls", "Times each span name was entered.",
             lambda b: str(b["calls"])),
        )
        for metric, help_text, render in span_families:
            family(metric, "gauge", help_text)
            for name, bucket in sorted(totals.items()):
                lines.append(
                    f'{metric}{{span="{_prom_label(name)}"}} '
                    f"{render(bucket)}"
                )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str):
    """Parse exposition text into ``(family, labels, value)`` samples.

    The inverse, at the sample level, of :func:`to_prometheus` — what
    ``repro qos report`` uses to read a live server's ``/metrics``
    back.  Comment/HELP/TYPE lines and malformed samples are skipped;
    family names stay in their sanitised wire form (reconstructing
    dotted names from underscores would be ambiguous).
    """
    samples = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, __, tail = line.rpartition(" ")
        if not head:
            continue
        try:
            value = float(tail)
        except ValueError:
            continue
        base, labels = decode_labels(head)
        samples.append((base, labels, value))
    return samples


def _to_prometheus_legacy(profile: dict) -> str:
    """The pre-service dump (kept verbatim for line-oriented parsers)."""
    lines: list[str] = []
    for name, value in profile.get("counters", {}).items():
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in profile.get("gauges", {}).items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    totals = aggregate_spans(profile.get("spans", ()))
    if totals:
        lines.append("# TYPE repro_span_wall_seconds gauge")
        for name, bucket in sorted(totals.items()):
            lines.append(
                f'repro_span_wall_seconds{{span="{name}"}} '
                f"{bucket['wall']:.6f}"
            )
        lines.append("# TYPE repro_span_cpu_seconds gauge")
        for name, bucket in sorted(totals.items()):
            lines.append(
                f'repro_span_cpu_seconds{{span="{name}"}} '
                f"{bucket['cpu']:.6f}"
            )
        lines.append("# TYPE repro_span_calls gauge")
        for name, bucket in sorted(totals.items()):
            lines.append(
                f'repro_span_calls{{span="{name}"}} {bucket["calls"]}'
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Human rendering.
# ----------------------------------------------------------------------

def _merge_siblings(spans) -> list[dict]:
    """Aggregate same-named siblings (recursively) for display."""
    merged: dict[str, dict] = {}
    for span in spans:
        bucket = merged.setdefault(span["name"], {
            "name": span["name"], "wall": 0.0, "cpu": 0.0, "calls": 0,
            "children": [],
        })
        bucket["wall"] += span.get("wall", 0.0)
        bucket["cpu"] += span.get("cpu", 0.0)
        bucket["calls"] += 1
        bucket["children"].extend(span.get("children", ()))
    for bucket in merged.values():
        bucket["children"] = _merge_siblings(bucket["children"])
    return list(merged.values())


def render_profile(profile: dict, max_counters: int | None = None) -> str:
    """Human-readable profile: span tree plus the counter table."""
    lines: list[str] = []
    merged = _merge_siblings(profile.get("spans", ()))
    if merged:
        lines.append(f"{'span':<42} {'calls':>6} {'wall':>10} {'cpu':>10}")
        lines.append("-" * 71)

        def emit(buckets, depth):
            for bucket in buckets:
                label = "  " * depth + bucket["name"]
                lines.append(
                    f"{label:<42} {bucket['calls']:>6} "
                    f"{bucket['wall']:>9.3f}s {bucket['cpu']:>9.3f}s"
                )
                emit(bucket["children"], depth + 1)

        emit(merged, 0)
    counters = profile.get("counters", {})
    if counters:
        if lines:
            lines.append("")
        lines.append(f"{'counter':<48} {'value':>15}")
        lines.append("-" * 64)
        items = sorted(counters.items())
        if max_counters is not None:
            items = items[:max_counters]
        for name, value in items:
            lines.append(f"{name:<48} {value:>15,}")
    gauges = profile.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':<48} {'value':>15}")
        lines.append("-" * 64)
        for name, value in sorted(gauges.items()):
            lines.append(f"{name:<48} {value:>15}")
    if not lines:
        return "(empty profile)"
    return "\n".join(lines)
