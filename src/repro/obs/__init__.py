"""repro.obs — observability: spans, counters and profiling hooks.

The instrumentation layer every other subsystem reports into:

* the **recorder** (:mod:`repro.obs.recorder`) — a hierarchical span
  timer (wall + CPU) plus a counter/gauge registry, with a process-wide
  *current recorder* that defaults to a no-op implementation so the
  instrumented hot paths cost nothing when observation is off;
* the **exporters** (:mod:`repro.obs.export`) — JSON-lines event logs,
  Prometheus-style text dumps, and the human rendering used by
  ``python -m repro stats`` and the ``--profile`` CLI flag.

Instrumented layers (see docs/observability.md for the span/counter
catalogue): the simulator (``sim.*``), trace codec (``trace.*``),
analyzer (``analyze.*``), stores (``store.*``), pool (``pool.*``) and
runner resolution tiers (``runner.*``).

Enable observation through the facade::

    from repro import api
    api.configure(observe=True)
    result = api.run_workload("com")
    print(result.profile["counters"]["sim.instructions"])

or scoped, library-style::

    from repro.obs import Recorder, recording

    with recording(Recorder()) as rec:
        api.analyze(source)
    print(rec.snapshot())
"""

from repro.obs.export import (
    aggregate_spans,
    decode_labels,
    encode_labels,
    from_jsonl,
    iter_events,
    parse_prometheus,
    render_profile,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    ObsConfig,
    Recorder,
    Span,
    get_recorder,
    recording,
    set_recorder,
    spanned,
)

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "ObsConfig",
    "Recorder",
    "Span",
    "aggregate_spans",
    "decode_labels",
    "encode_labels",
    "from_jsonl",
    "get_recorder",
    "iter_events",
    "parse_prometheus",
    "recording",
    "render_profile",
    "set_recorder",
    "spanned",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
]
