"""Contiguous fully-predictable instruction sequences (paper §4.6).

These statistics are *not* dependence-based: they scan the dynamic
instruction stream and measure maximal runs of consecutive instructions
whose inputs and outputs were all predicted correctly.  Instructions
with no data inputs and no predictable output (direct jumps, nops) are
vacuously predictable and neither break nor start a run on their own —
``all()`` of an empty set is True — matching an implementation that
inspects only actual predictions.
"""

from __future__ import annotations

from repro.core.stats import SequenceStats


class SequenceTracker:
    """Tracks maximal runs of fully predicted instructions."""

    def __init__(self):
        self.stats = SequenceStats()
        self._run = 0

    def on_node(self, fully_predicted: bool) -> None:
        """Feed the next dynamic instruction's verdict."""
        if fully_predicted:
            self._run += 1
        else:
            if self._run:
                self.stats.add_run(self._run)
            self._run = 0

    def finalize(self) -> None:
        """Close the trailing run at end of trace."""
        if self._run:
            self.stats.add_run(self._run)
        self._run = 0
