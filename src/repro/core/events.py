"""Label taxonomy for nodes and arcs of the dynamic prediction graph.

Terminology follows the paper exactly:

* Every **arc** gets a pair ``<x,y>`` with ``x,y ∈ {p,n}``: whether the
  producer's output was predicted correctly when produced, and whether
  the consumer's source operand was predicted correctly when consumed.
  Arcs from ``D`` (input-data) nodes always have ``x = n``.
* Every **node** is summarised by the *kinds* of its inputs — ``p`` (at
  least one correctly predicted data input), ``n`` (at least one
  incorrectly predicted data input), ``i`` (an immediate, including
  zero-register reads) — and by whether its own output was predicted.

Behaviour definitions (Fig. 2 of the paper):

* **generation**: no correctly predicted inputs, output predicted;
* **propagation**: ≥1 correctly predicted input, output predicted;
* **termination**: ≥1 correctly predicted input, output not predicted;
* otherwise the element propagates *unpredictability*.
"""

from __future__ import annotations

import enum


class Behavior(enum.IntEnum):
    """Predictability behaviour of a node or arc."""

    GENERATE = 0
    PROPAGATE = 1
    TERMINATE = 2
    UNPRED = 3    #: all-unpredicted inputs and output ("missing portion")
    OTHER = 4     #: no predictable output at all (e.g. direct jumps)


# ----------------------------------------------------------------------
# Arc labels.  Encoded as (x_predicted << 1) | y_predicted.
# ----------------------------------------------------------------------

ARC_NN = 0  #: <n,n> — propagates unpredictability
ARC_NP = 1  #: <n,p> — generates predictability
ARC_PN = 2  #: <p,n> — terminates predictability
ARC_PP = 3  #: <p,p> — propagates predictability

ARC_LABELS = ("<n,n>", "<n,p>", "<p,n>", "<p,p>")

ARC_BEHAVIOR = (
    Behavior.UNPRED,     # nn
    Behavior.GENERATE,   # np
    Behavior.TERMINATE,  # pn
    Behavior.PROPAGATE,  # pp
)


def arc_code(x_predicted: bool, y_predicted: bool) -> int:
    """Encode an arc's ``<x,y>`` label as a 2-bit code."""
    return ((2 if x_predicted else 0) | (1 if y_predicted else 0))


# ----------------------------------------------------------------------
# Arc use classes (Section 2: single-use vs repeated-use control flow).
# ----------------------------------------------------------------------

class UseClass(enum.IntEnum):
    """How many arcs carry this producer instance's value to instances
    of the same static consumer, and what kind of producer it is."""

    SINGLE = 0      #: "1"  — single-use arc
    REPEAT = 1      #: "r"  — repeated-use, ordinary producer
    WRITE_ONCE = 2  #: "wl" — repeated-use, producer executes once ever
    DATA = 3        #: "rd" — repeated-use of a D (program input) node

USE_NAMES = ("1", "r", "wl", "rd")


# ----------------------------------------------------------------------
# Node input-kind labels.  Index = (has_p << 2) | (has_n << 1) | has_i.
# ----------------------------------------------------------------------

class InKind(enum.IntEnum):
    """Canonical two-letter input summary of a node."""

    PP = 0  #: all data inputs predicted, no immediate
    PI = 1  #: predicted data input(s) plus immediate
    PN = 2  #: mixed predicted and unpredicted inputs (± immediate)
    NN = 3  #: only unpredicted data inputs
    IN = 4  #: unpredicted data input(s) plus immediate
    II = 5  #: immediates only (no data inputs)

IN_KIND_NAMES = ("p,p", "p,i", "p,n", "n,n", "i,n", "i,i")

#: Lookup: (has_p << 2) | (has_n << 1) | has_i  ->  InKind.
#: Nodes with no inputs and no immediate are folded into II; the only
#: such nodes with outputs would be exotic hand-written code.
_KIND_TABLE = (
    InKind.II,  # 000
    InKind.II,  # 001
    InKind.NN,  # 010
    InKind.IN,  # 011
    InKind.PP,  # 100
    InKind.PI,  # 101
    InKind.PN,  # 110
    InKind.PN,  # 111 (three-kind nodes cannot generate; folded, see DESIGN)
)


def in_kind(has_p: bool, has_n: bool, has_i: bool) -> InKind:
    """Canonical input-kind label from the three input-kind flags."""
    return _KIND_TABLE[
        (4 if has_p else 0) | (2 if has_n else 0) | (1 if has_i else 0)
    ]


def node_class_name(kind: InKind, out_predicted: bool) -> str:
    """Human-readable node class, e.g. ``"i,i->p"``."""
    return f"{IN_KIND_NAMES[kind]}->{'p' if out_predicted else 'n'}"


def node_behavior(kind: InKind, out_predicted: bool) -> Behavior:
    """Behaviour of a node with the given input kind and output flag."""
    has_p = kind in (InKind.PP, InKind.PI, InKind.PN)
    if out_predicted:
        return Behavior.PROPAGATE if has_p else Behavior.GENERATE
    return Behavior.TERMINATE if has_p else Behavior.UNPRED


# ----------------------------------------------------------------------
# Generator classes for path analysis (Section 4.5).
# ----------------------------------------------------------------------

class GenClass(enum.IntEnum):
    """The six generator classes the paper's path analysis uses."""

    C = 0  #: control flow: <r:n,p> and <1:n,p> arcs
    D = 1  #: program input data: <rd:n,p> arcs
    W = 2  #: write-once: <wl:n,p> arcs
    I = 3  #: nodes with all-immediate inputs (i,i->p)
    N = 4  #: nodes with all inputs unpredictable (n,n->p)
    M = 5  #: nodes with mixed immediate/unpredictable inputs (i,n->p)

GEN_CLASS_NAMES = ("C", "D", "W", "I", "N", "M")


def gen_mask_name(mask: int) -> str:
    """Readable name for a set of generator classes, e.g. ``"CI"``."""
    if not mask:
        return "-"
    return "".join(
        name for bit, name in enumerate(GEN_CLASS_NAMES) if mask & (1 << bit)
    )
