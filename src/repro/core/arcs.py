"""Deferred single-use / repeated-use arc resolution.

The paper classifies an arc as *repeated-use* when one dynamic producer
instance passes its value to multiple dynamic instances of the same
static consumer, and *single-use* otherwise.  That property is not
known when the arc occurs — the producer's value may be consumed again
by the same static instruction much later — so arc label counts are
grouped by (producer instance, consumer static instruction) and only
folded into :class:`~repro.core.stats.ArcStats` when the trace ends.

Write-once classification (producer's static instruction executes
exactly once in the entire run) likewise uses the final static
execution counts, available at flush time.

Group keys are packed into single integers to keep the (potentially
multi-million-entry) tables cheap: most groups contain exactly one arc,
so a group is promoted from the ``combo-code`` fast path to a full
counter only on its second arc.
"""

from __future__ import annotations

from repro.core.events import UseClass
from repro.core.stats import ArcStats


class ArcGroupTable:
    """Accumulates arc label events grouped by use-group key.

    Args:
        n_static: number of static instructions (for key packing).
        n_predictors: number of predictor banks whose ``<x,y>`` codes
            are interleaved into each arc's combo code (2 bits each).
    """

    def __init__(self, n_static: int, n_predictors: int):
        self.n_static = max(n_static, 1)
        self.n_predictors = n_predictors
        self._single: dict[int, int] = {}
        self._multi: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------------
    # Key packing.
    # ------------------------------------------------------------------

    def key(self, producer_uid: int, producer_pc: int, consumer_pc: int) -> int:
        """Group key for an arc from a real producer instance."""
        n = self.n_static
        return (producer_uid * n + producer_pc) * n + consumer_pc

    def d_key(self, data_id: int, consumer_pc: int) -> int:
        """Group key for an arc from a ``D`` (input-data) node."""
        return -(data_id * self.n_static + consumer_pc) - 1

    # ------------------------------------------------------------------
    # Accumulation.
    # ------------------------------------------------------------------

    def add(self, key: int, combo: int) -> None:
        """Record one arc with the given interleaved ``<x,y>`` codes."""
        multi = self._multi.get(key)
        if multi is not None:
            multi[combo] = multi.get(combo, 0) + 1
            return
        single = self._single
        first = single.pop(key, None)
        if first is None:
            single[key] = combo
        else:
            counts = {first: 1}
            counts[combo] = counts.get(combo, 0) + 1
            self._multi[key] = counts

    def groups(self) -> int:
        """Number of distinct use groups seen so far."""
        return len(self._single) + len(self._multi)

    # ------------------------------------------------------------------
    # Flush.
    # ------------------------------------------------------------------

    def flush(self, static_counts, arc_stats: list[ArcStats]) -> None:
        """Fold all groups into per-predictor :class:`ArcStats`.

        Args:
            static_counts: final per-PC execution counts, used for the
                write-once test.
            arc_stats: one :class:`ArcStats` per predictor bank, in the
                same order the combo codes were interleaved.
        """
        n = self.n_static
        n_pred = self.n_predictors
        for key, combo in self._single.items():
            use = self._use_class(key, 1, static_counts, n)
            for bank in range(n_pred):
                arc_stats[bank].add(use, (combo >> (2 * bank)) & 3)
        for key, counts in self._multi.items():
            size = sum(counts.values())
            use = self._use_class(key, size, static_counts, n)
            for combo, count in counts.items():
                for bank in range(n_pred):
                    arc_stats[bank].add(use, (combo >> (2 * bank)) & 3, count)

    @staticmethod
    def _use_class(key: int, group_size: int, static_counts, n: int) -> UseClass:
        if group_size == 1:
            return UseClass.SINGLE
        if key < 0:
            return UseClass.DATA
        producer_pc = (key // n) % n
        if static_counts[producer_pc] == 1:
            return UseClass.WRITE_ONCE
        return UseClass.REPEAT
