"""Branch predictability study (paper Section 5).

Conditional branch *directions* are predicted by gshare; the branch's
*input values* by the value predictors.  Crossing the two reveals the
paper's headline observation: slightly over half of all branch
mispredictions happen when every input value was correctly predicted —
which is the motivation for feeding data values into branch predictors.
"""

from __future__ import annotations

from repro.core.events import InKind
from repro.core.stats import BranchStats

#: Class presentation order used by the paper's Fig. 13 x-axis.
FIG13_ORDER = (
    (InKind.PP, True), (InKind.PI, True), (InKind.PN, True),
    (InKind.NN, True), (InKind.IN, True), (InKind.II, True),
    (InKind.PP, False), (InKind.PI, False), (InKind.PN, False),
    (InKind.NN, False), (InKind.IN, False), (InKind.II, False),
)


class BranchTracker:
    """Accumulates branch-node classifications for one predictor."""

    def __init__(self):
        self.stats = BranchStats()

    def on_branch(self, kind: InKind, direction_predicted: bool) -> None:
        self.stats.add(kind, direction_predicted)

    def mispredicted_with_predictable_inputs(self) -> int:
        """Branches mispredicted although all inputs were predictable
        (the ``p,p->n`` and ``p,i->n`` classes)."""
        stats = self.stats
        return stats.count(InKind.PP, False) + stats.count(InKind.PI, False)
