"""The paper's predictability model.

This package implements the dynamic-prediction-graph (DPG) model of
Sazeides & Smith: streaming classification of every dynamic instruction
(node) and true dependence (arc) into *generation*, *propagation* and
*termination* of predictability, plus the paper's path/tree analysis,
predictable-sequence statistics and branch study.

Entry points:

* :func:`analyze_machine` / :func:`analyze_trace` — full streaming
  analysis of a workload trace under all configured predictors.
* :func:`build_dpg` — explicit (networkx) DPG for small traces.
"""

from repro.core.analysis import (
    AnalysisConfig,
    Analyzer,
    analyze_machine,
    analyze_many,
    analyze_trace,
)
from repro.core.dpg import behavior_counts, build_dpg, classify_uses
from repro.core.export import to_dot, to_records
from repro.core.kernel import (
    AnalysisEngine,
    KernelUnsupportedError,
    TraceColumns,
    columnar_unsupported,
    get_default_engine,
    set_default_engine,
)
from repro.core.events import (
    ARC_LABELS,
    Behavior,
    GenClass,
    InKind,
    UseClass,
    arc_code,
    gen_mask_name,
    in_kind,
    node_behavior,
    node_class_name,
)
from repro.core.unpred import CriticalPoints, CriticalSite, UnpredTracker
from repro.core.stats import (
    AnalysisResult,
    ArcStats,
    BranchStats,
    NodeStats,
    PathStats,
    PredictorResult,
    SequenceStats,
    TreeStats,
)

__all__ = [
    "ARC_LABELS",
    "AnalysisConfig",
    "AnalysisEngine",
    "AnalysisResult",
    "Analyzer",
    "KernelUnsupportedError",
    "TraceColumns",
    "columnar_unsupported",
    "get_default_engine",
    "set_default_engine",
    "ArcStats",
    "Behavior",
    "BranchStats",
    "GenClass",
    "InKind",
    "NodeStats",
    "PathStats",
    "PredictorResult",
    "SequenceStats",
    "TreeStats",
    "UseClass",
    "CriticalPoints",
    "CriticalSite",
    "UnpredTracker",
    "analyze_machine",
    "analyze_many",
    "analyze_trace",
    "arc_code",
    "to_dot",
    "to_records",
    "behavior_counts",
    "build_dpg",
    "classify_uses",
    "gen_mask_name",
    "in_kind",
    "node_behavior",
    "node_class_name",
]
