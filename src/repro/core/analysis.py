"""Streaming predictability analysis — the model's main driver.

:class:`Analyzer` consumes a dynamic trace once and produces every
statistic the paper's evaluation reports: node and arc classifications
(Figs. 5–8), path/tree analysis (Figs. 9–11), predictable sequences
(Fig. 12), branch behaviour (Fig. 13) and the DPG characteristics of
Table 1 — for all configured predictors simultaneously.

The prediction protocol follows Section 3 of the paper:

* separate, identical predictors for inputs (keyed by consumer PC and
  operand slot) and outputs (keyed by producer PC);
* conditional branch directions predicted by one shared gshare;
* memory instructions and register-indirect jumps pass their input's
  predictability through to their output and never touch the output
  predictor (so they can never generate);
* predictors are updated immediately after each prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice

from repro.core.arcs import ArcGroupTable
from repro.core.branches import BranchTracker
from repro.core.events import GenClass, InKind, in_kind
from repro.core.kernel import (
    AnalysisEngine,
    TraceColumns,
    analyze_columns,
    analyze_columns_many,
    resolve_engine,
)
from repro.core.paths import PathTracker
from repro.core.sequences import SequenceTracker
from repro.core.stats import AnalysisResult, NodeStats, PredictorResult
from repro.core.reuse import ReuseTracker
from repro.core.unpred import CriticalPoints, UnpredTracker
from repro.cpu.trace import DynInst
from repro.isa.opcodes import Category
from repro.obs import get_recorder
from repro.predictors import PredictorBank, make_branch_predictor
from repro.predictors.base import PREDICTOR_KINDS


@dataclass(slots=True)
class AnalysisConfig:
    """Knobs for one analysis run.

    Attributes:
        predictors: value-predictor kinds to run side by side.
        track_paths: enable generator-class path analysis (Fig. 9).
        trees_for: predictor kinds that additionally track per-generate
            trees, influence counts and distances (Figs. 10/11) — the
            memory-hungry part; the paper shows these for the
            context-based predictor.
        gen_cap: cap on generator ids carried per value (tree tracking).
        gshare_bits: index bits of the branch predictor (64K = 16).
        branch_predictor: direction-predictor kind — ``"gshare"`` (the
            paper's choice) or ``"local"`` (the two-level alternative
            the paper suggests in Section 3).
        track_sequences: enable Fig. 12 statistics.
        track_branches: enable Fig. 13 statistics.
        track_unpred: track fully-mispredicted instruction runs (the
            Section 6 unpredictability view).
        track_critical: attribute terminations to static instructions
            ("critical points for prediction").
        track_ops: attribute node classes to opcodes (verifies the
            paper's "mostly compare/logical/shift" style claims).
        track_reuse: run a Sodani/Sohi-style instruction reuse buffer
            alongside the analysis (Section 6's reuse/memoization
            suggestion); the overlap is measured against the *first*
            configured predictor.
        reuse_ways: reuse-buffer entries per static instruction.
        max_instructions: truncate the trace after this many dynamic
            instructions (None = run the workload to completion).
    """

    predictors: tuple[str, ...] = PREDICTOR_KINDS
    track_paths: bool = True
    trees_for: tuple[str, ...] = ("context",)
    gen_cap: int = 64
    gshare_bits: int = 16
    branch_predictor: str = "gshare"
    track_sequences: bool = True
    track_branches: bool = True
    track_unpred: bool = True
    track_critical: bool = True
    track_ops: bool = True
    track_reuse: bool = False
    reuse_ways: int = 4
    max_instructions: int | None = None


class Analyzer:
    """One-pass streaming analysis over a dynamic trace.

    Args:
        n_static: number of static instructions in the program.
        config: analysis configuration.
        profile_counts: optional whole-run static execution counts from
            a prior profiling pass.  Used to classify write-once
            generates *online* during path analysis; without it the
            count-so-far approximation is used (arc statistics are
            always exact — they are resolved at flush time).
    """

    def __init__(
        self,
        n_static: int,
        config: AnalysisConfig | None = None,
        profile_counts=None,
    ):
        self.config = config or AnalysisConfig()
        cfg = self.config
        self._n_static = max(n_static, 1)
        self._banks = [PredictorBank(kind) for kind in cfg.predictors]
        # Bound-method fast paths: one call per prediction instead of a
        # wrapper hop (the analyzer makes ~5 predictions per node).
        self._see_inputs = [bank.inputs.see for bank in self._banks]
        self._see_outputs = [bank.outputs.see for bank in self._banks]
        self._nk = len(self._banks)
        self._full_mask = (1 << self._nk) - 1
        self._gshare = make_branch_predictor(
            cfg.branch_predictor, cfg.gshare_bits
        )
        self._arc_table = ArcGroupTable(self._n_static, self._nk)
        self._node_stats = [NodeStats() for _ in self._banks]
        self._running_counts = [0] * self._n_static
        self._wl_counts = (
            profile_counts if profile_counts is not None
            else self._running_counts
        )
        self._path_trackers = None
        if cfg.track_paths:
            self._path_trackers = [
                PathTracker(
                    track_trees=bank.kind in cfg.trees_for,
                    gen_cap=cfg.gen_cap,
                )
                for bank in self._banks
            ]
        self._seq_trackers = (
            [SequenceTracker() for _ in self._banks]
            if cfg.track_sequences else None
        )
        self._branch_trackers = (
            [BranchTracker() for _ in self._banks]
            if cfg.track_branches else None
        )
        self._unpred_trackers = (
            [UnpredTracker() for _ in self._banks]
            if cfg.track_unpred else None
        )
        self._critical = (
            [CriticalPoints(self._n_static) for _ in self._banks]
            if cfg.track_critical else None
        )
        self._reuse = (
            ReuseTracker(ways=cfg.reuse_ways)
            if cfg.track_reuse else None
        )
        from collections import Counter as _Counter
        self._node_ops = (
            [_Counter() for _ in self._banks] if cfg.track_ops else None
        )
        self._out_flags = bytearray()
        self._d_nodes: set[int] = set()
        self._d_arcs = 0
        self._node_count = 0
        self._arc_count = 0
        # combo_table[xbits][ybits] -> interleaved per-bank <x,y> codes.
        size = 1 << self._nk
        self._combo_table = [
            [
                sum(
                    ((((x >> k) & 1) << 1) | ((y >> k) & 1)) << (2 * k)
                    for k in range(self._nk)
                )
                for y in range(size)
            ]
            for x in range(size)
        ]

    # ------------------------------------------------------------------
    # Streaming.
    # ------------------------------------------------------------------

    def feed(self, dyn: DynInst) -> None:
        """Process the next dynamic instruction of the trace."""
        pc = dyn.pc
        srcs = dyn.srcs
        banks = self._banks
        nk = self._nk
        full_mask = self._full_mask
        self._node_count += 1
        self._running_counts[pc] += 1

        # --- input predictions -----------------------------------------
        see_inputs = self._see_inputs
        y_list = []
        union_y = 0
        inter_y = full_mask
        for slot, src in enumerate(srcs):
            value = src.value
            key = (pc << 2) | slot
            ybits = 0
            bit = 1
            for see in see_inputs:
                if see(key, value):
                    ybits |= bit
                bit <<= 1
            y_list.append(ybits)
            union_y |= ybits
            inter_y &= ybits

        # --- output prediction -------------------------------------------
        category = dyn.category
        passthrough = dyn.passthrough
        if category is Category.BRANCH:
            direction_ok = self._gshare.see(pc, dyn.taken)
            outbits = full_mask if direction_ok else 0
            has_out = True
        elif dyn.out is None:
            outbits = 0
            has_out = False
        elif passthrough is not None:
            outbits = y_list[passthrough]
            has_out = True
        elif category in (Category.LOAD, Category.STORE, Category.JUMP_REG):
            # Pass-through instruction whose data input is an immediate
            # (e.g. ``sw $zero``): a constant, unpredicted output.
            outbits = 0
            has_out = True
        else:
            out_value = dyn.out
            outbits = 0
            bit = 1
            for see in self._see_outputs:
                if see(pc, out_value):
                    outbits |= bit
                bit <<= 1
            has_out = True
        self._out_flags.append(outbits)

        # --- arcs ----------------------------------------------------------
        x_list = []
        if srcs:
            n = self._n_static
            arc_add = self._arc_table.add
            out_flags = self._out_flags
            combo_table = self._combo_table
            for slot, src in enumerate(srcs):
                producer = src.producer
                if producer is None:
                    self._d_arcs += 1
                    data_id = src.d_key()
                    self._d_nodes.add(data_id)
                    key = -(data_id * n + pc) - 1
                    xbits = 0
                else:
                    xbits = out_flags[producer]
                    key = (producer * n + src.producer_pc) * n + pc
                arc_add(key, combo_table[xbits][y_list[slot]])
                x_list.append(xbits)
            self._arc_count += len(srcs)

        # --- per-predictor node classification and trackers ----------------
        has_imm = dyn.has_imm
        n_srcs = len(srcs)
        is_branch = category is Category.BRANCH
        path_trackers = self._path_trackers
        seq_trackers = self._seq_trackers
        wl_counts = self._wl_counts
        for k in range(nk):
            bit = 1 << k
            has_p = (union_y & bit) != 0
            has_n = n_srcs > 0 and (inter_y & bit) == 0
            kind = in_kind(has_p, has_n, has_imm)
            out_p = (outbits & bit) != 0
            if has_out:
                self._node_stats[k].add(kind, out_p)
                if self._node_ops is not None:
                    self._node_ops[k][(kind, out_p, dyn.op)] += 1
            else:
                self._node_stats[k].no_output += 1
            if is_branch and self._branch_trackers is not None:
                self._branch_trackers[k].on_branch(kind, out_p)
            if seq_trackers is not None:
                fully = ((inter_y & bit) != 0 or n_srcs == 0) and (
                    not has_out or out_p
                )
                seq_trackers[k].on_node(fully)
            if self._unpred_trackers is not None:
                fully_un = (
                    (union_y & bit) == 0
                    and not ((outbits & bit) != 0 and has_out)
                    and (n_srcs > 0 or has_out)
                )
                self._unpred_trackers[k].on_node(fully_un)
            if self._critical is not None and has_out and not out_p:
                self._critical[k].record(pc, terminated=has_p)
            if self._reuse is not None and k == 0:
                reuse_predicted = ((inter_y & bit) != 0 or n_srcs == 0) \
                    and (not has_out or out_p)
                self._reuse.on_node(dyn, reuse_predicted)
            if path_trackers is not None:
                tracker = path_trackers[k]
                tracker.begin_node()
                for slot in range(n_srcs):
                    if not (y_list[slot] & bit):
                        continue
                    if x_list[slot] & bit:
                        tracker.feed_propagate_arc(srcs[slot].producer)
                    else:
                        src = srcs[slot]
                        if src.producer is None:
                            gen_class = GenClass.D
                        elif wl_counts[src.producer_pc] == 1:
                            gen_class = GenClass.W
                        else:
                            gen_class = GenClass.C
                        tracker.feed_generate_arc(gen_class)
                if has_out:
                    tracker.end_node(out_p, kind)
                else:
                    tracker.skip_node()

    # ------------------------------------------------------------------
    # Finalisation.
    # ------------------------------------------------------------------

    def finalize(self, name: str, static_counts=None) -> AnalysisResult:
        """Flush deferred state and build the :class:`AnalysisResult`.

        Args:
            name: workload name recorded in the result.
            static_counts: final per-PC execution counts; defaults to
                the analyzer's own running counts (exact whenever the
                whole trace passed through this analyzer).
        """
        if static_counts is None:
            static_counts = self._running_counts
        arc_stats = []
        result = AnalysisResult(
            name=name,
            nodes=self._node_count,
            arcs=self._arc_count,
            d_nodes=len(self._d_nodes),
            d_arcs=self._d_arcs,
            static_instructions=self._n_static,
            static_counts=list(static_counts),
        )
        recorder = get_recorder()
        if recorder.enabled:
            recorder.count("analyze.passes", 1)
            recorder.count("analyze.nodes", self._node_count)
            recorder.count("analyze.arcs", self._arc_count)
            for k, bank in enumerate(self._banks):
                for behavior, n in (
                    self._node_stats[k].behavior_counts().items()
                ):
                    if n:
                        recorder.count(
                            f"analyze.pred.{bank.kind}."
                            f"{behavior.name.lower()}", n,
                        )
        for k, bank in enumerate(self._banks):
            pred = PredictorResult(kind=bank.kind, nodes=self._node_stats[k])
            arc_stats.append(pred.arcs)
            if self._path_trackers is not None:
                tracker = self._path_trackers[k]
                tracker.finalize()
                pred.paths = tracker.stats
                pred.trees = tracker.trees
            if self._seq_trackers is not None:
                self._seq_trackers[k].finalize()
                pred.sequences = self._seq_trackers[k].stats
            if self._branch_trackers is not None:
                pred.branches = self._branch_trackers[k].stats
            if self._unpred_trackers is not None:
                self._unpred_trackers[k].finalize()
                pred.unpred = self._unpred_trackers[k].stats
            if self._critical is not None:
                pred.critical = self._critical[k]
            if self._node_ops is not None:
                pred.node_ops = self._node_ops[k]
            result.predictors[bank.kind] = pred
        if self._reuse is not None:
            result.reuse = self._reuse.stats
        self._arc_table.flush(static_counts, arc_stats)
        return result


def _as_columns(trace, n_static: int, limit) -> TraceColumns:
    """View ``trace`` as columns, building them if records came in."""
    if isinstance(trace, TraceColumns):
        return trace
    with get_recorder().span("analyze.kernel.layout"):
        return TraceColumns.from_records(trace, n_static, limit=limit)


def analyze_trace(
    trace,
    n_static: int,
    name: str = "trace",
    config: AnalysisConfig | None = None,
    profile_counts=None,
    static_counts=None,
    engine=None,
    segments: int | None = None,
) -> AnalysisResult:
    """Analyse an iterable of :class:`DynInst` records (or a
    pre-decoded :class:`~repro.core.kernel.TraceColumns`).

    The whole pass runs under an ``"analyze"`` span.  When ``trace``
    is a live machine generator the span necessarily includes the
    interleaved simulation time; the runner's two-tier path feeds a
    decoded record list (or columns) here, so there the span is pure
    analysis.

    ``engine`` selects the implementation (None = the process default,
    normally ``auto``); results are byte-identical either way — see
    :mod:`repro.core.kernel`.  ``segments`` > 1 splits a columnar
    analysis into that many segment-parallel slices
    (:func:`repro.core.shard.analyze_columns_segmented`, thread
    executor) — byte-identical again; the reference engine ignores it.
    """
    config = config or AnalysisConfig()
    if resolve_engine(engine, (config,)) is AnalysisEngine.COLUMNAR:
        with get_recorder().span("analyze"):
            columns = _as_columns(trace, n_static, config.max_instructions)
            if segments is not None and segments > 1:
                from repro.core.shard import analyze_columns_segmented

                return analyze_columns_segmented(
                    columns, config, name, segments=segments,
                    profile_counts=profile_counts,
                    static_counts=static_counts,
                )
            return analyze_columns(
                columns, config, name, profile_counts, static_counts
            )
    if isinstance(trace, TraceColumns):
        trace = trace.to_records()
    analyzer = Analyzer(n_static, config, profile_counts)
    if config.max_instructions is not None:
        trace = islice(trace, config.max_instructions)
    with get_recorder().span("analyze"):
        for dyn in trace:
            analyzer.feed(dyn)
        return analyzer.finalize(name, static_counts)


def analyze_many(
    trace,
    n_static: int,
    configs,
    name: str = "trace",
    profile_counts=None,
    static_counts=None,
    engine=None,
    segments: int | None = None,
) -> list[AnalysisResult]:
    """Analyse one trace under many configs in a single pass.

    The fan-out driver of the trace tier: one decode of ``trace`` feeds
    one :class:`Analyzer` per config, and each result is exactly what
    an independent :func:`analyze_trace` run with that config would
    produce — including per-config ``max_instructions`` truncation,
    which is why a config whose budget is exhausted stops being fed
    mid-pass while larger-budget siblings keep consuming.

    On the columnar engine the trace is decoded once into columns and
    predictor passes are cached per spec, so configs sharing predictor
    specs pay for each bank pass once.  ``auto`` falls back to the
    reference loop for the whole call if *any* config is unsupported,
    keeping the single-pass accounting uniform.
    """
    configs = [config or AnalysisConfig() for config in configs]
    if not configs:
        return []
    if resolve_engine(engine, configs) is AnalysisEngine.COLUMNAR:
        budgets = [config.max_instructions for config in configs]
        limit = None if None in budgets else max(budgets)
        with get_recorder().span("analyze"):
            columns = _as_columns(trace, n_static, limit)
            if segments is not None and segments > 1:
                # Segment-parallel per config: trades the shared
                # bank-pass cache of analyze_columns_many for
                # intra-trace parallelism.  Byte-identical either way.
                from repro.core.shard import analyze_columns_segmented

                return [
                    analyze_columns_segmented(
                        columns, config, name, segments=segments,
                        profile_counts=profile_counts,
                        static_counts=static_counts,
                    )
                    for config in configs
                ]
            return analyze_columns_many(
                columns, configs, name, profile_counts, static_counts
            )
    if isinstance(trace, TraceColumns):
        trace = trace.to_records()
    analyzers = [
        Analyzer(n_static, config, profile_counts) for config in configs
    ]
    with get_recorder().span("analyze"):
        return _analyze_many_body(
            trace, configs, analyzers, name, static_counts
        )


def _analyze_many_body(trace, configs, analyzers, name, static_counts):
    budgets = {config.max_instructions for config in configs}
    if analyzers and len(budgets) == 1:
        # Uniform budget: no per-record bookkeeping.
        (budget,) = budgets
        if budget is not None:
            trace = islice(trace, budget)
        feeds = [analyzer.feed for analyzer in analyzers]
        for dyn in trace:
            for feed in feeds:
                feed(dyn)
    elif analyzers:
        # Mixed budgets, largest (None = unlimited) first so the next
        # analyzer to retire is always at the end of the list.
        live = sorted(
            ((config.max_instructions, analyzer.feed)
             for config, analyzer in zip(configs, analyzers)),
            key=lambda item: _inf if item[0] is None else item[0],
            reverse=True,
        )
        count = 0
        while live and live[-1][0] == count:
            live.pop()
        for dyn in trace:
            if not live:
                break
            for __, feed in live:
                feed(dyn)
            count += 1
            while live and live[-1][0] == count:
                live.pop()
    return [
        analyzer.finalize(name, static_counts) for analyzer in analyzers
    ]


_inf = float("inf")


def analyze_machine(
    machine,
    name: str = "program",
    config: AnalysisConfig | None = None,
    profile_counts=None,
    engine=None,
) -> AnalysisResult:
    """Run ``machine`` to completion (or the configured instruction
    budget) and analyse its trace."""
    return analyze_trace(
        machine.trace(),
        len(machine.program.instructions),
        name=name,
        config=config,
        profile_counts=profile_counts,
        static_counts=None,
        engine=engine,
    )
