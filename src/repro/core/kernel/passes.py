"""Batched predictor passes over trace columns.

Each pass replays one predictor's full ``see()`` stream over a
(key, value) column pair in a single tight loop — table cells, masks
and update rules inlined as locals instead of per-element method
dispatch through :mod:`repro.predictors`.  The update rules are
transcribed line-for-line from the predictor classes (the differential
suite in tests/core/test_kernel_parity.py holds them identical), so a
pass returns exactly the hit/miss bytestream the reference analyzer
would have observed calling ``predictor.see()`` per element.

Because each predictor's verdict at element ``i`` depends only on
elements ``< i``, every returned stream is prefix-closed; the
:class:`~repro.core.kernel.columns.TraceColumns` hit cache exploits
this to share one pass across all configs and budgets using the same
spec.
"""

from __future__ import annotations

from repro.predictors.base import parse_predictor_spec

_EMPTY = object()

_MASK32 = 0xFFFF_FFFF
_SIGN32 = 0x8000_0000


def _slice(keys, values, limit: int):
    if limit < len(keys):
        return keys[:limit], values[:limit]
    return keys, values


# ----------------------------------------------------------------------
# Value predictors (repro.predictors.last_value / stride / context /
# hybrid, inlined).
# ----------------------------------------------------------------------

def _last_pass(keys, values, limit, index_bits=16, hysteresis=3):
    keys, values = _slice(keys, values, limit)
    mask = (1 << index_bits) - 1
    table = [_EMPTY] * (1 << index_bits)
    counters = bytearray(1 << index_bits)
    replace = min(1, hysteresis)
    empty = _EMPTY
    hits = bytearray()
    hit = hits.append
    for key, value in zip(keys, values):
        index = key & mask
        stored = table[index]
        if stored is not empty and stored == value:
            hit(1)
            counter = counters[index]
            if counter < hysteresis:
                counters[index] = counter + 1
        else:
            hit(0)
            counter = counters[index]
            if counter > 0:
                counters[index] = counter - 1
            else:
                table[index] = value
                counters[index] = replace
    return hits


def _stride_pass(keys, values, limit, index_bits=16):
    keys, values = _slice(keys, values, limit)
    mask = (1 << index_bits) - 1
    entries = [None] * (1 << index_bits)
    hits = bytearray()
    hit = hits.append
    int_t = int
    for key, value in zip(keys, values):
        index = key & mask
        entry = entries[index]
        if entry is None:
            entries[index] = [value, 0, 0]
            hit(0)
            continue
        last = entry[0]
        stride = entry[1]
        if (type(value) is int_t and type(last) is int_t
                and type(stride) is int_t):
            prediction = (last + stride) & _MASK32
            new_stride = (value - last) & _MASK32
            if new_stride & _SIGN32:
                new_stride -= 0x1_0000_0000
        else:
            prediction = last + stride
            new_stride = value - last
        hit(1 if prediction == value else 0)
        if new_stride == entry[2]:
            entry[1] = new_stride
        entry[2] = new_stride
        entry[0] = value
    return hits


def _context_pass(keys, values, limit, l1_bits=16, l2_bits=20,
                  order=4, hysteresis=7):
    keys, values = _slice(keys, values, limit)
    hash_bits = max(1, l2_bits // order)
    l1_mask = (1 << l1_bits) - 1
    l2_mask = (1 << l2_bits) - 1
    contexts = [0] * (1 << l1_bits)
    replace = min(1, hysteresis)
    empty = _EMPTY
    hits = bytearray()
    hit = hits.append
    if len(keys) * 8 < (1 << l2_bits):
        # Short stream, huge table: a sparse dict beats allocating (and
        # mostly never touching) a 2^l2-entry value table.  Untouched
        # cells read as (empty, counter 0) either way, so the two
        # variants replay identical update streams.
        table = {}
        table_get = table.get
        counters = {}
        counters_get = counters.get
        for key, value in zip(keys, values):
            l1_index = key & l1_mask
            context = contexts[l1_index]
            stored = table_get(context, empty)
            if stored is not empty and stored == value:
                hit(1)
                counter = counters_get(context, 0)
                if counter < hysteresis:
                    counters[context] = counter + 1
            else:
                hit(0)
                counter = counters_get(context, 0)
                if counter > 0:
                    counters[context] = counter - 1
                else:
                    table[context] = value
                    counters[context] = replace
            raw = hash(value)
            folded = (raw ^ (raw >> 20) ^ (raw >> 40)) & l2_mask
            contexts[l1_index] = ((context << hash_bits) ^ folded) \
                & l2_mask
        return hits
    table = [_EMPTY] * (1 << l2_bits)
    counters = bytearray(1 << l2_bits)
    for key, value in zip(keys, values):
        l1_index = key & l1_mask
        context = contexts[l1_index]
        stored = table[context]
        if stored is not empty and stored == value:
            hit(1)
            counter = counters[context]
            if counter < hysteresis:
                counters[context] = counter + 1
        else:
            hit(0)
            counter = counters[context]
            if counter > 0:
                counters[context] = counter - 1
            else:
                table[context] = value
                counters[context] = replace
        raw = hash(value)
        folded = (raw ^ (raw >> 20) ^ (raw >> 40)) & l2_mask
        contexts[l1_index] = ((context << hash_bits) ^ folded) & l2_mask
    return hits


def _hybrid_pass(keys, values, limit, index_bits=16, l2_bits=20,
                 chooser_init=2):
    keys, values = _slice(keys, values, limit)
    mask = (1 << index_bits) - 1
    # Stride component (StridePredictor(index_bits)).
    entries = [None] * (1 << index_bits)
    # Context component (ContextPredictor(index_bits, l2_bits):
    # l1_bits = index_bits, order = 4, hysteresis = 7).
    hash_bits = max(1, l2_bits // 4)
    l2_mask = (1 << l2_bits) - 1
    contexts = [0] * (1 << index_bits)
    c_table = [_EMPTY] * (1 << l2_bits)
    c_counters = bytearray(1 << l2_bits)
    chooser_tab = bytearray([chooser_init]) * (1 << index_bits)
    empty = _EMPTY
    hits = bytearray()
    hit = hits.append
    int_t = int
    for key, value in zip(keys, values):
        index = key & mask
        chooser = chooser_tab[index]
        # --- peeks (before either component trains) -------------------
        entry = entries[index]
        if chooser >= 2:
            context = contexts[index]
            stored = c_table[context]
            chosen = None if stored is empty else stored
        elif entry is None:
            chosen = None
        else:
            last = entry[0]
            stride = entry[1]
            # peek() checks only last/stride types, unlike see().
            if type(last) is int_t and type(stride) is int_t:
                chosen = (last + stride) & _MASK32
            else:
                chosen = last + stride
        hit(1 if chosen is not None and chosen == value else 0)
        # --- stride component trains ----------------------------------
        if entry is None:
            entries[index] = [value, 0, 0]
            stride_hit = False
        else:
            last = entry[0]
            stride = entry[1]
            if (type(value) is int_t and type(last) is int_t
                    and type(stride) is int_t):
                prediction = (last + stride) & _MASK32
                new_stride = (value - last) & _MASK32
                if new_stride & _SIGN32:
                    new_stride -= 0x1_0000_0000
            else:
                prediction = last + stride
                new_stride = value - last
            stride_hit = prediction == value
            if new_stride == entry[2]:
                entry[1] = new_stride
            entry[2] = new_stride
            entry[0] = value
        # --- context component trains ---------------------------------
        context = contexts[index]
        stored = c_table[context]
        context_hit = stored is not empty and stored == value
        counter = c_counters[context]
        if context_hit:
            if counter < 7:
                c_counters[context] = counter + 1
        elif counter > 0:
            c_counters[context] = counter - 1
        else:
            c_table[context] = value
            c_counters[context] = 1
        raw = hash(value)
        folded = (raw ^ (raw >> 20) ^ (raw >> 40)) & l2_mask
        contexts[index] = ((context << hash_bits) ^ folded) & l2_mask
        # --- chooser trains on disagreement ---------------------------
        if stride_hit != context_hit:
            if context_hit:
                if chooser < 3:
                    chooser_tab[index] = chooser + 1
            elif chooser > 0:
                chooser_tab[index] = chooser - 1
    return hits


_VALUE_PASSES = {
    "last": _last_pass,
    "stride": _stride_pass,
    "context": _context_pass,
    "hybrid": _hybrid_pass,
}


def run_value_pass(spec: str, keys, values, limit: int) -> bytearray:
    """Replay one value predictor over a key/value column prefix."""
    kind, kwargs = parse_predictor_spec(spec)
    return _VALUE_PASSES[kind](keys, values, limit, **kwargs)


# ----------------------------------------------------------------------
# Branch predictors (repro.predictors.gshare / local_branch, inlined).
#
# The taken column is TAKEN_FALSE/TAKEN_TRUE/TAKEN_NONE; a None
# direction can never be predicted correctly but still trains the
# counter and history as not-taken, exactly as `see(pc, None)` does.
# ----------------------------------------------------------------------

def _gshare_pass(pcs, takens, limit, index_bits=16):
    pcs, takens = _slice(pcs, takens, limit)
    mask = (1 << index_bits) - 1
    counters = bytearray([1]) * (1 << index_bits)
    history = 0
    hits = bytearray()
    hit = hits.append
    for pc, taken in zip(pcs, takens):
        index = (pc ^ history) & mask
        counter = counters[index]
        if taken == 1:
            hit(1 if counter >= 2 else 0)
            if counter < 3:
                counters[index] = counter + 1
            history = ((history << 1) | 1) & mask
        else:
            hit(1 if counter < 2 and taken == 0 else 0)
            if counter > 0:
                counters[index] = counter - 1
            history = (history << 1) & mask
    return hits


def _local_pass(pcs, takens, limit, history_bits=12, table_bits=14):
    pcs, takens = _slice(pcs, takens, limit)
    history_mask = (1 << history_bits) - 1
    table_mask = (1 << table_bits) - 1
    histories = [0] * (1 << table_bits)
    counters = bytearray([1]) * (1 << table_bits)
    hits = bytearray()
    hit = hits.append
    for pc, taken in zip(pcs, takens):
        slot = pc & table_mask
        history = histories[slot]
        index = (history ^ (pc << 2)) & table_mask
        counter = counters[index]
        if taken == 1:
            hit(1 if counter >= 2 else 0)
            if counter < 3:
                counters[index] = counter + 1
            histories[slot] = ((history << 1) | 1) & history_mask
        else:
            hit(1 if counter < 2 and taken == 0 else 0)
            if counter > 0:
                counters[index] = counter - 1
            histories[slot] = (history << 1) & history_mask
    return hits


def run_branch_pass(kind: str, index_bits: int, pcs, takens,
                    limit: int) -> bytearray:
    """Replay the shared direction predictor over a branch subset."""
    if kind == "gshare":
        return _gshare_pass(pcs, takens, limit, index_bits)
    if kind == "local":
        # make_branch_predictor("local") ignores index_bits.
        return _local_pass(pcs, takens, limit)
    raise ValueError(f"unknown branch predictor kind: {kind!r}")
